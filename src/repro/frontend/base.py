"""Common predictor interfaces and statistics."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from repro.obs import runtime as _obs


@dataclass
class PredictorStats:
    """Prediction accounting shared by all predictors."""

    predictions: int = 0
    correct: int = 0

    @property
    def mispredictions(self) -> int:
        return self.predictions - self.correct

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return self.correct / self.predictions

    @property
    def mispredict_rate(self) -> float:
        return 1.0 - self.accuracy

    def record(self, was_correct: bool) -> None:
        self.predictions += 1
        self.correct += int(was_correct)


class DirectionPredictor(abc.ABC):
    """Predicts the taken/not-taken direction of conditional branches.

    Subclasses implement :meth:`_predict` and :meth:`_update`; the
    public wrappers keep the statistics consistent across predictors.
    """

    def __init__(self) -> None:
        self.stats = PredictorStats()

    @abc.abstractmethod
    def _predict(self, pc: int) -> bool:
        """Return the predicted direction for the branch at ``pc``."""

    @abc.abstractmethod
    def _update(self, pc: int, taken: bool) -> None:
        """Train the predictor with the resolved outcome."""

    def predict(self, pc: int) -> bool:
        """Predict without training (e.g. for inspection)."""
        return self._predict(pc)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, train with the outcome, and record statistics.

        Returns True when the prediction was *correct*.
        """
        prediction = self._predict(pc)
        correct = prediction == taken
        self._update(pc, taken)
        self.stats.record(correct)
        return correct

    def reset_stats(self) -> None:
        self.stats = PredictorStats()


@dataclass
class BranchUnit:
    """Direction predictor + BTB bundle used by structural runs.

    A control-flow instruction mispredicts when either the predicted
    direction is wrong or the branch is taken and the BTB misses or
    holds a stale target. Unconditional jumps only consult the BTB.
    """

    direction: DirectionPredictor
    btb: Optional[object] = None
    stats: PredictorStats = field(default_factory=PredictorStats)

    def resolve_branch(self, pc: int, taken: bool, target: Optional[int]) -> bool:
        """Process one conditional branch; return True on misprediction."""
        direction_correct = self.direction.predict_and_update(pc, taken)
        target_correct = True
        if self.btb is not None and taken and target is not None:
            target_correct = self.btb.predict_and_update(pc, target)
        mispredicted = not (direction_correct and target_correct)
        self.stats.record(not mispredicted)
        metrics = _obs.current_metrics()
        if metrics is not None:
            metrics.counter("frontend.predictions_total").inc()
            if mispredicted:
                metrics.counter("frontend.mispredicts_total").inc()
        return mispredicted

    def resolve_jump(self, pc: int, target: Optional[int]) -> bool:
        """Process one unconditional jump; return True on misprediction."""
        if self.btb is None or target is None:
            return False
        correct = self.btb.predict_and_update(pc, target)
        self.stats.record(correct)
        metrics = _obs.current_metrics()
        if metrics is not None:
            metrics.counter("frontend.predictions_total").inc()
            if not correct:
                metrics.counter("frontend.mispredicts_total").inc()
        return not correct
