"""Bimodal predictor: a PC-indexed table of 2-bit saturating counters."""

from __future__ import annotations

from repro.frontend.base import DirectionPredictor
from repro.util.validation import check_power_of_two


class SaturatingCounter:
    """An n-bit saturating up/down counter.

    The upper half of the range predicts taken. The classic 2-bit
    counter is ``SaturatingCounter(bits=2)``.
    """

    def __init__(self, bits: int = 2, initial: int = None):
        if bits < 1:
            raise ValueError(f"counter needs at least 1 bit, got {bits}")
        self.bits = bits
        self.maximum = (1 << bits) - 1
        if initial is None:
            initial = 1 << (bits - 1)  # weakly taken
        if not 0 <= initial <= self.maximum:
            raise ValueError(f"initial value {initial} out of range")
        self.value = initial

    @property
    def taken(self) -> bool:
        return self.value >= 1 << (self.bits - 1)

    def train(self, taken: bool) -> None:
        if taken:
            self.value = min(self.value + 1, self.maximum)
        else:
            self.value = max(self.value - 1, 0)


class BimodalPredictor(DirectionPredictor):
    """PC-indexed table of saturating counters (Smith predictor)."""

    def __init__(self, entries: int = 4096, counter_bits: int = 2):
        super().__init__()
        check_power_of_two("entries", entries)
        self.entries = entries
        self.counter_bits = counter_bits
        self._table = [SaturatingCounter(counter_bits) for _ in range(entries)]

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def _predict(self, pc: int) -> bool:
        return self._table[self._index(pc)].taken

    def _update(self, pc: int, taken: bool) -> None:
        self._table[self._index(pc)].train(taken)
