"""Branch prediction substrate.

Direction predictors (bimodal, gshare, local two-level, tournament,
perceptron, static, perfect) share the :class:`DirectionPredictor`
interface; :class:`BranchTargetBuffer` and :class:`ReturnAddressStack`
cover target prediction. :class:`BranchUnit` bundles a direction
predictor with a BTB into the single object the pipeline's structural
annotator consults per control-flow instruction.
"""

from repro.frontend.base import BranchUnit, DirectionPredictor, PredictorStats
from repro.frontend.static import StaticPredictor
from repro.frontend.bimodal import BimodalPredictor, SaturatingCounter
from repro.frontend.gshare import GSharePredictor
from repro.frontend.local import LocalPredictor
from repro.frontend.tournament import TournamentPredictor
from repro.frontend.perceptron import PerceptronPredictor
from repro.frontend.tage import TAGEPredictor
from repro.frontend.perfect import PerfectPredictor
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ras import ReturnAddressStack

__all__ = [
    "BranchUnit",
    "DirectionPredictor",
    "PredictorStats",
    "StaticPredictor",
    "BimodalPredictor",
    "SaturatingCounter",
    "GSharePredictor",
    "LocalPredictor",
    "TournamentPredictor",
    "PerceptronPredictor",
    "TAGEPredictor",
    "PerfectPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
]
