"""Gshare: global history XOR-ed with the PC indexes a counter table."""

from __future__ import annotations

from repro.frontend.base import DirectionPredictor
from repro.frontend.bimodal import SaturatingCounter
from repro.util.validation import check_power_of_two


class GSharePredictor(DirectionPredictor):
    """McFarling's gshare predictor."""

    def __init__(self, entries: int = 4096, history_bits: int = 12, counter_bits: int = 2):
        super().__init__()
        check_power_of_two("entries", entries)
        if history_bits < 1:
            raise ValueError(f"history_bits must be >= 1, got {history_bits}")
        self.entries = entries
        self.history_bits = history_bits
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self._table = [SaturatingCounter(counter_bits) for _ in range(entries)]

    @property
    def history(self) -> int:
        """Current global history register value (for tests/inspection)."""
        return self._history

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & (self.entries - 1)

    def _predict(self, pc: int) -> bool:
        return self._table[self._index(pc)].taken

    def _update(self, pc: int, taken: bool) -> None:
        self._table[self._index(pc)].train(taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
