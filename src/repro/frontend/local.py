"""Two-level local predictor (Yeh & Patt PAg style).

A per-branch history table records each branch's recent outcomes; the
history pattern indexes a shared table of saturating counters.
"""

from __future__ import annotations

from repro.frontend.base import DirectionPredictor
from repro.frontend.bimodal import SaturatingCounter
from repro.util.validation import check_power_of_two


class LocalPredictor(DirectionPredictor):
    """Per-branch history feeding a shared pattern table."""

    def __init__(
        self,
        history_entries: int = 1024,
        history_bits: int = 10,
        pattern_entries: int = 1024,
        counter_bits: int = 2,
    ):
        super().__init__()
        check_power_of_two("history_entries", history_entries)
        check_power_of_two("pattern_entries", pattern_entries)
        if history_bits < 1:
            raise ValueError(f"history_bits must be >= 1, got {history_bits}")
        self.history_entries = history_entries
        self.history_bits = history_bits
        self.pattern_entries = pattern_entries
        self._history_mask = (1 << history_bits) - 1
        self._histories = [0] * history_entries
        self._patterns = [
            SaturatingCounter(counter_bits) for _ in range(pattern_entries)
        ]

    def _history_index(self, pc: int) -> int:
        return (pc >> 2) & (self.history_entries - 1)

    def _pattern_index(self, pc: int) -> int:
        history = self._histories[self._history_index(pc)]
        return history & (self.pattern_entries - 1)

    def _predict(self, pc: int) -> bool:
        return self._patterns[self._pattern_index(pc)].taken

    def _update(self, pc: int, taken: bool) -> None:
        self._patterns[self._pattern_index(pc)].train(taken)
        h_index = self._history_index(pc)
        self._histories[h_index] = (
            (self._histories[h_index] << 1) | int(taken)
        ) & self._history_mask
