"""Branch target buffer: set-associative tagged cache of branch targets."""

from __future__ import annotations

from typing import Dict, Optional

from repro.frontend.base import PredictorStats
from repro.util.validation import check_power_of_two


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement.

    ``predict(pc)`` returns the cached target or None; ``update``
    installs/refreshes the mapping. ``predict_and_update`` returns True
    when the cached target matched the actual one (a BTB miss or a stale
    target counts as a target misprediction).
    """

    def __init__(self, sets: int = 512, ways: int = 4):
        check_power_of_two("sets", sets)
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        self.sets = sets
        self.ways = ways
        self.stats = PredictorStats()
        # Per set: insertion-ordered dict tag -> target; last = MRU.
        self._sets = [dict() for _ in range(sets)]

    def _locate(self, pc: int):
        index = (pc >> 2) & (self.sets - 1)
        tag = pc >> 2 >> self.sets.bit_length() - 1
        return self._sets[index], tag

    def predict(self, pc: int) -> Optional[int]:
        entries, tag = self._locate(pc)
        if tag in entries:
            target = entries.pop(tag)  # refresh LRU position
            entries[tag] = target
            return target
        return None

    def update(self, pc: int, target: int) -> None:
        entries, tag = self._locate(pc)
        if tag in entries:
            entries.pop(tag)
        elif len(entries) >= self.ways:
            oldest = next(iter(entries))
            entries.pop(oldest)
        entries[tag] = target

    def predict_and_update(self, pc: int, target: int) -> bool:
        """Predict, then install the true target; True when correct."""
        predicted = self.predict(pc)
        correct = predicted == target
        self.update(pc, target)
        self.stats.record(correct)
        return correct

    @property
    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)
