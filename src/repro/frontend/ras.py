"""Return address stack for call/return target prediction."""

from __future__ import annotations

from typing import List, Optional

from repro.frontend.base import PredictorStats


class ReturnAddressStack:
    """Fixed-depth circular return address stack.

    Pushes on calls, pops on returns. When the stack overflows the
    oldest entry is overwritten (standard hardware behaviour), so deep
    recursion degrades gracefully rather than failing.
    """

    def __init__(self, depth: int = 16):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self._stack: List[int] = []
        self.stats = PredictorStats()

    def push(self, return_address: int) -> None:
        if len(self._stack) >= self.depth:
            self._stack.pop(0)  # overwrite oldest
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        if self._stack:
            return self._stack.pop()
        return None

    def predict_return(self, actual_target: int) -> bool:
        """Pop a prediction and score it against the actual target."""
        predicted = self.pop()
        correct = predicted == actual_target
        self.stats.record(correct)
        return correct

    def __len__(self) -> int:
        return len(self._stack)
