"""Tournament (hybrid) predictor: a chooser arbitrates two components.

This mirrors the Alpha 21264-style hybrid the paper's baseline machine
uses: a global (gshare) component, a local two-level component, and a
PC-indexed chooser of 2-bit counters trained toward whichever component
was correct when they disagree.
"""

from __future__ import annotations

from typing import Optional

from repro.frontend.base import DirectionPredictor
from repro.frontend.bimodal import SaturatingCounter
from repro.frontend.gshare import GSharePredictor
from repro.frontend.local import LocalPredictor
from repro.util.validation import check_power_of_two


class TournamentPredictor(DirectionPredictor):
    """Chooser-arbitrated hybrid of two direction predictors."""

    def __init__(
        self,
        global_component: Optional[DirectionPredictor] = None,
        local_component: Optional[DirectionPredictor] = None,
        chooser_entries: int = 4096,
        counter_bits: int = 2,
    ):
        super().__init__()
        check_power_of_two("chooser_entries", chooser_entries)
        self.global_component = global_component or GSharePredictor()
        self.local_component = local_component or LocalPredictor()
        self.chooser_entries = chooser_entries
        # Chooser counter high half selects the global component.
        self._chooser = [
            SaturatingCounter(counter_bits) for _ in range(chooser_entries)
        ]

    def _chooser_index(self, pc: int) -> int:
        return (pc >> 2) & (self.chooser_entries - 1)

    def _predict(self, pc: int) -> bool:
        use_global = self._chooser[self._chooser_index(pc)].taken
        component = self.global_component if use_global else self.local_component
        return component._predict(pc)

    def _update(self, pc: int, taken: bool) -> None:
        global_prediction = self.global_component._predict(pc)
        local_prediction = self.local_component._predict(pc)
        if global_prediction != local_prediction:
            # Train the chooser toward the component that was right.
            self._chooser[self._chooser_index(pc)].train(
                global_prediction == taken
            )
        self.global_component._update(pc, taken)
        self.local_component._update(pc, taken)
