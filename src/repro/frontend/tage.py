"""TAGE-style predictor: tagged geometric-history-length tables.

A compact implementation of the TAGE idea (Seznec & Michaud, JILP
2006): a bimodal base predictor plus N tagged tables indexed with
hashes of geometrically increasing global-history lengths. Prediction
comes from the longest-history table whose tag matches; allocation on a
misprediction installs an entry in a longer table with a fresh useful
counter. The useful bits arbitrate replacement.

This is not a bit-exact championship TAGE (no alternate-prediction
confidence tracking, simplified useful-bit aging); it is the standard
teaching version, good enough to beat gshare/tournament on history-
correlated streams, which is what the predictor-quality studies here
need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.frontend.base import DirectionPredictor
from repro.frontend.bimodal import BimodalPredictor, SaturatingCounter
from repro.util.validation import check_power_of_two

_MASK = (1 << 64) - 1


@dataclass
class _TaggedEntry:
    tag: int
    counter: SaturatingCounter
    useful: int = 0


class TAGEPredictor(DirectionPredictor):
    """Tagged geometric predictor over a bimodal base."""

    def __init__(
        self,
        table_entries: int = 512,
        num_tables: int = 4,
        min_history: int = 4,
        max_history: int = 64,
        tag_bits: int = 9,
        counter_bits: int = 3,
        base_entries: int = 4096,
    ):
        super().__init__()
        check_power_of_two("table_entries", table_entries)
        if num_tables < 1:
            raise ValueError(f"need at least one tagged table, got {num_tables}")
        if not 1 <= min_history <= max_history:
            raise ValueError(
                f"bad history range [{min_history}, {max_history}]"
            )
        self.table_entries = table_entries
        self.num_tables = num_tables
        self.tag_bits = tag_bits
        self.counter_bits = counter_bits
        self.base = BimodalPredictor(entries=base_entries)
        # Geometric history lengths from min to max.
        if num_tables == 1:
            self.history_lengths = [min_history]
        else:
            ratio = (max_history / min_history) ** (1.0 / (num_tables - 1))
            self.history_lengths = [
                max(1, int(round(min_history * ratio**i)))
                for i in range(num_tables)
            ]
        self._tables: List[List[Optional[_TaggedEntry]]] = [
            [None] * table_entries for _ in range(num_tables)
        ]
        self._history = 0  # global history as an int, newest bit = LSB

    # -- hashing ---------------------------------------------------------

    def _folded(self, length: int, bits: int) -> int:
        """Fold the most recent ``length`` history bits down to ``bits``."""
        history = self._history & ((1 << length) - 1)
        folded = 0
        while history:
            folded ^= history & ((1 << bits) - 1)
            history >>= bits
        return folded

    def _index(self, pc: int, table: int) -> int:
        length = self.history_lengths[table]
        bits = self.table_entries.bit_length() - 1
        value = (pc >> 2) ^ (pc >> 5) ^ self._folded(length, bits) ^ (
            table * 0x9E37
        )
        return value & (self.table_entries - 1)

    def _tag(self, pc: int, table: int) -> int:
        length = self.history_lengths[table]
        value = (pc >> 2) ^ self._folded(length, self.tag_bits) ^ (
            self._folded(length, self.tag_bits - 1) << 1
        )
        return value & ((1 << self.tag_bits) - 1)

    # -- prediction ------------------------------------------------------

    def _provider(self, pc: int) -> Tuple[Optional[int], Optional[_TaggedEntry]]:
        """Longest-history matching table, or (None, None)."""
        for table in reversed(range(self.num_tables)):
            entry = self._tables[table][self._index(pc, table)]
            if entry is not None and entry.tag == self._tag(pc, table):
                return table, entry
        return None, None

    def _predict(self, pc: int) -> bool:
        _, entry = self._provider(pc)
        if entry is not None:
            return entry.counter.taken
        return self.base._predict(pc)

    # -- update ----------------------------------------------------------

    def _allocate(self, pc: int, above: int, taken: bool) -> None:
        """Install an entry in some table with longer history than the
        provider; prefer a slot whose useful counter is zero."""
        candidates = range(above + 1, self.num_tables)
        for table in candidates:
            index = self._index(pc, table)
            entry = self._tables[table][index]
            if entry is None or entry.useful == 0:
                counter = SaturatingCounter(self.counter_bits)
                # seed weakly toward the observed outcome
                counter.train(taken)
                self._tables[table][index] = _TaggedEntry(
                    tag=self._tag(pc, table), counter=counter
                )
                return
        # Nothing free: age the useful counters along the way.
        for table in candidates:
            entry = self._tables[table][self._index(pc, table)]
            if entry is not None and entry.useful > 0:
                entry.useful -= 1

    def _update(self, pc: int, taken: bool) -> None:
        table, entry = self._provider(pc)
        if entry is not None:
            prediction = entry.counter.taken
            base_prediction = self.base._predict(pc)
            entry.counter.train(taken)
            if prediction == taken and base_prediction != taken:
                entry.useful = min(entry.useful + 1, 3)
            elif prediction != taken:
                if entry.useful > 0:
                    entry.useful -= 1
                self._allocate(pc, table, taken)
        else:
            prediction = self.base._predict(pc)
            if prediction != taken:
                self._allocate(pc, -1, taken)
        self.base._update(pc, taken)
        self._history = ((self._history << 1) | int(taken)) & _MASK
