"""Perceptron branch predictor (Jiménez & Lin, HPCA 2001).

Each branch hashes to a weight vector; the prediction is the sign of
the dot product of the weights with the global history (encoded ±1).
Training only occurs on a misprediction or when the output magnitude is
below the threshold, which bounds the weights.
"""

from __future__ import annotations

from repro.frontend.base import DirectionPredictor
from repro.util.validation import check_power_of_two


class PerceptronPredictor(DirectionPredictor):
    """Global-history perceptron predictor."""

    def __init__(self, entries: int = 512, history_bits: int = 24):
        super().__init__()
        check_power_of_two("entries", entries)
        if history_bits < 1:
            raise ValueError(f"history_bits must be >= 1, got {history_bits}")
        self.entries = entries
        self.history_bits = history_bits
        # Threshold from the paper: 1.93 * h + 14.
        self.threshold = int(1.93 * history_bits + 14)
        self.weight_limit = (1 << 7) - 1  # 8-bit signed weights
        # weights[i][0] is the bias; [1..h] pair with history bits.
        self._weights = [[0] * (history_bits + 1) for _ in range(entries)]
        self._history = [False] * history_bits

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def _output(self, pc: int) -> int:
        weights = self._weights[self._index(pc)]
        total = weights[0]
        for bit, weight in zip(self._history, weights[1:]):
            total += weight if bit else -weight
        return total

    def _predict(self, pc: int) -> bool:
        return self._output(pc) >= 0

    def _update(self, pc: int, taken: bool) -> None:
        output = self._output(pc)
        prediction = output >= 0
        if prediction != taken or abs(output) <= self.threshold:
            weights = self._weights[self._index(pc)]
            step = 1 if taken else -1
            weights[0] = self._clamp(weights[0] + step)
            for i, bit in enumerate(self._history, start=1):
                agree = 1 if bit == taken else -1
                weights[i] = self._clamp(weights[i] + agree)
        self._history.pop(0)
        self._history.append(taken)

    def _clamp(self, value: int) -> int:
        return max(-self.weight_limit - 1, min(self.weight_limit, value))
