"""Static direction predictors (always-taken / always-not-taken)."""

from __future__ import annotations

from repro.frontend.base import DirectionPredictor


class StaticPredictor(DirectionPredictor):
    """Predicts a fixed direction regardless of history."""

    def __init__(self, predict_taken: bool = True):
        super().__init__()
        self.predict_taken = predict_taken

    def _predict(self, pc: int) -> bool:
        return self.predict_taken

    def _update(self, pc: int, taken: bool) -> None:
        pass  # static predictors never learn
