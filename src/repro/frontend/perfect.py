"""Perfect (oracle) direction predictor — the zero-misprediction bound."""

from __future__ import annotations

from repro.frontend.base import DirectionPredictor


class PerfectPredictor(DirectionPredictor):
    """Always predicts the resolved outcome.

    The oracle needs to see the outcome before predicting; the pipeline
    therefore calls :meth:`prime` with the actual direction just before
    the prediction (this mirrors how trace-driven simulators implement
    perfect prediction).
    """

    def __init__(self) -> None:
        super().__init__()
        self._next_outcome = False

    def prime(self, taken: bool) -> None:
        """Reveal the next branch's outcome to the oracle."""
        self._next_outcome = taken

    def _predict(self, pc: int) -> bool:
        return self._next_outcome

    def _update(self, pc: int, taken: bool) -> None:
        self._next_outcome = taken

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        self.prime(taken)
        return super().predict_and_update(pc, taken)
