"""Synthetic trace generation from a statistical workload profile.

This is the SPEC-trace substitute documented in DESIGN.md: interval
analysis is driven by the *statistics* of the dynamic stream, so a
generator that controls those statistics exercises the same code paths
and reproduces the same characterization shapes.

The generator is fully deterministic given (profile, seed, length).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.opcodes import OpClass
from repro.trace.profiles import WorkloadProfile
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace
from repro.util.rng import SplitMix

_INSTRUCTION_BYTES = 4

# Number of register source operands drawn per op class: (minimum,
# chance of one extra). Loads read a base address register; stores read
# base + value; branches compare one or two values.
_DEP_SHAPE = {
    OpClass.IALU: (1, True),
    OpClass.IMUL: (2, False),
    OpClass.IDIV: (2, False),
    OpClass.FADD: (2, False),
    OpClass.FMUL: (2, False),
    OpClass.FDIV: (2, False),
    OpClass.LOAD: (1, False),
    OpClass.STORE: (2, False),
    OpClass.BRANCH: (1, True),
    OpClass.JUMP: (0, False),
    OpClass.NOP: (0, False),
}


_VALUE_PRODUCERS = (
    OpClass.IALU,
    OpClass.IMUL,
    OpClass.IDIV,
    OpClass.FADD,
    OpClass.FMUL,
    OpClass.FDIV,
    OpClass.LOAD,
)


class SyntheticTraceGenerator:
    """Generates annotated dynamic traces from a :class:`WorkloadProfile`.

    The emitted records carry oracle annotations (``mispredict``,
    ``il1_miss``, ``dl1_miss``, ``dl2_miss``), so the timing simulator
    can run them without instantiating predictor or cache substrates;
    addresses and control outcomes are still synthesized so the same
    trace *can* be run structurally.

    Dependences are drawn from a two-part model. A fraction
    ``chain_dep_fraction`` threads through ``profile.chain_count``
    persistent serial chains — the loop-carried recurrences that give
    real programs their bounded ILP: each value-producing instruction
    that takes a chain dependence consumes the chain's last producer and
    becomes its new tail. The rest are local, geometrically distributed
    distances. With unit latencies the dataflow IPC of the resulting
    trace is approximately ``chain_count``, so
    ``mean_dependence_distance`` behaves as the ILP knob.
    """

    def __init__(self, profile: WorkloadProfile, seed: int = 0):
        self.profile = profile
        self._rng = SplitMix(seed)
        self._op_rng = self._rng.split("ops")
        self._dep_rng = self._rng.split("deps")
        self._branch_rng = self._rng.split("branches")
        self._mem_rng = self._rng.split("memory")
        self._icache_rng = self._rng.split("icache")
        self._classes = list(profile.mix.keys())
        self._weights = [profile.mix[c] for c in self._classes]
        self._in_burst = False
        self._pc = 0x1000
        self._stream_addr = 0x10000
        self._emitted = 0
        self._chains: List[Optional[int]] = [None] * profile.chain_count

    def _draw_op_class(self) -> OpClass:
        return self._op_rng.weighted_choice(self._classes, self._weights)

    def _draw_one_dep(self, index: int, may_extend_chain: bool) -> int:
        """Draw one dependence distance for the instruction at ``index``."""
        profile = self.profile
        if self._dep_rng.bernoulli(profile.chain_dep_fraction):
            chain = self._dep_rng.randint(0, len(self._chains) - 1)
            tail = self._chains[chain]
            if may_extend_chain:
                self._chains[chain] = index
            if tail is not None and tail != index:
                return index - tail
        distance = 1 + self._dep_rng.geometric(profile.dependence_p)
        return min(distance, index)

    def _draw_deps(self, op_class: OpClass, index: int) -> Tuple[int, ...]:
        if index == 0:
            if op_class in _VALUE_PRODUCERS:
                # Seed a chain with this producer even without sources.
                self._chains[0] = 0
            return ()
        minimum, may_extend = _DEP_SHAPE[op_class]
        count = minimum
        if may_extend and self._dep_rng.bernoulli(self.profile.second_dep_fraction):
            count += 1
        produces = op_class in _VALUE_PRODUCERS
        deps: List[int] = []
        for position in range(count):
            # Only the first dependence of a value producer extends a
            # chain; consumers (stores, branches) read chains but do not
            # lengthen them.
            extend = produces and position == 0
            deps.append(self._draw_one_dep(index, may_extend_chain=extend))
        return tuple(deps)

    def _advance_burst_state(self) -> None:
        """Two-state Markov chain over branches.

        State dwell times are set so the stationary fraction of branches
        in the bursty state equals ``profile.burst_fraction``.
        """
        persistence = self.profile.burst_persistence
        f = self.profile.burst_fraction
        if f <= 0.0:
            self._in_burst = False
            return
        if f >= 1.0:
            self._in_burst = True
            return
        if self._in_burst:
            leave = 1.0 - persistence
            if self._branch_rng.bernoulli(leave):
                self._in_burst = False
        else:
            # Stationarity: enter_rate * (1-f) = leave_rate * f.
            leave = 1.0 - persistence
            enter = leave * f / (1.0 - f)
            if self._branch_rng.bernoulli(enter):
                self._in_burst = True

    def _draw_branch(self) -> Tuple[bool, bool, int]:
        """Return (taken, mispredict, target_pc)."""
        self._advance_burst_state()
        taken = self._branch_rng.bernoulli(self.profile.branch_taken_fraction)
        rate = self.profile.scaled_mispredict_rate(self._in_burst)
        mispredict = self._branch_rng.bernoulli(rate)
        span = max(self.profile.code_footprint_bytes // _INSTRUCTION_BYTES, 1)
        target = 0x1000 + _INSTRUCTION_BYTES * self._branch_rng.randint(0, span - 1)
        return taken, mispredict, target

    def _draw_mem_addr(self, is_store: bool) -> int:
        if self._mem_rng.bernoulli(self.profile.stride_fraction):
            self._stream_addr += self.profile.stride_bytes
            if self._stream_addr >= 0x10000 + self.profile.data_footprint_bytes:
                self._stream_addr = 0x10000
            return self._stream_addr
        word = self._mem_rng.randint(
            0, max(self.profile.data_footprint_bytes // 8 - 1, 0)
        )
        return 0x10000 + 8 * word

    def _draw_dcache_flags(self) -> Tuple[bool, bool]:
        """Return (dl1_miss_short, dl2_miss_long), mutually exclusive."""
        roll = self._mem_rng.random()
        if roll < self.profile.dl2_miss_rate:
            return False, True
        if roll < self.profile.dl2_miss_rate + self.profile.dl1_miss_rate:
            return True, False
        return False, False

    def _next_pc(self, taken_to: Optional[int]) -> int:
        pc = self._pc
        if taken_to is not None:
            self._pc = taken_to
        else:
            self._pc += _INSTRUCTION_BYTES
            if self._pc >= 0x1000 + self.profile.code_footprint_bytes:
                self._pc = 0x1000
        return pc

    def generate_record(self) -> TraceRecord:
        """Generate the next record in the stream."""
        index = self._emitted
        op_class = self._draw_op_class()
        deps = self._draw_deps(op_class, index)
        il1_miss = self._icache_rng.bernoulli(self.profile.il1_mpki / 1000.0)

        if op_class is OpClass.BRANCH:
            taken, mispredict, target = self._draw_branch()
            pc = self._next_pc(target if taken else None)
            record = TraceRecord(
                op_class=op_class,
                pc=pc,
                deps=deps,
                taken=taken,
                target=target,
                mispredict=mispredict,
                il1_miss=il1_miss,
            )
        elif op_class is OpClass.JUMP:
            span = max(self.profile.code_footprint_bytes // _INSTRUCTION_BYTES, 1)
            target = 0x1000 + _INSTRUCTION_BYTES * self._branch_rng.randint(
                0, span - 1
            )
            pc = self._next_pc(target)
            record = TraceRecord(
                op_class=op_class,
                pc=pc,
                deps=deps,
                taken=True,
                target=target,
                mispredict=False,
                il1_miss=il1_miss,
            )
        elif op_class.is_memory:
            addr = self._draw_mem_addr(op_class is OpClass.STORE)
            dl1 = dl2 = False
            if op_class is OpClass.LOAD:
                dl1, dl2 = self._draw_dcache_flags()
            pc = self._next_pc(None)
            record = TraceRecord(
                op_class=op_class,
                pc=pc,
                deps=deps,
                mem_addr=addr,
                dl1_miss=dl1,
                dl2_miss=dl2,
                il1_miss=il1_miss,
            )
        else:
            pc = self._next_pc(None)
            record = TraceRecord(
                op_class=op_class, pc=pc, deps=deps, il1_miss=il1_miss
            )
        self._emitted += 1
        return record

    def generate(self, count: int) -> Trace:
        """Generate a trace of ``count`` instructions."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        records = [self.generate_record() for _ in range(count)]
        return Trace(records, name=self.profile.name)


def generate_trace(profile: WorkloadProfile, count: int, seed: int = 0) -> Trace:
    """Convenience wrapper: one-shot trace generation."""
    return SyntheticTraceGenerator(profile, seed=seed).generate(count)
