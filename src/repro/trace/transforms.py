"""Trace transformations for counterfactual studies.

Interval analysis invites "what if" questions — what if branches were
perfectly predicted? what if the L1 never missed short? These helpers
derive modified traces without regenerating them, so the counterfactual
shares every other event placement with the original (paired
comparison, no seed noise).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


def _rebuild(
    trace: Trace,
    name_suffix: str,
    transform: Callable[[int, TraceRecord], TraceRecord],
) -> Trace:
    records = [transform(i, record) for i, record in enumerate(trace.records)]
    return Trace(records, name=f"{trace.name}{name_suffix}")


def _with_flags(record: TraceRecord, **overrides) -> TraceRecord:
    """Copy a record with some annotation fields replaced."""
    fields = dict(
        op_class=record.op_class,
        pc=record.pc,
        deps=record.deps,
        mem_addr=record.mem_addr,
        taken=record.taken,
        target=record.target,
        mispredict=record.mispredict,
        il1_miss=record.il1_miss,
        dl1_miss=record.dl1_miss,
        dl2_miss=record.dl2_miss,
    )
    fields.update(overrides)
    return TraceRecord(**fields)


def with_perfect_branches(trace: Trace) -> Trace:
    """All control flow predicted correctly; other events unchanged.

    Simulating this against the original isolates the total branch
    misprediction cost of the run (a paired counterfactual).
    """
    return _rebuild(
        trace,
        "+perfect-bp",
        lambda i, r: _with_flags(r, mispredict=False) if r.is_control else r,
    )


def with_perfect_icache(trace: Trace) -> Trace:
    """No I-cache misses."""
    return _rebuild(
        trace,
        "+perfect-il1",
        lambda i, r: _with_flags(r, il1_miss=False) if r.il1_miss else r,
    )


def with_perfect_dcache(trace: Trace) -> Trace:
    """All loads hit L1: removes both short and long D-cache misses."""
    return _rebuild(
        trace,
        "+perfect-dl1",
        lambda i, r: (
            _with_flags(r, dl1_miss=False, dl2_miss=False) if r.is_load else r
        ),
    )


def without_short_misses(trace: Trace) -> Trace:
    """Short (L1-miss/L2-hit) loads become hits; long misses stay.

    The direct counterfactual for contributor C5.
    """
    return _rebuild(
        trace,
        "-short",
        lambda i, r: (
            _with_flags(r, dl1_miss=False) if (r.is_load and r.dl1_miss) else r
        ),
    )


def with_perfect_frontend(trace: Trace) -> Trace:
    """Perfect branches and perfect I-cache (the ideal frontend)."""
    ideal = with_perfect_branches(trace)
    ideal = with_perfect_icache(ideal)
    return Trace(ideal.records, name=f"{trace.name}+ideal-frontend")


def truncate(trace: Trace, count: int) -> Trace:
    """The first ``count`` records (a shorter but identical prefix)."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return Trace(trace.records[:count], name=f"{trace.name}[:{count}]")


def interleave(traces: Iterable[Trace], name: Optional[str] = None) -> Trace:
    """Round-robin interleave several traces (an SMT-flavoured mix).

    Dependence distances are scaled by the number of streams so each
    stream's dataflow is preserved; the interleave is only meaningful
    for ILP-style studies (addresses/PCs collide across streams).
    """
    streams: List[Trace] = list(traces)
    if not streams:
        raise ValueError("need at least one trace to interleave")
    k = len(streams)
    length = min(len(t) for t in streams)
    records: List[TraceRecord] = []
    for position in range(length):
        for stream in streams:
            original = stream.records[position]
            scaled = tuple(min(d * k, 0xFFFF) for d in original.deps)
            records.append(_with_flags(original, deps=scaled))
    return Trace(
        records, name=name or "+".join(t.name for t in streams)
    )
