"""One dynamic instruction as seen by the timing simulator."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.opcodes import OpClass


class TraceRecord:
    """A dynamic instruction.

    Parameters
    ----------
    op_class:
        Functional class; selects the FU pool and base latency.
    pc:
        Byte address of the instruction (used by I-cache and predictor).
    deps:
        Dynamic dependence distances: ``deps == (3, 1)`` means this
        instruction reads values produced by the instructions 3 and 1
        positions earlier in the dynamic stream. Distances are >= 1.
        Memory (store→load) dependences are included here too.
    mem_addr:
        Byte address touched by a load/store; ``None`` otherwise.
    taken / target:
        Control-flow outcome for branches and jumps.
    mispredict / il1_miss / dl1_miss / dl2_miss:
        Optional annotations. ``None`` means "not annotated" (a
        structural run must consult the predictor/cache); a bool is an
        oracle outcome the simulator honours directly.
    """

    __slots__ = (
        "op_class",
        "pc",
        "deps",
        "mem_addr",
        "taken",
        "target",
        "mispredict",
        "il1_miss",
        "dl1_miss",
        "dl2_miss",
    )

    def __init__(
        self,
        op_class: OpClass,
        pc: int = 0,
        deps: Tuple[int, ...] = (),
        mem_addr: Optional[int] = None,
        taken: bool = False,
        target: Optional[int] = None,
        mispredict: Optional[bool] = None,
        il1_miss: Optional[bool] = None,
        dl1_miss: Optional[bool] = None,
        dl2_miss: Optional[bool] = None,
    ):
        if any(d < 1 for d in deps):
            raise ValueError(f"dependence distances must be >= 1, got {deps}")
        if op_class.is_memory and mem_addr is None:
            raise ValueError(f"{op_class.value} record requires mem_addr")
        self.op_class = op_class
        self.pc = pc
        self.deps = tuple(deps)
        self.mem_addr = mem_addr
        self.taken = taken
        self.target = target
        self.mispredict = mispredict
        self.il1_miss = il1_miss
        self.dl1_miss = dl1_miss
        self.dl2_miss = dl2_miss

    @property
    def is_branch(self) -> bool:
        """True for conditional branches (the misprediction carriers)."""
        return self.op_class is OpClass.BRANCH

    @property
    def is_control(self) -> bool:
        return self.op_class.is_control

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE

    @property
    def is_memory(self) -> bool:
        return self.op_class.is_memory

    def __repr__(self) -> str:
        parts = [f"TraceRecord({self.op_class.value}", f"pc={self.pc:#x}"]
        if self.deps:
            parts.append(f"deps={self.deps}")
        if self.mem_addr is not None:
            parts.append(f"mem={self.mem_addr:#x}")
        if self.is_control:
            parts.append(f"taken={self.taken}")
        if self.mispredict:
            parts.append("MISPRED")
        if self.il1_miss:
            parts.append("IL1$")
        if self.dl2_miss:
            parts.append("DL2$")
        elif self.dl1_miss:
            parts.append("DL1$")
        return ", ".join(parts) + ")"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot) for slot in self.__slots__
        )

    def __hash__(self) -> int:
        return hash((self.op_class, self.pc, self.deps, self.mem_addr))
