"""Functional execution of assembled programs into dynamic traces.

The functional simulator interprets the kernel ISA architecturally —
register file, word-granularity data memory, control flow — and emits
one :class:`TraceRecord` per executed instruction. Dependence distances
are derived by tracking, for every register, the dynamic index of its
last writer, and for every memory word, the dynamic index of the last
store (so load→store memory dependences are visible to the timing
simulator and to interval analysis).

The emitted records carry real PCs, memory addresses and branch
outcomes, but *no* miss annotations: functional traces are meant to be
run structurally, against the branch predictor and cache substrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import Register, RegisterFile
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace

_WORD_BYTES = 8


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a program fails to halt within the instruction budget.

    The partial trace is attached as ``partial_trace``.
    """

    def __init__(self, limit: int, partial_trace: Trace):
        super().__init__(
            f"program did not halt within {limit} dynamic instructions"
        )
        self.limit = limit
        self.partial_trace = partial_trace


class DataMemory:
    """Sparse word-addressed data memory."""

    def __init__(self) -> None:
        self._words: Dict[int, float] = {}

    @staticmethod
    def word_address(address: int) -> int:
        return address - address % _WORD_BYTES

    def load(self, address: int) -> float:
        return self._words.get(self.word_address(address), 0)

    def store(self, address: int, value: float) -> None:
        self._words[self.word_address(address)] = value

    def preload(self, values: Dict[int, float]) -> None:
        """Initialize memory contents (address -> value)."""
        for address, value in values.items():
            self.store(address, value)


class FunctionalSimulator:
    """Architectural interpreter producing dynamic traces."""

    def __init__(self, program: Program, memory: Optional[DataMemory] = None):
        program.validate()
        self.program = program
        self.registers = RegisterFile()
        self.memory = memory or DataMemory()
        self._last_reg_writer: Dict[int, int] = {}
        self._last_store_writer: Dict[int, int] = {}

    def _deps_for(
        self, inst: Instruction, dynamic_index: int, mem_addr: Optional[int]
    ) -> tuple:
        producers = set()
        for src in inst.sources:
            if src.index == 0:
                continue
            writer = self._last_reg_writer.get(src.index)
            if writer is not None:
                producers.add(writer)
        if inst.is_load and mem_addr is not None:
            word = DataMemory.word_address(mem_addr)
            writer = self._last_store_writer.get(word)
            if writer is not None:
                producers.add(writer)
        return tuple(
            sorted(dynamic_index - producer for producer in producers)
        )

    def _branch_taken(self, inst: Instruction) -> bool:
        read = self.registers.read
        if inst.opcode is Opcode.BEQ:
            return read(inst.sources[0]) == read(inst.sources[1])
        if inst.opcode is Opcode.BNE:
            return read(inst.sources[0]) != read(inst.sources[1])
        if inst.opcode is Opcode.BLT:
            return read(inst.sources[0]) < read(inst.sources[1])
        if inst.opcode is Opcode.BGE:
            return read(inst.sources[0]) >= read(inst.sources[1])
        if inst.opcode is Opcode.BEQZ:
            return read(inst.sources[0]) == 0
        if inst.opcode is Opcode.BNEZ:
            return read(inst.sources[0]) != 0
        raise AssertionError(f"not a branch: {inst.opcode}")

    def _alu_result(self, inst: Instruction) -> float:
        read = self.registers.read
        op = inst.opcode
        if op is Opcode.LI:
            return inst.imm
        if op is Opcode.FMOV:
            return float(inst.imm)
        a = read(inst.sources[0])
        if op in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLTI):
            b: float = inst.imm
        else:
            b = read(inst.sources[1])
        if op in (Opcode.ADD, Opcode.ADDI, Opcode.FADD):
            return a + b
        if op in (Opcode.SUB, Opcode.FSUB):
            return a - b
        if op in (Opcode.AND, Opcode.ANDI):
            return int(a) & int(b)
        if op in (Opcode.OR, Opcode.ORI):
            return int(a) | int(b)
        if op in (Opcode.XOR, Opcode.XORI):
            return int(a) ^ int(b)
        if op is Opcode.SLL:
            return int(a) << (int(b) & 63)
        if op is Opcode.SRL:
            return (int(a) & (1 << 64) - 1) >> (int(b) & 63)
        if op in (Opcode.SLT, Opcode.SLTI):
            return int(a < b)
        if op in (Opcode.MUL, Opcode.FMUL):
            return a * b
        if op is Opcode.DIV:
            return int(a) // int(b) if b else 0
        if op is Opcode.FDIV:
            return a / b if b else 0.0
        if op is Opcode.REM:
            return int(a) % int(b) if b else 0
        raise AssertionError(f"no ALU semantics for {op}")

    def run(self, max_instructions: int = 1_000_000) -> Trace:
        """Execute from the program start until HALT; return the trace."""
        trace = Trace(name=self.program.name)
        program = self.program
        index = 0  # static instruction index
        dynamic = 0
        while dynamic < max_instructions:
            if not 0 <= index < len(program):
                raise IndexError(
                    f"control flow escaped the program at index {index}"
                )
            inst = program[index]
            pc = program.address_of(index)
            if inst.opcode is Opcode.HALT:
                break

            mem_addr: Optional[int] = None
            if inst.info.is_load or inst.info.is_store:
                base = inst.sources[0]
                mem_addr = int(self.registers.read(base)) + inst.imm
            deps = self._deps_for(inst, dynamic, mem_addr)

            taken = False
            target_index: Optional[int] = None
            if inst.is_branch:
                taken = self._branch_taken(inst)
                if taken:
                    target_index = inst.target
            elif inst.opcode in (Opcode.J, Opcode.JAL):
                taken = True
                target_index = inst.target
                if inst.opcode is Opcode.JAL:
                    self.registers.write(
                        Register(1), program.address_of(index) + 4
                    )
                    self._last_reg_writer[1] = dynamic
            elif inst.opcode is Opcode.JR:
                taken = True
                target_address = int(self.registers.read(inst.sources[0]))
                target_index = program.index_of_address(target_address)

            if inst.info.is_load:
                value = self.memory.load(mem_addr)
                self.registers.write(inst.dest, value)
                self._last_reg_writer[inst.dest.index] = dynamic
            elif inst.info.is_store:
                value_reg = inst.sources[1]
                self.memory.store(mem_addr, self.registers.read(value_reg))
                self._last_store_writer[DataMemory.word_address(mem_addr)] = dynamic
            elif inst.dest is not None and not inst.is_control:
                self.registers.write(inst.dest, self._alu_result(inst))
                self._last_reg_writer[inst.dest.index] = dynamic

            target_pc = (
                program.address_of(target_index)
                if target_index is not None
                else None
            )
            trace.append(
                TraceRecord(
                    op_class=inst.op_class,
                    pc=pc,
                    deps=deps,
                    mem_addr=mem_addr,
                    taken=taken,
                    target=target_pc,
                )
            )
            dynamic += 1
            index = target_index if target_index is not None else index + 1
        else:
            raise ExecutionLimitExceeded(max_instructions, trace)
        return trace
