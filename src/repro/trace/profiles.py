"""Statistical workload profiles for the synthetic trace generator.

A :class:`WorkloadProfile` captures exactly the trace statistics that
interval analysis is sensitive to:

* instruction mix (fraction per op class),
* the dynamic dependence-distance distribution, which determines the
  program's inherent ILP (contributor C3 in the paper),
* conditional-branch behaviour: taken fraction and misprediction rate,
  with a two-state Markov burstiness model controlling how mispredictions
  cluster (contributor C2),
* I-cache and D-cache miss rates: long (L2) D-cache misses are miss
  events; short (L1-miss / L2-hit) D-cache misses inflate branch
  resolution time (contributor C5),
* memory and code footprints plus striding behaviour, used when a trace
  is run *structurally* against the real cache substrates.

Dependence distances follow a shifted geometric distribution: the
probability that a source operand was produced ``d`` instructions ago is
``p * (1-p)**(d-1)`` with ``p = 1 / mean_dependence_distance``. Short
mean distances give long dependence chains and low ILP; long distances
give high ILP. This is the standard first-order model of program
parallelism used by the interval-analysis literature.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.isa.opcodes import OpClass
from repro.util.validation import check_in_range, check_positive


DEFAULT_MIX: Dict[OpClass, float] = {
    OpClass.IALU: 0.45,
    OpClass.IMUL: 0.02,
    OpClass.IDIV: 0.005,
    OpClass.FADD: 0.04,
    OpClass.FMUL: 0.03,
    OpClass.FDIV: 0.005,
    OpClass.LOAD: 0.22,
    OpClass.STORE: 0.10,
    OpClass.BRANCH: 0.11,
    OpClass.JUMP: 0.02,
}


@dataclass(frozen=True)
class WorkloadProfile:
    """Parameters of a synthetic dynamic instruction stream."""

    name: str = "generic"
    mix: Dict[OpClass, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    mean_dependence_distance: float = 5.0
    chain_dep_fraction: float = 0.85
    second_dep_fraction: float = 0.45
    branch_taken_fraction: float = 0.55
    mispredict_rate: float = 0.06
    burst_factor: float = 4.0
    burst_fraction: float = 0.15
    burst_persistence: float = 0.95
    il1_mpki: float = 2.0
    dl1_miss_rate: float = 0.05
    dl2_miss_rate: float = 0.005
    code_footprint_bytes: int = 1 << 16
    data_footprint_bytes: int = 1 << 22
    stride_fraction: float = 0.6
    stride_bytes: int = 8

    def __post_init__(self) -> None:
        check_positive("mean_dependence_distance", self.mean_dependence_distance)
        if self.mean_dependence_distance < 1.0:
            raise ValueError("mean_dependence_distance must be >= 1")
        check_in_range("chain_dep_fraction", self.chain_dep_fraction, 0.0, 1.0)
        check_in_range("second_dep_fraction", self.second_dep_fraction, 0.0, 1.0)
        check_in_range("branch_taken_fraction", self.branch_taken_fraction, 0.0, 1.0)
        check_in_range("mispredict_rate", self.mispredict_rate, 0.0, 1.0)
        check_positive("burst_factor", self.burst_factor)
        check_in_range("burst_fraction", self.burst_fraction, 0.0, 1.0)
        check_in_range("burst_persistence", self.burst_persistence, 0.0, 1.0)
        check_in_range("dl1_miss_rate", self.dl1_miss_rate, 0.0, 1.0)
        check_in_range("dl2_miss_rate", self.dl2_miss_rate, 0.0, 1.0)
        if self.dl1_miss_rate + self.dl2_miss_rate > 1.0:
            raise ValueError("dl1_miss_rate + dl2_miss_rate must not exceed 1")
        if self.il1_mpki < 0 or self.il1_mpki > 1000:
            raise ValueError(f"il1_mpki must be in [0, 1000], got {self.il1_mpki}")
        check_positive("code_footprint_bytes", self.code_footprint_bytes)
        check_positive("data_footprint_bytes", self.data_footprint_bytes)
        check_in_range("stride_fraction", self.stride_fraction, 0.0, 1.0)
        check_positive("stride_bytes", self.stride_bytes)
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"instruction mix must sum to 1, sums to {total}")
        if any(frac < 0 for frac in self.mix.values()):
            raise ValueError("instruction mix fractions must be non-negative")
        if OpClass.NOP in self.mix:
            raise ValueError("NOP has no place in a workload mix")

    @property
    def dependence_p(self) -> float:
        """Per-step success probability of the shifted geometric."""
        return 1.0 / self.mean_dependence_distance

    @property
    def chain_count(self) -> int:
        """Number of concurrent serial recurrence chains.

        The generator threads most dependences through ``chain_count``
        independent serial chains (loop-carried recurrences); with unit
        latencies the trace's dataflow IPC is therefore approximately
        ``chain_count``, giving ``mean_dependence_distance`` its
        intended meaning as the ILP knob (contributor C3).
        """
        return max(1, round(self.mean_dependence_distance))

    @property
    def branch_fraction(self) -> float:
        return self.mix.get(OpClass.BRANCH, 0.0)

    @property
    def load_fraction(self) -> float:
        return self.mix.get(OpClass.LOAD, 0.0)

    @property
    def mispredictions_per_ki(self) -> float:
        """Expected branch mispredictions per 1000 instructions."""
        return 1000.0 * self.branch_fraction * self.mispredict_rate

    @property
    def long_dmisses_per_ki(self) -> float:
        """Expected long (L2) D-cache misses per 1000 instructions."""
        return 1000.0 * self.load_fraction * self.dl2_miss_rate

    @property
    def miss_events_per_ki(self) -> float:
        """Expected miss events (paper definition) per 1000 instructions."""
        return (
            self.mispredictions_per_ki + self.il1_mpki + self.long_dmisses_per_ki
        )

    def with_overrides(self, **kwargs) -> "WorkloadProfile":
        """Return a copy with the given fields replaced (sweeps use this)."""
        return replace(self, **kwargs)

    def scaled_mispredict_rate(self, in_burst: bool) -> float:
        """Effective per-branch misprediction probability in each Markov
        state, chosen so the long-run average equals ``mispredict_rate``.

        With a fraction ``f`` of branches in the bursty state and a
        burst factor ``k``, rates are ``r_low`` outside bursts and
        ``k * r_low`` inside, with ``r_low = rate / (1 - f + k f)``.
        """
        f = self.burst_fraction
        k = self.burst_factor
        r_low = self.mispredict_rate / (1.0 - f + k * f)
        rate = r_low * k if in_burst else r_low
        return min(rate, 1.0)
