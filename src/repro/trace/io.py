"""Binary trace serialization.

Format (little-endian)::

    magic   4s   b"RTRC"
    version H    1
    namelen H    + utf-8 name bytes
    count   Q
    records ...

Each record::

    opclass B    ordinal into OpClass definition order
    flags   H    bit0 has_mem, bit1 taken, bit2 has_target,
                 bits 3-4 mispredict, 5-6 il1, 7-8 dl1, 9-10 dl2
                 (tri-state: 0 none, 1 false, 2 true)
    pc      Q
    ndeps   B    + ndeps * H dependence distances
    mem     Q    (only when has_mem)
    target  Q    (only when has_target)
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Optional, Union

from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace

MAGIC = b"RTRC"
VERSION = 1
_OPCLASSES = list(OpClass)
_ORDINAL = {op_class: i for i, op_class in enumerate(_OPCLASSES)}

_MAX_DEP_DISTANCE = 0xFFFF


def _encode_tri(value: Optional[bool]) -> int:
    if value is None:
        return 0
    return 2 if value else 1


def _decode_tri(code: int) -> Optional[bool]:
    if code == 0:
        return None
    return code == 2


def _write_record(out: BinaryIO, record: TraceRecord) -> None:
    flags = 0
    if record.mem_addr is not None:
        flags |= 1
    if record.taken:
        flags |= 2
    if record.target is not None:
        flags |= 4
    flags |= _encode_tri(record.mispredict) << 3
    flags |= _encode_tri(record.il1_miss) << 5
    flags |= _encode_tri(record.dl1_miss) << 7
    flags |= _encode_tri(record.dl2_miss) << 9
    deps = record.deps
    if any(d > _MAX_DEP_DISTANCE for d in deps):
        raise ValueError(f"dependence distance exceeds {_MAX_DEP_DISTANCE}")
    out.write(struct.pack("<BHQB", _ORDINAL[record.op_class], flags, record.pc, len(deps)))
    if deps:
        out.write(struct.pack(f"<{len(deps)}H", *deps))
    if record.mem_addr is not None:
        out.write(struct.pack("<Q", record.mem_addr))
    if record.target is not None:
        out.write(struct.pack("<Q", record.target))


def _read_exact(stream: BinaryIO, size: int) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise ValueError("truncated trace file")
    return data


def _read_record(stream: BinaryIO) -> TraceRecord:
    op_ord, flags, pc, ndeps = struct.unpack("<BHQB", _read_exact(stream, 12))
    if op_ord >= len(_OPCLASSES):
        raise ValueError(f"bad op-class ordinal {op_ord}")
    deps = ()
    if ndeps:
        deps = struct.unpack(f"<{ndeps}H", _read_exact(stream, 2 * ndeps))
    mem_addr = None
    if flags & 1:
        (mem_addr,) = struct.unpack("<Q", _read_exact(stream, 8))
    target = None
    if flags & 4:
        (target,) = struct.unpack("<Q", _read_exact(stream, 8))
    return TraceRecord(
        op_class=_OPCLASSES[op_ord],
        pc=pc,
        deps=deps,
        mem_addr=mem_addr,
        taken=bool(flags & 2),
        target=target,
        mispredict=_decode_tri((flags >> 3) & 3),
        il1_miss=_decode_tri((flags >> 5) & 3),
        dl1_miss=_decode_tri((flags >> 7) & 3),
        dl2_miss=_decode_tri((flags >> 9) & 3),
    )


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` in the binary format above."""
    name_bytes = trace.name.encode("utf-8")
    with open(path, "wb") as out:
        out.write(MAGIC)
        out.write(struct.pack("<HH", VERSION, len(name_bytes)))
        out.write(name_bytes)
        out.write(struct.pack("<Q", len(trace)))
        for record in trace:
            _write_record(out, record)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with open(path, "rb") as stream:
        magic = stream.read(4)
        if magic != MAGIC:
            raise ValueError(f"not a trace file (magic {magic!r})")
        version, namelen = struct.unpack("<HH", _read_exact(stream, 4))
        if version != VERSION:
            raise ValueError(f"unsupported trace version {version}")
        name = _read_exact(stream, namelen).decode("utf-8")
        (count,) = struct.unpack("<Q", _read_exact(stream, 8))
        records = [_read_record(stream) for _ in range(count)]
    return Trace(records, name=name)
