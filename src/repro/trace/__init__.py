"""Dynamic instruction traces.

A :class:`~repro.trace.record.TraceRecord` is one dynamic instruction:
its operation class, program counter, *dynamic dependence distances*
(how many instructions back each of its producers executed), memory
address for loads/stores, and control-flow outcome for branches.

Records may additionally carry *annotations* — pre-resolved miss flags
(``mispredict``, ``il1_miss``, ``dl1_miss``, ``dl2_miss``). Annotated
traces let the synthetic workload generator place miss events with
statistical control, exactly as interval analysis requires; structural
runs instead derive those events from the branch predictor and cache
substrates.

Two trace producers are provided:

* :mod:`repro.trace.functional` executes an assembled
  :class:`~repro.isa.program.Program` and emits the real dynamic stream;
* :mod:`repro.trace.synthetic` generates a statistical stream from a
  :class:`~repro.trace.profiles.WorkloadProfile`.
"""

from repro.trace.record import TraceRecord
from repro.trace.stream import Trace, TraceStatistics
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import SyntheticTraceGenerator, generate_trace
from repro.trace.functional import FunctionalSimulator, ExecutionLimitExceeded
from repro.trace.io import load_trace, save_trace
from repro.trace.transforms import (
    interleave,
    truncate,
    with_perfect_branches,
    with_perfect_dcache,
    with_perfect_frontend,
    with_perfect_icache,
    without_short_misses,
)

__all__ = [
    "TraceRecord",
    "Trace",
    "TraceStatistics",
    "WorkloadProfile",
    "SyntheticTraceGenerator",
    "generate_trace",
    "FunctionalSimulator",
    "ExecutionLimitExceeded",
    "load_trace",
    "save_trace",
    "with_perfect_branches",
    "with_perfect_icache",
    "with_perfect_dcache",
    "with_perfect_frontend",
    "without_short_misses",
    "truncate",
    "interleave",
]
