"""Trace container and descriptive statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord
from repro.util.stats import Histogram


@dataclass
class TraceStatistics:
    """Descriptive statistics of a dynamic trace.

    These are exactly the quantities the synthetic generator is
    parameterized on, which lets tests close the loop: generate a trace
    from a profile, measure it, and check the statistics match.
    """

    instruction_count: int
    mix: Dict[str, float]
    branch_count: int
    taken_fraction: float
    mispredict_count: int
    mispredictions_per_ki: float
    il1_misses_per_ki: float
    dl1_miss_rate: float
    dl2_miss_rate: float
    mean_dependence_distance: float
    dependence_histogram: Histogram = field(repr=False)

    @property
    def mispredict_rate(self) -> float:
        """Mispredictions per conditional branch."""
        if not self.branch_count:
            return 0.0
        return self.mispredict_count / self.branch_count


class Trace:
    """An ordered sequence of :class:`TraceRecord` with metadata."""

    def __init__(
        self,
        records: Optional[Sequence[TraceRecord]] = None,
        name: str = "trace",
    ):
        self.records: List[TraceRecord] = list(records) if records else []
        self.name = name
        self._version = 0
        self._stats_cache: Optional[TraceStatistics] = None
        self._packed_cache = None

    @property
    def version(self) -> int:
        """Mutation counter; bumped by :meth:`append` / :meth:`extend`.

        Derived-value caches (statistics, packed form, reachability
        sets) key on this to notice when the record list has grown.
        """
        return self._version

    def _invalidate(self) -> None:
        self._version += 1
        self._stats_cache = None
        self._packed_cache = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)
        self._invalidate()

    def extend(self, records: Sequence[TraceRecord]) -> None:
        self.records.extend(records)
        self._invalidate()

    def slice(self, start: int, stop: int) -> "Trace":
        """Return a sub-trace. Dependences reaching before ``start`` are
        clipped to distance ``start`` offsets (treated as already
        complete by the simulator), so slicing is always safe."""
        return Trace(self.records[start:stop], name=f"{self.name}[{start}:{stop}]")

    @property
    def is_annotated(self) -> bool:
        """True when branch records carry oracle mispredict flags."""
        return all(
            record.mispredict is not None
            for record in self.records
            if record.is_branch
        )

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        for i, record in enumerate(self.records):
            if any(d < 1 for d in record.deps):
                raise ValueError(f"record {i}: non-positive dependence distance")
            if record.is_memory and record.mem_addr is None:
                raise ValueError(f"record {i}: memory op without address")

    def statistics(self) -> TraceStatistics:
        """Descriptive statistics over the whole trace.

        Memoized: the lab bills this per job, so repeated calls on an
        unchanged trace return the same object. :meth:`append` /
        :meth:`extend` invalidate the cache. Treat the result as
        read-only — it is shared between callers.
        """
        if self._stats_cache is None:
            self._stats_cache = self._compute_statistics()
        return self._stats_cache

    def pack(self):
        """This trace in columnar form (:class:`repro.perf.packed.
        PackedTrace`), memoized with the same invalidation as
        :meth:`statistics`."""
        if self._packed_cache is None:
            from repro.perf.packed import PackedTrace

            self._packed_cache = PackedTrace.pack(self)
        return self._packed_cache

    def _compute_statistics(self) -> TraceStatistics:
        mix_counts: Dict[str, int] = {}
        branch_count = 0
        taken_count = 0
        mispredict_count = 0
        il1_count = 0
        load_count = 0
        dl1_count = 0
        dl2_count = 0
        dep_hist = Histogram()
        for record in self.records:
            key = record.op_class.value
            mix_counts[key] = mix_counts.get(key, 0) + 1
            for dist in record.deps:
                dep_hist.add(dist)
            if record.is_branch:
                branch_count += 1
                taken_count += int(record.taken)
                mispredict_count += int(bool(record.mispredict))
            if record.il1_miss:
                il1_count += 1
            if record.is_load:
                load_count += 1
                dl1_count += int(bool(record.dl1_miss))
                dl2_count += int(bool(record.dl2_miss))
        n = len(self.records)
        per_ki = 1000.0 / n if n else 0.0
        return TraceStatistics(
            instruction_count=n,
            mix={k: v / n for k, v in mix_counts.items()} if n else {},
            branch_count=branch_count,
            taken_fraction=taken_count / branch_count if branch_count else 0.0,
            mispredict_count=mispredict_count,
            mispredictions_per_ki=mispredict_count * per_ki,
            il1_misses_per_ki=il1_count * per_ki,
            dl1_miss_rate=dl1_count / load_count if load_count else 0.0,
            dl2_miss_rate=dl2_count / load_count if load_count else 0.0,
            mean_dependence_distance=dep_hist.mean,
            dependence_histogram=dep_hist,
        )

    def branch_indices(self) -> List[int]:
        """Indices of conditional branches."""
        return [i for i, r in enumerate(self.records) if r.is_branch]

    def mispredicted_indices(self) -> List[int]:
        """Indices of annotated mispredicted branches."""
        return [
            i for i, r in enumerate(self.records) if r.is_branch and r.mispredict
        ]

    def critical_path_length(self, latency_of=None) -> int:
        """Dataflow critical path length of the whole trace, in cycles.

        ``latency_of`` maps an :class:`OpClass` to an execution latency;
        the default charges one cycle per instruction, which yields the
        classic dataflow-limit measure of inherent ILP.
        """
        if latency_of is None:
            latency_of = lambda op_class: 1  # noqa: E731 - tiny default
        finish: List[int] = []
        longest = 0
        for i, record in enumerate(self.records):
            start = 0
            for dist in record.deps:
                producer = i - dist
                if producer >= 0:
                    start = max(start, finish[producer])
            done = start + latency_of(record.op_class)
            finish.append(done)
            longest = max(longest, done)
        return longest

    def dataflow_ipc(self, latency_of=None) -> float:
        """Instructions per cycle at the dataflow limit (infinite window)."""
        if not self.records:
            return 0.0
        length = self.critical_path_length(latency_of)
        return len(self.records) / length if length else float(len(self.records))
