"""Micro-benchmark for the FastIntervalSimulator reachability cache.

``_depends_on`` answers "does consumer transitively depend on producer"
and dominates long-miss overlap detection on dl2-heavy traces.  The
cache memoizes per-record backward reach sets keyed by trace version;
this bench measures the cached path against the uncached BFS to keep
the memoization honest.
"""

import pytest

from repro.interval.fast_sim import FastIntervalSimulator
from repro.pipeline.config import CoreConfig
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace

N = 8_000
PAIRS = 2_000


@pytest.fixture(scope="module")
def trace():
    profile = WorkloadProfile(name="reach-bench", dl2_miss_rate=0.08)
    return generate_trace(profile, N, seed=2006)


@pytest.fixture(scope="module")
def pairs(trace):
    out = []
    step = max(1, N // PAIRS)
    for consumer in range(64, N, step):
        out.append((consumer, max(0, consumer - 48)))
    return out


def test_reachability_uncached_bfs(benchmark, trace, pairs):
    def run():
        hits = 0
        for consumer, producer in pairs:
            if FastIntervalSimulator._bfs_depends_on(
                trace, consumer, producer
            ):
                hits += 1
        return hits

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_reachability_cached(benchmark, trace, pairs):
    simulator = FastIntervalSimulator(CoreConfig())

    def run():
        hits = 0
        for consumer, producer in pairs:
            if simulator._depends_on(trace, consumer, producer):
                hits += 1
        return hits

    # Warm once so rounds measure the steady-state cached path.
    run()
    benchmark.pedantic(run, rounds=3, iterations=1)


def test_cached_matches_bfs(trace, pairs):
    simulator = FastIntervalSimulator(CoreConfig())
    for consumer, producer in pairs[:200]:
        assert simulator._depends_on(trace, consumer, producer) == \
            FastIntervalSimulator._bfs_depends_on(trace, consumer, producer)
