"""F9: penalty vs window (ROB) size."""

from conftest import run_once

from repro.harness.experiments import run_f9


def test_f9_window_size(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f9))
    resolutions = result.column("mean resolution")
    assert resolutions == sorted(resolutions)  # grows with window
    # sublinear growth: 8x window is far less than 8x resolution
    assert resolutions[-1] < 8 * resolutions[0]
