"""F5: distribution of inter-miss-event interval lengths."""

from conftest import run_once

from repro.harness.experiments import run_f5


def test_f5_interval_distribution(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f5))
    for row in result.rows:
        _name, p25, p50, p75, p90, _cv = row
        assert p25 <= p50 <= p75 <= p90
    # skew: median well below the p90 tail on every workload
    assert all(row[4] >= 2 * row[2] for row in result.rows if row[2] > 0)
