"""F1: dispatch-rate timeline around a branch misprediction."""

from conftest import run_once

from repro.harness.experiments import run_f1


def test_f1_interval_timeline(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f1))
    rates_by_phase = {}
    for _rel, rate, phase in result.rows:
        rates_by_phase.setdefault(phase, []).append(rate)
    steady = sum(rates_by_phase["steady"]) / len(rates_by_phase["steady"])
    refill = sum(rates_by_phase["refill"]) / len(rates_by_phase["refill"])
    # the interval sawtooth: dispatch collapses during resolve+refill
    assert refill < steady
