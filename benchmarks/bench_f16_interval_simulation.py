"""F16 (extension): interval simulation vs cycle-level simulation.

The forward-looking validation: the paper's interval analysis, applied
as a one-pass simulator, reproduces cycle-level CPI at a large speedup
— the idea that became interval simulation (Sniper).
"""

from conftest import run_once

from repro.harness.experiments import run_f16


def test_f16_interval_simulation(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f16))
    errors = result.column("CPI error %")
    speedups = result.column("speedup")
    assert sum(abs(e) for e in errors) / len(errors) < 12.0
    assert min(speedups) > 3.0
