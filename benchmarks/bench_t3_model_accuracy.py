"""T3: first-order interval model vs simulation."""

from conftest import run_once

from repro.harness.experiments import run_t3


def test_t3_model_accuracy(benchmark, record_result):
    result = record_result(run_once(benchmark, run_t3))
    errors = result.column("CPI error %")
    mean_abs = sum(abs(e) for e in errors) / len(errors)
    assert mean_abs < 15.0
    assert max(abs(e) for e in errors) < 35.0
