"""F2: misprediction penalty vs frontend pipeline length (the headline)."""

from conftest import run_once

from repro.harness.experiments import run_f2


def test_f2_penalty_vs_frontend(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f2))
    ratios = result.column("penalty/frontend")
    # The paper's headline: penalty substantially exceeds the frontend
    # pipeline length on every workload.
    assert all(ratio > 1.5 for ratio in ratios)
    assert max(ratios) > 5.0
