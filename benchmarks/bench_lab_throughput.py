"""Throughput benchmarks for the repro.lab execution subsystem.

Two claims are measured here:

1. **Parallel speedup** — dispatching independent simulation jobs over
   a 4-worker process pool beats serial execution. The ratio is always
   printed; the >= 2x assertion only fires on machines with at least
   four cores (a single-core container cannot demonstrate parallelism,
   only measure its overhead).
2. **Warm-cache speedup** — a second run of the same jobs against a
   populated content-addressed store is at least 5x faster than the
   cold run, because every job short-circuits to a store hit.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_lab_throughput.py -v -s
"""

from __future__ import annotations

import os
import time

from repro.lab.jobs import SimJob
from repro.lab.pool import run_jobs

WORKLOADS = ["gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk"]
LENGTH = 20_000


def _jobs():
    return [SimJob(workload=name, length=LENGTH) for name in WORKLOADS]


def _timed_run(jobs, workers, store_root, use_cache):
    start = time.perf_counter()
    results, telemetry = run_jobs(
        jobs,
        workers=workers,
        store_root=store_root,
        use_cache=use_cache,
        write_manifest=False,
    )
    elapsed = time.perf_counter() - start
    assert all(r.ok for r in results)
    return elapsed, telemetry


class TestParallelSpeedup:
    def test_four_workers_vs_one(self, tmp_path):
        jobs = _jobs()
        serial_s, _ = _timed_run(jobs, 1, tmp_path / "serial", False)
        parallel_s, _ = _timed_run(jobs, 4, tmp_path / "parallel", False)
        speedup = serial_s / parallel_s
        cores = os.cpu_count() or 1
        print(
            f"\nlab pool: {len(jobs)} jobs x {LENGTH} insns | "
            f"serial {serial_s:.2f}s, 4 workers {parallel_s:.2f}s, "
            f"speedup {speedup:.2f}x ({cores} cores)"
        )
        if cores >= 4:
            assert speedup >= 2.0, (
                f"expected >= 2x speedup with 4 workers on {cores} cores, "
                f"got {speedup:.2f}x"
            )


class TestWarmCacheSpeedup:
    def test_second_run_hits_store(self, tmp_path):
        jobs = _jobs()
        cold_s, cold = _timed_run(jobs, 1, tmp_path, True)
        warm_s, warm = _timed_run(jobs, 1, tmp_path, True)
        assert cold.cached == 0
        assert warm.cached == len(jobs)
        speedup = cold_s / warm_s
        print(
            f"\nlab store: cold {cold_s:.2f}s, warm {warm_s:.2f}s, "
            f"speedup {speedup:.1f}x"
        )
        assert speedup >= 5.0, (
            f"expected >= 5x warm-cache speedup, got {speedup:.1f}x"
        )
