"""Throughput benchmarks for the repro.lab execution subsystem.

Two claims are measured here:

1. **Parallel speedup** — dispatching independent simulation jobs over
   a 4-worker process pool beats serial execution. The ratio is always
   printed; the >= 2x assertion only fires on machines with at least
   four cores (a single-core container cannot demonstrate parallelism,
   only measure its overhead).
2. **Warm-cache speedup** — a second run of the same jobs against a
   populated content-addressed store is at least 5x faster than the
   cold run, because every job short-circuits to a store hit.
3. **Disarmed fault injection is (nearly) free** — with ``REPRO_FAULTS``
   unset, every ``fault_point`` reduces to a couple of None checks and
   an env lookup. The guard times a generous over-count of the fault
   points a run actually crosses and asserts they fit inside 1% of the
   *warm* run — the fastest path, hence the tightest bound.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_lab_throughput.py -v -s
"""

from __future__ import annotations

import os
import time

from repro.lab.jobs import SimJob
from repro.lab.pool import run_jobs
from repro.resilience import faults

WORKLOADS = ["gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk"]
LENGTH = 20_000


def _jobs():
    return [SimJob(workload=name, length=LENGTH) for name in WORKLOADS]


def _timed_run(jobs, workers, store_root, use_cache):
    start = time.perf_counter()
    results, telemetry = run_jobs(
        jobs,
        workers=workers,
        store_root=store_root,
        use_cache=use_cache,
        write_manifest=False,
    )
    elapsed = time.perf_counter() - start
    assert all(r.ok for r in results)
    return elapsed, telemetry


class TestParallelSpeedup:
    def test_four_workers_vs_one(self, tmp_path):
        jobs = _jobs()
        serial_s, _ = _timed_run(jobs, 1, tmp_path / "serial", False)
        parallel_s, _ = _timed_run(jobs, 4, tmp_path / "parallel", False)
        speedup = serial_s / parallel_s
        cores = os.cpu_count() or 1
        print(
            f"\nlab pool: {len(jobs)} jobs x {LENGTH} insns | "
            f"serial {serial_s:.2f}s, 4 workers {parallel_s:.2f}s, "
            f"speedup {speedup:.2f}x ({cores} cores)"
        )
        if cores >= 4:
            assert speedup >= 2.0, (
                f"expected >= 2x speedup with 4 workers on {cores} cores, "
                f"got {speedup:.2f}x"
            )


class TestWarmCacheSpeedup:
    def test_second_run_hits_store(self, tmp_path):
        jobs = _jobs()
        cold_s, cold = _timed_run(jobs, 1, tmp_path, True)
        warm_s, warm = _timed_run(jobs, 1, tmp_path, True)
        assert cold.cached == 0
        assert warm.cached == len(jobs)
        speedup = cold_s / warm_s
        print(
            f"\nlab store: cold {cold_s:.2f}s, warm {warm_s:.2f}s, "
            f"speedup {speedup:.1f}x"
        )
        assert speedup >= 5.0, (
            f"expected >= 5x warm-cache speedup, got {speedup:.1f}x"
        )


class TestFaultPointOverhead:
    #: Generous upper bound on fault points crossed per job: one
    #: store.read, one store.write, one job.execute, two cache.npz,
    #: padded 20x for headroom.
    POINTS_PER_JOB = 100
    BUDGET = 0.01

    def test_disarmed_fault_points_fit_the_one_percent_budget(self, tmp_path):
        jobs = _jobs()
        faults.reset()  # REPRO_FAULTS unset: every point is a passthrough
        _timed_run(jobs, 1, tmp_path, True)          # populate the store
        warm_s, warm = _timed_run(jobs, 1, tmp_path, True)
        assert warm.cached + warm.resumed == len(jobs)

        calls = self.POINTS_PER_JOB * len(jobs)
        payload = b"x" * 64
        start = time.perf_counter()
        for _ in range(calls):
            faults.fault_point("store.read", payload)
        guard_s = time.perf_counter() - start

        ratio = guard_s / warm_s
        print(
            f"\nlab faults: {calls} disarmed fault points "
            f"{guard_s * 1e3:.2f} ms vs warm run {warm_s * 1e3:.1f} ms "
            f"= {ratio:.2%} (budget {self.BUDGET:.0%})"
        )
        assert ratio < self.BUDGET, (
            f"disarmed fault_point overhead {ratio:.2%} exceeds "
            f"{self.BUDGET:.0%} of a warm lab run"
        )
