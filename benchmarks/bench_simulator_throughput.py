"""Throughput benchmarks of the simulators themselves.

Unlike the experiment benches (timed once — their output is the table),
these measure the infrastructure: instructions simulated per second for
the cycle-level core, the in-order core, and interval simulation, plus
trace generation. Several rounds give real timing distributions.
"""

import pytest

from repro.interval.fast_sim import FastIntervalSimulator
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.pipeline.inorder import simulate_inorder
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace

N = 20_000


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadProfile(name="speed"), N, seed=99)


@pytest.fixture(scope="module")
def config():
    return CoreConfig()


def test_throughput_trace_generation(benchmark):
    profile = WorkloadProfile(name="speed")
    result = benchmark.pedantic(
        lambda: generate_trace(profile, N, seed=1),
        rounds=3,
        iterations=1,
    )
    assert len(result) == N


def test_throughput_ooo_core(benchmark, trace, config):
    result = benchmark.pedantic(
        lambda: simulate(trace, config), rounds=3, iterations=1
    )
    assert result.instructions == N


def test_throughput_ooo_core_no_timeline(benchmark, trace):
    config = CoreConfig(record_timeline=False)
    result = benchmark.pedantic(
        lambda: simulate(trace, config), rounds=3, iterations=1
    )
    assert result.instructions == N


def test_throughput_inorder_core(benchmark, trace, config):
    result = benchmark.pedantic(
        lambda: simulate_inorder(trace, config), rounds=3, iterations=1
    )
    assert result.instructions == N


def test_throughput_interval_simulation(benchmark, trace, config):
    simulator = FastIntervalSimulator(config)
    estimate = benchmark.pedantic(
        lambda: simulator.estimate(trace), rounds=3, iterations=1
    )
    assert estimate.instructions == N


def test_throughput_pack(benchmark, trace):
    from repro.perf.packed import PackedTrace

    packed = benchmark.pedantic(
        lambda: PackedTrace.pack(trace), rounds=3, iterations=1
    )
    assert len(packed) == N


def test_throughput_vectorized_fast_sim(benchmark, trace, config):
    from repro.perf.fast import VectorizedIntervalSimulator

    estimator = VectorizedIntervalSimulator(config)
    packed = trace.pack()
    estimate = benchmark.pedantic(
        lambda: estimator.estimate(packed), rounds=3, iterations=1
    )
    assert estimate.instructions == N


def test_throughput_vectorized_replay(benchmark, trace):
    from repro.perf.replay import replay

    packed = trace.pack()
    result = benchmark.pedantic(
        lambda: replay(packed, "gshare"), rounds=3, iterations=1
    )
    assert result.branch_count == sum(
        1 for r in trace.records if r.is_branch
    )


def test_throughput_vectorized_statistics(benchmark, trace):
    from repro.perf.kernels import packed_statistics

    packed = trace.pack()
    stats = benchmark.pedantic(
        lambda: packed_statistics(packed), rounds=3, iterations=1
    )
    assert stats.instruction_count == N
