"""F17 (extension): predictor quality vs misprediction cost."""

from conftest import run_once

from repro.harness.experiments import run_f17


def test_f17_predictor_quality(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f17))
    by_name = {row[0]: row for row in result.rows}
    # better predictors pay the penalty less often
    assert by_name["tage"][1] < by_name["static-taken"][1]
    assert by_name["tournament"][1] <= by_name["bimodal"][1]
    # ...but the penalty PER EVENT is a property of machine + code, not
    # of the predictor: all predictors sit in one band (paper's point)
    penalties = [row[2] for row in result.rows if row[2] > 0]
    assert max(penalties) < 1.6 * min(penalties)
