"""F7: penalty vs functional-unit latency (C4)."""

from conftest import run_once

from repro.harness.experiments import run_f7


def test_f7_fu_latency(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f7))
    resolutions = result.column("mean resolution")
    ipcs = result.column("IPC")
    assert resolutions == sorted(resolutions)  # monotone in latency scale
    assert ipcs[0] > ipcs[-1]
