"""F6: penalty vs inherent program ILP (C3)."""

from conftest import run_once

from repro.harness.experiments import run_f6


def test_f6_ilp_sensitivity(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f6))
    resolutions = result.column("mean resolution")
    dataflow = result.column("dataflow IPC")
    # more ILP -> shorter chains -> faster resolution
    assert dataflow == sorted(dataflow)
    assert resolutions[0] > resolutions[-1]
