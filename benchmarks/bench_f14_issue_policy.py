"""F14 (ablation): oldest-first vs random-ready issue selection."""

from conftest import run_once

from repro.harness.experiments import run_f14


def test_f14_issue_policy(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f14))
    for row in result.rows:
        _name, _p_old, _p_rand, ipc_oldest, ipc_random = row
        assert ipc_random <= ipc_oldest * 1.02
