"""F15 (ablation): sensitivity of segmentation to the event definition."""

from conftest import run_once

from repro.harness.experiments import run_f15


def test_f15_event_definition(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f15))
    for row in result.rows:
        _name, paper_rate, ext_rate, paper_gap, ext_gap = row
        assert ext_rate >= paper_rate
        assert ext_gap <= paper_gap
