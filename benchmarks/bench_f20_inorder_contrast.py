"""F20 (extension): out-of-order vs in-order misprediction penalty."""

from conftest import run_once

from repro.harness.experiments import run_f20


def test_f20_inorder_contrast(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f20))
    for row in result.rows:
        _, res_ooo, res_ino, pen_ooo, pen_ino, ipc_ooo, ipc_ino = row
        # the paper's effect is an OoO-window phenomenon
        assert res_ino < 0.5 * res_ooo
        assert pen_ino < pen_ooo
        # folk wisdom nearly true in-order (5-cycle frontend)
        assert pen_ino < 15.0
        # and the OoO machine pays for the window with performance won
        assert ipc_ooo > ipc_ino
