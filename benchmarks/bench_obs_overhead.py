"""Overhead guard for the observability hooks.

Two properties protect the simulator's throughput:

* **Disabled is (nearly) free.** With no pillar enabled, the hooks
  reduce to a handful of ``is not None`` branches per simulated cycle.
  We time exactly that guard pattern over the run's cycle count and
  assert it fits inside the 3% budget of the simulation itself — a
  conservative upper bound that does not depend on comparing two noisy
  end-to-end timings.
* **Enabled stays proportionate.** With tracing + metrics on, the extra
  work is per miss event (sparse), not per cycle; the end-to-end ratio
  against a disabled run must stay under a generous bound.
"""

from __future__ import annotations

import statistics

from repro.obs import runtime as obs_runtime
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace
from repro.util.timing import default_clock

N = 20_000
ROUNDS = 5
DISABLED_BUDGET = 0.03
ENABLED_BOUND = 1.5

#: Hooks evaluated per main-loop iteration when everything is disabled
#: (tracer/metrics handles plus the profiler's clock guard).
GUARDS_PER_CYCLE = 5


def _median_sim_seconds(trace, config) -> float:
    times = []
    for _ in range(ROUNDS):
        start = default_clock()
        simulate(trace, config)
        times.append(default_clock() - start)
    return statistics.median(times)


def test_disabled_hooks_fit_the_three_percent_budget(capsys):
    obs_runtime.reset()
    trace = generate_trace(WorkloadProfile(name="overhead"), N, seed=41)
    config = CoreConfig()
    cycles = simulate(trace, config).cycles
    sim_seconds = _median_sim_seconds(trace, config)

    tracer = metrics = prof = clock = None
    sink = 0
    start = default_clock()
    for _ in range(cycles):
        if tracer is not None:
            sink += 1
        if metrics is not None:
            sink += 1
        if prof is not None:
            sink += 1
        if clock is not None:
            sink += 1
        if tracer is not None:
            sink += 1
    guard_seconds = default_clock() - start
    assert sink == 0

    ratio = guard_seconds / sim_seconds
    with capsys.disabled():
        print(
            f"\n[obs overhead] {GUARDS_PER_CYCLE} guards x {cycles} cycles: "
            f"{guard_seconds * 1e3:.2f} ms vs {sim_seconds * 1e3:.1f} ms "
            f"simulate = {ratio:.2%} (budget {DISABLED_BUDGET:.0%})"
        )
    assert ratio < DISABLED_BUDGET


def test_enabled_tracing_cost_stays_proportionate(capsys):
    trace = generate_trace(WorkloadProfile(name="overhead"), N, seed=41)
    config = CoreConfig()

    obs_runtime.reset()
    disabled = _median_sim_seconds(trace, config)

    obs_runtime.enable_tracing()
    obs_runtime.enable_metrics()
    try:
        enabled = _median_sim_seconds(trace, config)
    finally:
        obs_runtime.reset()

    ratio = enabled / disabled
    with capsys.disabled():
        print(
            f"\n[obs overhead] tracing+metrics on: {enabled * 1e3:.1f} ms vs "
            f"{disabled * 1e3:.1f} ms off = {ratio:.2f}x "
            f"(bound {ENABLED_BOUND}x)"
        )
    assert ratio < ENABLED_BOUND
