"""Overhead guard for the observability hooks.

Two properties protect the simulator's throughput:

* **Disabled is (nearly) free.** With no pillar enabled, the hooks
  reduce to a handful of ``is not None`` branches per simulated cycle.
  We time exactly that guard pattern over the run's cycle count and
  assert it fits inside the 3% budget of the simulation itself — a
  conservative upper bound that does not depend on comparing two noisy
  end-to-end timings.
* **Enabled stays proportionate.** With tracing + metrics on, the extra
  work is per miss event (sparse), not per cycle; the end-to-end ratio
  against a disabled run must stay under a generous bound.

The serve plane gets the same two guards: with request tracing off the
per-request additions (two telemetry samples plus the tracing check)
must fit a 3% budget of a warm round trip, and with tracing fully on
the per-request additions (span records, ambient context, the
latency-stack fold, histogram recording) must fit an 8% budget.
"""

from __future__ import annotations

import asyncio
import statistics

from repro.obs import runtime as obs_runtime
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace
from repro.util.timing import default_clock

N = 20_000
ROUNDS = 5
DISABLED_BUDGET = 0.03
ENABLED_BOUND = 1.5

#: Hooks evaluated per main-loop iteration when everything is disabled
#: (tracer/metrics handles plus the profiler's clock guard).
GUARDS_PER_CYCLE = 5


def _median_sim_seconds(trace, config) -> float:
    times = []
    for _ in range(ROUNDS):
        start = default_clock()
        simulate(trace, config)
        times.append(default_clock() - start)
    return statistics.median(times)


def test_disabled_hooks_fit_the_three_percent_budget(capsys):
    obs_runtime.reset()
    trace = generate_trace(WorkloadProfile(name="overhead"), N, seed=41)
    config = CoreConfig()
    cycles = simulate(trace, config).cycles
    sim_seconds = _median_sim_seconds(trace, config)

    tracer = metrics = prof = clock = None
    sink = 0
    start = default_clock()
    for _ in range(cycles):
        if tracer is not None:
            sink += 1
        if metrics is not None:
            sink += 1
        if prof is not None:
            sink += 1
        if clock is not None:
            sink += 1
        if tracer is not None:
            sink += 1
    guard_seconds = default_clock() - start
    assert sink == 0

    ratio = guard_seconds / sim_seconds
    with capsys.disabled():
        print(
            f"\n[obs overhead] {GUARDS_PER_CYCLE} guards x {cycles} cycles: "
            f"{guard_seconds * 1e3:.2f} ms vs {sim_seconds * 1e3:.1f} ms "
            f"simulate = {ratio:.2%} (budget {DISABLED_BUDGET:.0%})"
        )
    assert ratio < DISABLED_BUDGET


def test_enabled_tracing_cost_stays_proportionate(capsys):
    trace = generate_trace(WorkloadProfile(name="overhead"), N, seed=41)
    config = CoreConfig()

    obs_runtime.reset()
    disabled = _median_sim_seconds(trace, config)

    obs_runtime.enable_tracing()
    obs_runtime.enable_metrics()
    try:
        enabled = _median_sim_seconds(trace, config)
    finally:
        obs_runtime.reset()

    ratio = enabled / disabled
    with capsys.disabled():
        print(
            f"\n[obs overhead] tracing+metrics on: {enabled * 1e3:.1f} ms vs "
            f"{disabled * 1e3:.1f} ms off = {ratio:.2f}x "
            f"(bound {ENABLED_BOUND}x)"
        )
    assert ratio < ENABLED_BOUND

# -- serve round-trip guards --------------------------------------------

SERVE_REQUEST = {"op": "simulate", "workload": "gzip", "length": 1500}
SERVE_BATCH = 200
SERVE_ROUNDS = 7
#: The traced-path replay is microseconds per call, so a much larger
#: batch is affordable and gives the min() a far steadier floor.
SERVE_ADDITIONS_BATCH = 1000
SERVE_DISABLED_BUDGET = 0.03
SERVE_ENABLED_BUDGET = 0.08


def _min_interleaved_ratio(svc, additions_batch_seconds):
    """Best per-round ratio of traced-path additions to a warm round trip.

    The two quantities must be measured *back-to-back inside the same
    round*: this box drifts between a fast and a slow regime (the same
    tight loop measures 3us in one phase and 11us minutes later), so
    timing all round trips first and all additions second lets a regime
    flip land between the phases and skew the ratio either way. Pairing
    them per round makes the drift hit both sides of the division, and
    the min over rounds picks the cleanest pairing.
    """
    best = None
    for _ in range(SERVE_ROUNDS):
        round_trip = _batch_seconds(svc) / SERVE_BATCH
        additions = additions_batch_seconds() / SERVE_ADDITIONS_BATCH
        ratio = additions / round_trip
        if best is None or ratio < best[0]:
            best = (ratio, additions, round_trip)
    return best


def _warm_service(root, trace_requests):
    from repro.serve.service import ExperimentService

    svc = ExperimentService(
        store_root=root, n_shards=1, trace_requests=trace_requests
    )
    svc.start()
    warm = asyncio.run(svc.handle(dict(SERVE_REQUEST)))
    assert warm["ok"]
    return svc


def _batch_seconds(svc) -> float:
    async def batch():
        for _ in range(SERVE_BATCH):
            response = await svc.handle(dict(SERVE_REQUEST))
            assert response["ok"]

    start = default_clock()
    asyncio.run(batch())
    return default_clock() - start


def test_serve_disabled_tracing_guard_fits_budget(tmp_path, capsys):
    """The untraced request path adds only the telemetry samples and
    the tracing check; time exactly those additions against a warm
    round trip — a bound that does not race two noisy end-to-end runs."""
    svc = _warm_service(tmp_path / "cache", trace_requests=False)
    try:

        def additions_batch_seconds():
            start = default_clock()
            for _ in range(SERVE_ADDITIONS_BATCH):
                svc._sample_queues()
                svc._sample_queues()
                svc._tracing_on()
            return default_clock() - start

        ratio, guard_seconds, round_trip = _min_interleaved_ratio(
            svc, additions_batch_seconds
        )
    finally:
        svc.close()
    with capsys.disabled():
        print(
            f"\n[serve overhead] disabled-path additions: "
            f"{guard_seconds * 1e6:.2f} us vs {round_trip * 1e6:.1f} us "
            f"warm round trip = {ratio:.2%} "
            f"(budget {SERVE_DISABLED_BUDGET:.0%})"
        )
    assert ratio < SERVE_DISABLED_BUDGET


def test_serve_enabled_tracing_round_trip_bound(tmp_path, capsys):
    """The per-request cost of full tracing fits an 8% budget of a
    warm round trip.

    Racing a traced service against an untraced one is hopeless here:
    on a loaded CI box the run-to-run spread of the round trip itself
    dwarfs a single-digit-percent bound (the same interleaved A/B
    comparison measured anywhere from 1.0x to 1.5x on *identical*
    code). So — exactly like the disabled guard above — time the
    *additions* directly: replay every operation the traced path
    layers onto a warm tier-0 hit (trace adoption, the root span, the
    cache-probe and serialize spans, ambient context, the latency-
    stack fold, histogram recording, response meta) and hold their sum
    against the measured round trip."""
    from repro.obs import context as obs_context
    from repro.obs.spans import fold_latency_stack_records
    from repro.serve import protocol

    svc = _warm_service(tmp_path / "cache", trace_requests=False)
    try:
        collector = svc.spans

        meta = {"key": "k", "source": "tier0", "coalesced": False}

        def traced_additions_once():
            # Mirrors ExperimentService.handle with tracing on, minus
            # everything an untraced request already pays for (the
            # current_collector probe in cache.lookup and the base
            # response meta exist on both sides, so neither is timed
            # as an addition here).
            protocol.trace_fields(SERVE_REQUEST)
            trace_id = collector.new_trace_id()
            mark = collector.mark()
            root = collector.start(
                "request", trace_id=trace_id, parent_id=None, op="simulate"
            )
            token = obs_context.activate(
                obs_context.TraceContext(trace_id, root.span_id), collector
            )
            # Tier-0 probe span — the traced branch of cache.lookup.
            ctx = obs_context.current_context()
            t0 = collector.now()
            collector.add_complete(
                "cache_tier0", trace_id=ctx.trace_id,
                parent_id=ctx.span_id, start_ns=t0,
                hit=True, key="0123456789ab",
            )
            # Serialize span — the traced tail of _simulate.
            ctx = obs_context.current_context()
            t0 = collector.now()
            collector.add_complete(
                "serialize", trace_id=ctx.trace_id,
                parent_id=ctx.span_id, start_ns=t0,
            )
            obs_context.deactivate(token)
            collector.finish(root, status="ok")
            stack = fold_latency_stack_records(
                root, collector.since_records(mark)
            )
            svc._record_stack(stack)
            meta["trace_id"] = root.trace_id
            meta["span_id"] = root.span_id
            meta["wall_ns"] = root.duration_ns
            meta["latency_stack_ns"] = stack

        def additions_batch_seconds():
            start = default_clock()
            for _ in range(SERVE_ADDITIONS_BATCH):
                traced_additions_once()
            return default_clock() - start

        ratio, additions, round_trip = _min_interleaved_ratio(
            svc, additions_batch_seconds
        )
    finally:
        svc.close()
    with capsys.disabled():
        print(
            f"\n[serve overhead] enabled-tracing additions: "
            f"{additions * 1e6:.2f} us vs {round_trip * 1e6:.1f} us "
            f"warm round trip = {ratio:.2%} "
            f"(budget {SERVE_ENABLED_BUDGET:.0%})"
        )
    assert ratio < SERVE_ENABLED_BUDGET
