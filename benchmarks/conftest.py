"""Shared helpers for the benchmark harness.

Each benchmark runs one experiment from DESIGN.md's index, prints the
reproduced table/figure rows, writes them under ``benchmarks/results/``
and reports the wall-clock via pytest-benchmark. Baseline simulations
are cached in-process, so later benchmarks reuse the suite runs of
earlier ones.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_result():
    """Print an ExperimentResult and persist it to results/<id>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result):
        rendered = result.render()
        print()
        print(rendered)
        (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(
            rendered + "\n", encoding="utf-8"
        )
        return result

    return _record


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (experiments are deterministic and the
    interesting output is the table, not the timing distribution)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
