"""F8: penalty vs short (L1) D-cache miss rate (C5)."""

from conftest import run_once

from repro.harness.experiments import run_f8


def test_f8_short_dmiss(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f8))
    resolutions = result.column("mean resolution")
    # short misses are not miss events, yet they inflate resolution
    assert resolutions[-1] > resolutions[0]
    ipcs = result.column("IPC")
    assert ipcs[0] > ipcs[-1]
