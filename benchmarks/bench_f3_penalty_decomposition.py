"""F3: penalty decomposition into resolution time + frontend refill."""

import pytest
from conftest import run_once

from repro.harness.experiments import run_f3


def test_f3_penalty_decomposition(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f3))
    for row in result.rows:
        _name, _count, resolution, refill, total = row
        assert total == pytest.approx(resolution + refill)
        assert resolution > 0
