"""T2: benchmark characteristics of the SPEC-like suite."""

from conftest import run_once

from repro.harness.experiments import SUITE, run_t2


def test_t2_characteristics(benchmark, record_result):
    result = record_result(run_once(benchmark, run_t2))
    assert result.column("workload") == SUITE
    by_name = dict(zip(result.column("workload"), result.column("IPC")))
    # mcf is the memory-bound outlier; crafty/eon the high-ILP end
    assert by_name["mcf"] == min(by_name.values())
    assert by_name["crafty"] > by_name["mcf"]
