"""F19 (extension): penalty vs machine width."""

from conftest import run_once

from repro.harness.experiments import run_f19


def test_f19_machine_width(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f19))
    ipcs = result.column("IPC")
    penalties = result.column("mean penalty")
    # IPC scales with width (bounded by the workloads' ILP)...
    assert ipcs[-1] > 1.5 * ipcs[0]
    assert ipcs == sorted(ipcs)
    # ...while the penalty moves much less (chain-bound, not width-bound)
    spread = max(penalties) / min(penalties)
    ipc_spread = ipcs[-1] / ipcs[0]
    assert spread < ipc_spread
