"""F11: five-contributor attribution of the misprediction penalty."""

import pytest
from conftest import run_once

from repro.harness.experiments import run_f11


def test_f11_contributors(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f11))
    for row in result.rows:
        _name, refill, ilp, fu, short, residual, total, _gap = row
        assert refill + ilp + fu + short + residual == pytest.approx(total)
        assert ilp > 0  # the ILP chain always contributes
    by_name = {row[0]: row for row in result.rows}
    # mcf's short-miss contribution dwarfs crafty's
    assert by_name["mcf"][4] > by_name["crafty"][4]
