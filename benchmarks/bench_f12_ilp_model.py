"""F12: ILP power-law profile fit per workload."""

from conftest import run_once

from repro.harness.experiments import run_f12


def test_f12_ilp_model(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f12))
    assert all(r2 > 0.9 for r2 in result.column("R^2"))
    assert all(0.1 < beta < 1.1 for beta in result.column("beta"))
