"""T1: baseline processor configuration table."""

from conftest import run_once

from repro.harness.experiments import run_t1


def test_t1_config(benchmark, record_result):
    result = record_result(run_once(benchmark, run_t1))
    rows = dict((name, value) for name, value in result.rows)
    assert rows["ROB / issue window"] == "128"
    assert rows["frontend pipeline depth"] == "5 cycles"
