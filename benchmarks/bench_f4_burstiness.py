"""F4: resolution time vs instructions since the last miss event (C2)."""

from conftest import run_once

from repro.harness.experiments import run_f4


def test_f4_burstiness(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f4))
    rows = [row for row in result.rows if row[1] > 0]
    # short gaps (near-empty window) resolve faster than saturated ones
    assert rows[-1][2] > rows[0][2]
