"""F10: interval CPI stacks per workload."""

import pytest
from conftest import run_once

from repro.harness.experiments import run_f10


def test_f10_cpi_stacks(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f10))
    by_name = {row[0]: row for row in result.rows}
    for row in result.rows:
        _, base, bpred, icache, longd, other, total = row
        assert base + bpred + icache + longd + other == pytest.approx(total)
    # the stacks separate the workload classes
    assert by_name["mcf"][4] > by_name["gzip"][4]  # memory-bound
    assert by_name["gcc"][3] > by_name["gzip"][3]  # icache-bound
    assert by_name["twolf"][2] > by_name["eon"][2]  # bpred-bound
