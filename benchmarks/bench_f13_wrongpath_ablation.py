"""F13 (ablation): wrong-path ghost dispatch vs dispatch stop."""

import pytest
from conftest import run_once

from repro.harness.experiments import run_f13


def test_f13_wrongpath_ablation(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f13))
    for row in result.rows:
        _name, stop_penalty, wp_penalty, _ipc_s, _ipc_w, ghosts = row
        assert wp_penalty == pytest.approx(stop_penalty, rel=0.25)
        assert ghosts > 0
