"""F18 (extension): prefetching as miss-event thinning."""

from conftest import run_once

from repro.harness.experiments import run_f18


def test_f18_prefetching(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f18))
    baseline, prefetched = result.rows
    assert prefetched[1] < baseline[1]  # L1D miss rate falls
    assert prefetched[2] < baseline[2]  # fewer miss events
    assert prefetched[3] > baseline[3]  # longer intervals
    assert prefetched[4] >= baseline[4]  # IPC does not regress
