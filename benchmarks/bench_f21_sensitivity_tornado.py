"""F21 (extension): one-factor sensitivity tornado of the penalty."""

from conftest import run_once

from repro.harness.experiments import run_f21


def test_f21_sensitivity_tornado(benchmark, record_result):
    result = record_result(run_once(benchmark, run_f21))
    swings = {row[0]: row[3] for row in result.rows}
    # every contributor knob moves the penalty in the expected direction
    for label, swing in swings.items():
        if label.startswith("C2"):
            # burstiness lowers the mean penalty (cheap clustered events)
            assert swing < 0, label
        else:
            assert swing > 0, label
    # none is negligible
    assert all(abs(s) > 1.0 for s in swings.values())
