#!/usr/bin/env python3
"""Counterfactual costing vs interval CPI-stack attribution.

Two independent ways of asking "what do branch mispredictions cost?":

1. the interval CPI stack attributes measured cycles to events;
2. a *paired counterfactual* reruns the identical trace with the events
   removed and takes the cycle difference.

The two methods should broadly agree — and where they diverge (they
overlap-adjust differently), the comparison is itself informative.

Run:  python examples/counterfactuals.py [workload]
"""

import sys

from repro import CoreConfig, build_cpi_stack, simulate
from repro.trace.synthetic import generate_trace
from repro.trace.transforms import (
    with_perfect_branches,
    with_perfect_icache,
    without_short_misses,
)
from repro.util.tabulate import format_table
from repro.workloads import spec_profile


def main(workload: str = "twolf") -> None:
    config = CoreConfig()
    trace = generate_trace(spec_profile(workload), count=50_000, seed=6)
    base = simulate(trace, config)
    stack = build_cpi_stack(base, config.dispatch_width)

    counterfactuals = [
        ("branch mispredictions", with_perfect_branches(trace), stack.bpred),
        ("I-cache misses", with_perfect_icache(trace), stack.icache),
        ("short D-cache misses", without_short_misses(trace), None),
    ]
    rows = []
    for label, modified, stack_cycles in counterfactuals:
        ideal = simulate(modified, config)
        saved = base.cycles - ideal.cycles
        rows.append(
            [
                label,
                saved,
                100.0 * saved / base.cycles,
                stack_cycles if stack_cycles is not None else float("nan"),
            ]
        )
    print(f"workload {workload}: {base.cycles} baseline cycles, "
          f"CPI {base.cpi:.3f}\n")
    print(
        format_table(
            ["events removed", "cycles saved", "% of runtime",
             "CPI-stack attribution"],
            rows,
            float_fmt=".1f",
            title="Paired counterfactuals vs interval attribution",
        )
    )
    print(
        "\nTwo observations. (1) The counterfactual saves far fewer "
        "cycles than the stack attributes to branches: the interval "
        "stack charges each penalty as if the machine were dispatch-"
        "bound between events, but on a low-ILP workload the dependence "
        "chains reclaim most of those slots anyway — event penalties "
        "overlap with the base bottleneck. (2) Short D-cache misses "
        "have no stack component of their own (they are not miss "
        "events), yet their counterfactual saves real cycles — the "
        "cost the paper identifies as contributor C5."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "twolf")
