#!/usr/bin/env python3
"""Interval CPI stacks across the suite, rendered as stacked bars.

Shows where each workload's cycles go: base dispatch cost, branch
mispredictions (resolution + refill), I-cache misses, long D-cache
misses, and the leftover issue/dependence stalls.

Run:  python examples/cpi_stack_tour.py
"""

from repro import CoreConfig, build_cpi_stack, simulate
from repro.harness.figures import ascii_stacked_bars
from repro.trace.synthetic import generate_trace
from repro.workloads import SPEC_PROFILES


def main() -> None:
    config = CoreConfig()
    labels = []
    components = {
        "base": [],
        "bpred": [],
        "icache": [],
        "long_dcache": [],
        "other": [],
    }
    for name, profile in SPEC_PROFILES.items():
        trace = generate_trace(profile, count=40_000, seed=3)
        result = simulate(trace, config)
        stack = build_cpi_stack(result, config.dispatch_width)
        cpi = stack.component_cpi()
        labels.append(name)
        for key in components:
            components[key].append(max(cpi[key], 0.0))
    print("CPI stacks (cycles per instruction, stacked):\n")
    print(ascii_stacked_bars(labels, components))
    print(
        "\nmcf is memory-bound (long D-cache misses), gcc/perlbmk/vortex "
        "pay for the I-cache, twolf/vpr for branch mispredictions — the "
        "interval stack separates them cleanly."
    )


if __name__ == "__main__":
    main()
