#!/usr/bin/env python3
"""Interval simulation: trading cycle accuracy for speed.

The paper's interval analysis later became *interval simulation* (the
idea behind the Sniper simulator): don't simulate cycles — walk the
stream once, charge 1/width per instruction, and charge each miss event
its analytically derived penalty. This example runs both simulators on
every suite workload and prints accuracy and speedup.

Run:  python examples/interval_simulation.py
"""

from repro import CoreConfig
from repro.interval.fast_sim import compare_with_detailed
from repro.trace.synthetic import generate_trace
from repro.util.tabulate import format_table
from repro.workloads import SPEC_PROFILES


def main() -> None:
    config = CoreConfig()
    rows = []
    for name, profile in SPEC_PROFILES.items():
        trace = generate_trace(profile, count=40_000, seed=1620789)
        comparison = compare_with_detailed(trace, config)
        rows.append(
            [
                name,
                comparison["detailed_cycles"],
                comparison["fast_cycles"],
                100.0 * comparison["cpi_error"],
                comparison["speedup"],
            ]
        )
    print(
        format_table(
            ["workload", "detailed cycles", "interval-sim cycles",
             "CPI error %", "speedup"],
            rows,
            float_fmt=".1f",
            title="Interval simulation vs cycle-level simulation",
        )
    )
    mean_err = sum(abs(row[3]) for row in rows) / len(rows)
    mean_speedup = sum(row[4] for row in rows) / len(rows)
    print(
        f"\nmean |CPI error| {mean_err:.1f}% at a mean {mean_speedup:.0f}x "
        "speedup — one pass over the trace instead of a cycle loop."
    )


if __name__ == "__main__":
    main()
