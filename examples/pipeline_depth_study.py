#!/usr/bin/env python3
"""How the penalty scales with frontend pipeline depth.

Folk wisdom: penalty == frontend depth, so doubling the pipeline
doubles the penalty. Interval analysis: penalty = resolution + depth,
and resolution is set by the window drain, not the frontend — so the
*relative* cost of deepening the pipeline is much smaller than folk
wisdom predicts on workloads with long resolution times.

Run:  python examples/pipeline_depth_study.py
"""

from repro import CoreConfig, measure_penalties, simulate
from repro.trace.synthetic import generate_trace
from repro.util.tabulate import format_table
from repro.workloads import spec_profile


def main() -> None:
    trace = generate_trace(spec_profile("parser"), count=40_000, seed=11)
    rows = []
    for depth in (3, 5, 8, 12, 20, 30, 40):
        config = CoreConfig(frontend_depth=depth)
        result = simulate(trace, config)
        report = measure_penalties(result)
        rows.append(
            [
                depth,
                report.mean_resolution,
                report.mean_penalty,
                report.mean_penalty / depth,
                result.ipc,
            ]
        )
    print(
        format_table(
            [
                "frontend depth",
                "resolution",
                "penalty",
                "penalty/depth",
                "IPC",
            ],
            rows,
            float_fmt=".2f",
            title="Penalty vs frontend pipeline depth (parser-like workload)",
        )
    )
    print(
        "\nResolution is roughly depth-independent: the penalty grows by "
        "~1 cycle per extra frontend stage, while the penalty/depth ratio "
        "collapses toward 1 only for very deep pipelines."
    )


if __name__ == "__main__":
    main()
