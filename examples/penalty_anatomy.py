#!/usr/bin/env python3
"""Anatomy of one branch misprediction penalty.

Walks through the paper's full characterization for one workload:

1. the interval timeline around a single misprediction (dispatch rate
   collapsing at the branch, recovering after resolve + refill);
2. resolution time bucketed by instructions-since-last-miss-event (C2);
3. the five-contributor decomposition of the average penalty.

Run:  python examples/penalty_anatomy.py [workload]
"""

import sys

from repro import CoreConfig, decompose_contributors, measure_penalties, simulate
from repro.harness.figures import ascii_bar_chart
from repro.interval.penalty import bucket_resolution_by_gap
from repro.trace.synthetic import generate_trace
from repro.workloads import spec_profile


def main(workload: str = "parser") -> None:
    profile = spec_profile(workload)
    config = CoreConfig()
    trace = generate_trace(profile, count=60_000, seed=7)
    result = simulate(trace, config)
    report = measure_penalties(result)

    print(f"=== {workload}: {report.count} mispredictions ===\n")

    # 1. One misprediction's timeline.
    event = max(result.mispredict_events, key=lambda e: e.resolution)
    print("worst misprediction:")
    print(f"  dispatched at cycle {event.cycle} with "
          f"{event.window_occupancy} instructions in the window")
    print(f"  resolved {event.resolution} cycles later "
          f"(executed at cycle {event.resolve_cycle})")
    print(f"  + {event.refill_cycles} cycles of frontend refill")
    print(f"  = {event.penalty} cycles total "
          f"({event.penalty / config.frontend_depth:.1f}x the frontend depth)\n")

    # 2. Burstiness: resolution vs gap since last miss event (C2).
    print("resolution vs instructions since last miss event (C2):")
    rows = [
        (label, mean)
        for label, count, mean in bucket_resolution_by_gap(report)
        if count > 0
    ]
    print(ascii_bar_chart(rows, unit=" cycles"))
    print()

    # 3. Five-contributor decomposition.
    print("five-contributor decomposition of the mean penalty:")
    breakdown = decompose_contributors(trace, result, config, max_events=200)
    for name, value in breakdown.rows():
        print(f"  {name:<45} {value:8.2f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "parser")
