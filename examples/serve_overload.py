#!/usr/bin/env python3
"""Seeded overload + worker-death drill against the serve plane.

Boots `repro.serve` with deliberately tight admission budgets and
multi-worker shards, then does three things to it at once that
production does one at a time on a bad day:

1. a seeded 200-request burst from bare clients (no retries), far
   over the admission budget, so the service must shed;
2. one SIGKILLed shard worker mid-burst, so the journal's
   at-least-once machinery must replay in-flight work on the
   rebuilt pool;
3. a resilient client (seeded retry/backoff + circuit breaker)
   afterwards, which must complete the *entire* unique workload
   against the same battered service.

The drill asserts the overload contract end to end:

* every burst request resolves — success or a *typed, retryable*
  error (``overloaded`` with a ``retry_after_ms`` hint, or
  ``shard-crashed``); never a hang, never an untyped failure;
* the service shed under pressure (``serve.overload_sheds_total`` > 0)
  and the shed responses carried retry hints;
* no accepted-and-journaled work is lost: every journal-``accepted``
  key terminates as ``done`` or ``failed`` — nothing dangles;
* worker width is a throughput knob only: the canonical subset run at
  ``workers=2`` and ``workers=4`` is byte-identical to ``workers=1``.

CI runs this as the `overload` job and uploads the summary + final
metrics snapshot as artifacts; locally it is a smoke test:

    python examples/serve_overload.py [--out FILE] [--metrics-out FILE]
"""

import argparse
import concurrent.futures
import json
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

from repro.serve import BackgroundServer, ExperimentService, ServeClient
from repro.serve.admission import AdmissionPolicy
from repro.serve.breaker import CircuitBreaker
from repro.serve.client import retryable_error
from repro.util.rng import SplitMix

SEED = 2006
BURST = 200
CLIENT_THREADS = 24
WORKLOADS = ("gzip", "mcf", "twolf", "parser", "vpr", "crafty")
LENGTHS = (400, 700, 1000)
RETRYABLE_TYPES = {"overloaded", "shard-crashed"}

#: The canonical subset used for the worker-width identity check.
IDENTITY_REQUESTS = [
    {"op": "simulate", "workload": w, "length": 500, "seed": SEED}
    for w in WORKLOADS[:3]
] + [
    {
        "op": "sweep", "workload": "vpr", "parameter": "rob_size",
        "values": [32, 64], "length": 400, "seed": SEED,
    }
]


def unique_specs() -> list:
    """The drill's unique workload: 18 distinct simulate requests."""
    return [
        {"op": "simulate", "workload": w, "length": length, "seed": SEED}
        for w in WORKLOADS
        for length in LENGTHS
    ]


def seeded_burst(specs: list) -> list:
    """200 requests sampled from the unique specs, seeded order."""
    rng = SplitMix(SEED)
    return [
        dict(specs[rng.randint(0, len(specs) - 1)]) for _ in range(BURST)
    ]


def assert_worker_width_is_pure(scratch: Path) -> None:
    """workers=2 / workers=4 answers are byte-identical to workers=1."""
    outputs = {}
    for workers in (1, 2, 4):
        svc = ExperimentService(
            store_root=scratch / f"width{workers}", n_shards=2,
            shard_workers=workers, service_id=f"overload-width{workers}",
        )
        with BackgroundServer(svc) as server:
            with ServeClient("127.0.0.1", server.port) as client:
                responses = [
                    client.request(dict(r)) for r in IDENTITY_REQUESTS
                ]
        assert all(r["ok"] for r in responses), responses
        outputs[workers] = json.dumps(
            [r["result"] for r in responses], sort_keys=True
        )
    assert outputs[2] == outputs[1], "workers=2 changed results"
    assert outputs[4] == outputs[1], "workers=4 changed results"
    print(f"  width check: 1/2/4 workers byte-identical "
          f"({len(IDENTITY_REQUESTS)} requests)")


def fire_burst(port: int, service: ExperimentService) -> dict:
    """The seeded burst + one SIGKILL; returns outcome tallies."""
    specs = unique_specs()
    burst = seeded_burst(specs)
    outcomes = {"ok": 0, "retryable": 0}
    hints = []
    kill_after = BURST // 4
    fired = 0
    killed = []

    def one(request: dict) -> None:
        with ServeClient("127.0.0.1", port, timeout_s=120.0) as client:
            response = client.request(dict(request))
        if response["ok"]:
            outcomes["ok"] += 1
            return
        error = response["error"]
        assert error["type"] in RETRYABLE_TYPES, (
            f"untyped/unexpected burst failure: {error}"
        )
        assert error["retryable"] is True, error
        if error["type"] == "overloaded":
            hint = error.get("retry_after_ms")
            assert isinstance(hint, int) and hint > 0, error
            hints.append(hint)
        outcomes["retryable"] += 1

    with concurrent.futures.ThreadPoolExecutor(CLIENT_THREADS) as pool:
        futures = []
        for request in burst:
            futures.append(pool.submit(one, request))
            fired += 1
            if fired == kill_after:
                # Mid-burst chaos: SIGKILL one busy shard worker.
                deadline = time.monotonic() + 10.0
                while not killed and time.monotonic() < deadline:
                    for shard in service.shards:
                        pids = shard.worker_pids()
                        if pids and shard.pending:
                            os.kill(pids[0], signal.SIGKILL)
                            killed.append(pids[0])
                            break
                    else:
                        time.sleep(0.02)
        for future in futures:
            future.result()  # re-raise any assertion from a worker

    assert outcomes["ok"] + outcomes["retryable"] == BURST
    outcomes["killed_pid"] = killed[0] if killed else None
    outcomes["retry_after_ms_hints"] = len(hints)
    return outcomes


def assert_no_lost_accepted_work(service: ExperimentService) -> int:
    """Every journal-accepted key terminated (done or failed)."""
    accepted = 0
    for shard in service.shards:
        state = shard.journal_state()
        accepted_keys = {
            r["key"] for r in state.records if r["event"] == "accepted"
        }
        accepted += len(accepted_keys)
        dangling = accepted_keys - set(state.done) - set(state.failed)
        assert not dangling, (
            f"shard {shard.index} lost accepted work: {sorted(dangling)}"
        )
    return accepted


def drain_workload(port: int, specs: list) -> int:
    """A resilient client finishes every unique spec, post-chaos."""
    retries = 0
    breaker = CircuitBreaker(failure_threshold=5, seed=SEED)
    with ServeClient(
        "127.0.0.1", port, timeout_s=120.0, retries=8,
        backoff_base_s=0.05, breaker=breaker, seed=SEED,
    ) as client:
        for request in specs:
            response = client.request(dict(request), deadline_ms=120_000)
            assert response["ok"], (
                f"resilient client could not finish {request}: "
                f"{response.get('error')}"
            )
        retries = client.retries_performed
    return retries


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default=None, help="cache dir")
    parser.add_argument("--out", default=None, help="drill summary JSON")
    parser.add_argument(
        "--metrics-out", default=None, help="final metrics snapshot JSON"
    )
    args = parser.parse_args()

    scratch = Path(args.store or tempfile.mkdtemp(prefix="serve-overload-"))
    print("== worker-width purity ==")
    assert_worker_width_is_pure(scratch)

    print("== overload + worker-death drill ==")
    svc = ExperimentService(
        store_root=scratch / "drill", n_shards=2, shard_workers=2,
        service_id="overload-drill",
        admission_policy=AdmissionPolicy(max_depth=3, seed=SEED),
    )
    with BackgroundServer(svc) as server:
        outcomes = fire_burst(server.port, svc)
        snap = svc.metrics.snapshot()["counters"]
        sheds = snap.get("serve.overload_sheds_total", 0)
        assert sheds > 0, "the burst never tripped admission control"
        assert outcomes["killed_pid"] is not None, (
            "never caught a busy worker to kill"
        )
        accepted = assert_no_lost_accepted_work(svc)

        print(f"  burst: {outcomes['ok']} ok, "
              f"{outcomes['retryable']} typed-retryable "
              f"({outcomes['retry_after_ms_hints']} carried retry hints)")
        print(f"  sheds={sheds} "
              f"restarts={snap.get('serve.shard_restarts_total', 0)} "
              f"killed_pid={outcomes['killed_pid']} "
              f"accepted_keys={accepted} (none lost)")

        retries = drain_workload(server.port, unique_specs())
        print(f"  resilient client finished all "
              f"{len(unique_specs())} unique specs "
              f"({retries} retries spent)")

        final = svc.metrics.snapshot()
        brownout = svc.brownout.describe()

    summary = {
        "burst": BURST,
        "outcomes": {
            "ok": outcomes["ok"], "retryable": outcomes["retryable"],
        },
        "sheds": sheds,
        "shard_restarts": final["counters"].get(
            "serve.shard_restarts_total", 0
        ),
        "killed_pid": outcomes["killed_pid"],
        "accepted_keys": accepted,
        "resilient_client_retries": retries,
        "brownout": brownout,
    }
    if args.out:
        Path(args.out).write_text(json.dumps(summary, indent=2))
        print(f"  summary -> {args.out}")
    if args.metrics_out:
        Path(args.metrics_out).write_text(json.dumps(final, indent=2))
        print(f"  metrics -> {args.metrics_out}")
    print("overload drill passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
