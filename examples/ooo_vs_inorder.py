#!/usr/bin/env python3
"""Why the penalty is an out-of-order phenomenon.

Runs the same traces on the out-of-order core and on a scoreboarded
in-order core. In-order, the mispredicted branch issues almost as soon
as it is fetched, so the resolution time collapses and the folk-wisdom
approximation (penalty ~ frontend depth) is nearly exact. Out-of-order,
the branch waits behind the window drain — the paper's whole point.

Run:  python examples/ooo_vs_inorder.py
"""

from repro import CoreConfig, measure_penalties, simulate, simulate_inorder
from repro.trace.synthetic import generate_trace
from repro.util.tabulate import format_table
from repro.workloads import SPEC_PROFILES


def main() -> None:
    config = CoreConfig()
    rows = []
    for name in ("gzip", "crafty", "parser", "twolf", "bzip2"):
        trace = generate_trace(SPEC_PROFILES[name], count=30_000, seed=20)
        ooo = simulate(trace, config)
        ino = simulate_inorder(trace, config)
        ooo_report = measure_penalties(ooo)
        ino_report = measure_penalties(ino)
        rows.append(
            [
                name,
                ooo_report.mean_penalty,
                ino_report.mean_penalty,
                ooo.ipc,
                ino.ipc,
                ooo.ipc / ino.ipc,
            ]
        )
    print(
        format_table(
            ["workload", "penalty (OoO)", "penalty (in-order)",
             "IPC (OoO)", "IPC (in-order)", "OoO speedup"],
            rows,
            float_fmt=".2f",
            title=f"Same traces, two cores (frontend depth = "
            f"{config.frontend_depth})",
        )
    )
    print(
        "\nIn-order penalties sit a couple of cycles above the frontend "
        "depth; the out-of-order window buys 1.4-1.6x IPC and pays for "
        "it with 4-10x larger misprediction penalties."
    )


if __name__ == "__main__":
    main()
