#!/usr/bin/env python3
"""Drive a seeded request mix through the experiment service.

Boots `repro.serve` in-process, then replays the traffic shapes the
service exists for — a cold sweep of distinct workloads, a warm replay
of the same requests, a coalesced burst of identical concurrent
requests, and a parameter sweep — and asserts the counters that prove
each behaviour:

* warm requests are answered from a cache tier, never the pool;
* the identical burst coalesces to exactly one pool execution;
* every request is accounted for in ``serve.requests_total``.

With ``--trace`` the service runs with request tracing on: every
simulate/sweep response must carry a latency stack that sums exactly
to its wall latency, the span trees are fetched over the wire via the
``trace`` op and exported as a Perfetto-loadable cross-process Chrome
trace (``--trace-out``), and a live ``stats`` snapshot (queue-depth
samples, latency quantiles) is written via ``--stats-out``.

CI runs this as the `serve` job (traced) and uploads the final metrics
snapshot, the merged trace, and the stats snapshot as artifacts;
locally it is a smoke test:

    python examples/serve_traffic.py [--store DIR] [--out FILE]
        [--trace] [--trace-out FILE] [--stats-out FILE]
"""

import argparse
import concurrent.futures
import json
import sys
import tempfile
from pathlib import Path

from repro.serve import BackgroundServer, ExperimentService, ServeClient

COLD_WORKLOADS = ("gzip", "mcf", "twolf", "parser", "vpr", "crafty")
LENGTH = 2_000  # short jobs: the mix exercises the service, not the core
BURST = 24
TRACE_LIMIT = 10_000  # span-frame bound for the `trace` op fetch


def check_stack(response: dict) -> None:
    """A traced response's latency stack must sum exactly to its wall."""
    meta = response["meta"]
    if "latency_stack_ns" not in meta:
        return
    stack = meta["latency_stack_ns"]
    total, wall = sum(stack.values()), meta["wall_ns"]
    assert total == wall, (
        f"latency stack {stack} sums to {total}, wall is {wall}"
    )


def run_mix(server: BackgroundServer, traced: bool) -> dict:
    with ServeClient("127.0.0.1", server.port) as client:
        assert client.ping(), "service did not answer ping"

        def pool_executions() -> int:
            snapshot = client.status()["result"]["metrics"]["counters"]
            return snapshot["serve.pool_executions_total"]

        # 1. Cold phase: six distinct workloads, all must hit the pool.
        for workload in COLD_WORKLOADS:
            response = client.simulate(workload, length=LENGTH, seed=2006)
            assert response["ok"], response
            assert response["meta"]["source"] == "pool", response["meta"]
            check_stack(response)

        # 2. Warm phase: the same six again, none may touch the pool.
        warm_baseline = pool_executions()
        for workload in COLD_WORKLOADS:
            response = client.simulate(workload, length=LENGTH, seed=2006)
            assert response["ok"], response
            assert response["meta"]["source"] == "tier0", response["meta"]
            check_stack(response)
        assert pool_executions() == warm_baseline, "warm hit ran the pool"
        burst_baseline = warm_baseline

        # 3. Coalesced burst: BURST identical *concurrent* requests for
        #    a key nobody has computed yet. One connection is lockstep,
        #    so fan out over BURST short-lived clients.
        def one_burst_request(_: int) -> dict:
            with ServeClient("127.0.0.1", server.port) as burst_client:
                return burst_client.simulate("eon", length=LENGTH, seed=7)

        with concurrent.futures.ThreadPoolExecutor(BURST) as pool:
            burst = list(pool.map(one_burst_request, range(BURST)))
        assert all(r["ok"] for r in burst), burst
        for response in burst:
            check_stack(response)
        sources = sorted({r["meta"]["source"] for r in burst})
        coalesced = sum(1 for r in burst if r["meta"]["coalesced"])
        # The burst must have collapsed: exactly one execution for its
        # key (the leader); everyone else coalesced onto it or read the
        # fresh cache entry — never BURST executions.
        assert pool_executions() == burst_baseline + 1, "burst ran >1 job"

        # 4. A sweep, routed across shards (its baseline point may be
        #    warm already — that is the shared namespace working).
        sweep = client.sweep(
            "mcf", "rob_size", [32, 64, 128, 256], length=LENGTH
        )
        assert sweep["ok"] and len(sweep["result"]) == 4, sweep
        check_stack(sweep)

        status = client.status()["result"]
        stats = spans = None
        if traced:
            # 5. Telemetry plane, over the wire: a live stats snapshot
            #    (pure memory — answered inline on the event loop) and
            #    the span window the whole mix recorded.
            stats_response = client.stats()
            assert stats_response["ok"], stats_response
            stats = stats_response["result"]
            assert stats["tracing"] is True, stats
            assert stats["latency_quantiles_ms"], stats
            trace_response = client.trace(limit=TRACE_LIMIT)
            assert trace_response["ok"], trace_response
            spans = trace_response["result"]["spans"]
            # Cross-process: service-side spans plus the worker spans
            # that rode home on JobResult.spans, one tree per request.
            processes = {s["process"] for s in spans}
            assert processes >= {"serve", "worker"}, processes
            assert all(s["end_ns"] is not None for s in spans), "dangling span"
        client.shutdown()

    counters = status["metrics"]["counters"]
    expected = 2 * len(COLD_WORKLOADS) + BURST  # simulate ops alone
    assert counters["serve.requests_total"] >= expected, counters
    assert (
        counters["serve.cache_hits_tier0_total"] >= len(COLD_WORKLOADS)
    ), counters
    assert counters["serve.coalesced_total"] == coalesced, counters
    assert counters["serve.errors_total"] == 0, counters

    print(f"requests            : {counters['serve.requests_total']}")
    print(f"pool executions     : {counters['serve.pool_executions_total']}")
    print(f"coalesced           : {coalesced}/{BURST - 1} burst followers")
    print(f"burst sources       : {', '.join(sources)}")
    print(f"tier0 hits          : {counters['serve.cache_hits_tier0_total']}")
    print(f"shards              : {len(status['shards'])}")
    if traced:
        print(f"spans recorded      : {len(spans)}")
        depths = [s["queue_depth"] for s in stats["samples"]]
        print(f"max queue depth     : {max(depths) if depths else 0}")
    return {"status": status, "stats": stats, "spans": spans}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--store", help="store root (default: a temp dir)")
    parser.add_argument("--out", help="write the final status snapshot here")
    parser.add_argument("--trace", action="store_true",
                        help="run with request tracing on and assert the "
                        "latency-stack identity on every response")
    parser.add_argument("--trace-out",
                        help="write the merged Perfetto (Chrome trace) "
                        "span export here (implies --trace)")
    parser.add_argument("--stats-out",
                        help="write the live `stats` snapshot here "
                        "(implies --trace)")
    args = parser.parse_args(argv)
    traced = bool(args.trace or args.trace_out or args.stats_out)

    if args.store:
        store_root = Path(args.store)
        context = None
    else:
        context = tempfile.TemporaryDirectory(prefix="repro-serve-")
        store_root = Path(context.name) / "cache"
    try:
        service = ExperimentService(
            store_root=store_root, n_shards=2,
            trace_requests=True if traced else None,
        )
        with BackgroundServer(service) as server:
            print(f"service             : 127.0.0.1:{server.port}")
            results = run_mix(server, traced)
        if args.out:
            Path(args.out).write_text(
                json.dumps(results["status"], indent=2, sort_keys=True),
                encoding="utf-8",
            )
            print(f"snapshot written    : {args.out}")
        if args.trace_out:
            from repro.obs.export import write_chrome_trace_spans
            from repro.obs.spans import merge_span_snapshots

            merged = merge_span_snapshots([results["spans"]])
            events = write_chrome_trace_spans(merged, args.trace_out)
            print(f"trace written       : {args.trace_out} ({events} events)")
        if args.stats_out:
            Path(args.stats_out).write_text(
                json.dumps(results["stats"], indent=2, sort_keys=True),
                encoding="utf-8",
            )
            print(f"stats written       : {args.stats_out}")
    finally:
        if context is not None:
            context.cleanup()
    print("serve traffic mix   : OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
