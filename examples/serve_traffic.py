#!/usr/bin/env python3
"""Drive a seeded request mix through the experiment service.

Boots `repro.serve` in-process, then replays the traffic shapes the
service exists for — a cold sweep of distinct workloads, a warm replay
of the same requests, a coalesced burst of identical concurrent
requests, and a parameter sweep — and asserts the counters that prove
each behaviour:

* warm requests are answered from a cache tier, never the pool;
* the identical burst coalesces to exactly one pool execution;
* every request is accounted for in ``serve.requests_total``.

CI runs this as the `serve` job and uploads the final metrics snapshot
(``serve-metrics.json``) as an artifact; locally it is a smoke test:

    python examples/serve_traffic.py [--store DIR] [--out FILE]
"""

import argparse
import concurrent.futures
import json
import sys
import tempfile
from pathlib import Path

from repro.serve import BackgroundServer, ExperimentService, ServeClient

COLD_WORKLOADS = ("gzip", "mcf", "twolf", "parser", "vpr", "crafty")
LENGTH = 2_000  # short jobs: the mix exercises the service, not the core
BURST = 24


def run_mix(server: BackgroundServer) -> dict:
    with ServeClient("127.0.0.1", server.port) as client:
        assert client.ping(), "service did not answer ping"

        def pool_executions() -> int:
            snapshot = client.status()["result"]["metrics"]["counters"]
            return snapshot["serve.pool_executions_total"]

        # 1. Cold phase: six distinct workloads, all must hit the pool.
        for workload in COLD_WORKLOADS:
            response = client.simulate(workload, length=LENGTH, seed=2006)
            assert response["ok"], response
            assert response["meta"]["source"] == "pool", response["meta"]

        # 2. Warm phase: the same six again, none may touch the pool.
        warm_baseline = pool_executions()
        for workload in COLD_WORKLOADS:
            response = client.simulate(workload, length=LENGTH, seed=2006)
            assert response["ok"], response
            assert response["meta"]["source"] == "tier0", response["meta"]
        assert pool_executions() == warm_baseline, "warm hit ran the pool"
        burst_baseline = warm_baseline

        # 3. Coalesced burst: BURST identical *concurrent* requests for
        #    a key nobody has computed yet. One connection is lockstep,
        #    so fan out over BURST short-lived clients.
        def one_burst_request(_: int) -> dict:
            with ServeClient("127.0.0.1", server.port) as burst_client:
                return burst_client.simulate("eon", length=LENGTH, seed=7)

        with concurrent.futures.ThreadPoolExecutor(BURST) as pool:
            burst = list(pool.map(one_burst_request, range(BURST)))
        assert all(r["ok"] for r in burst), burst
        sources = sorted({r["meta"]["source"] for r in burst})
        coalesced = sum(1 for r in burst if r["meta"]["coalesced"])
        # The burst must have collapsed: exactly one execution for its
        # key (the leader); everyone else coalesced onto it or read the
        # fresh cache entry — never BURST executions.
        assert pool_executions() == burst_baseline + 1, "burst ran >1 job"

        # 4. A sweep, routed across shards (its baseline point may be
        #    warm already — that is the shared namespace working).
        sweep = client.sweep(
            "mcf", "rob_size", [32, 64, 128, 256], length=LENGTH
        )
        assert sweep["ok"] and len(sweep["result"]) == 4, sweep

        status = client.status()["result"]
        client.shutdown()

    counters = status["metrics"]["counters"]
    expected = 2 * len(COLD_WORKLOADS) + BURST  # simulate ops alone
    assert counters["serve.requests_total"] >= expected, counters
    assert (
        counters["serve.cache_hits_tier0_total"] >= len(COLD_WORKLOADS)
    ), counters
    assert counters["serve.coalesced_total"] == coalesced, counters
    assert counters["serve.errors_total"] == 0, counters

    print(f"requests            : {counters['serve.requests_total']}")
    print(f"pool executions     : {counters['serve.pool_executions_total']}")
    print(f"coalesced           : {coalesced}/{BURST - 1} burst followers")
    print(f"burst sources       : {', '.join(sources)}")
    print(f"tier0 hits          : {counters['serve.cache_hits_tier0_total']}")
    print(f"shards              : {len(status['shards'])}")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--store", help="store root (default: a temp dir)")
    parser.add_argument("--out", help="write the final status snapshot here")
    args = parser.parse_args(argv)

    if args.store:
        store_root = Path(args.store)
        context = None
    else:
        context = tempfile.TemporaryDirectory(prefix="repro-serve-")
        store_root = Path(context.name) / "cache"
    try:
        service = ExperimentService(store_root=store_root, n_shards=2)
        with BackgroundServer(service) as server:
            print(f"service             : 127.0.0.1:{server.port}")
            status = run_mix(server)
        if args.out:
            Path(args.out).write_text(
                json.dumps(status, indent=2, sort_keys=True), encoding="utf-8"
            )
            print(f"snapshot written    : {args.out}")
    finally:
        if context is not None:
            context.cleanup()
    print("serve traffic mix   : OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
