#!/usr/bin/env python3
"""Quickstart: measure a branch misprediction penalty in ~20 lines.

Generates a SPEC-like synthetic trace, runs it through the out-of-order
timing simulator, and prints the paper's headline measurement: the mean
misprediction penalty is far larger than the frontend pipeline length.

Run:  python examples/quickstart.py
"""

from repro import CoreConfig, generate_trace, measure_penalties, simulate, spec_profile


def main() -> None:
    profile = spec_profile("twolf")  # a misprediction-heavy workload
    trace = generate_trace(profile, count=50_000, seed=42)
    config = CoreConfig()  # 4-wide, ROB 128, 5-cycle frontend

    result = simulate(trace, config)
    report = measure_penalties(result)

    print(f"workload            : {profile.name}")
    print(f"instructions        : {result.instructions}")
    print(f"cycles              : {result.cycles}")
    print(f"IPC                 : {result.ipc:.3f}")
    print(f"mispredictions      : {report.count}")
    print(f"frontend depth      : {config.frontend_depth} cycles")
    print(f"mean resolution time: {report.mean_resolution:.1f} cycles")
    print(f"mean penalty        : {report.mean_penalty:.1f} cycles")
    print(
        f"penalty / frontend  : {report.penalty_over_refill:.1f}x "
        "(folk wisdom says 1.0x)"
    )


if __name__ == "__main__":
    main()
