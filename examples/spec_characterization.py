#!/usr/bin/env python3
"""Characterize the whole SPEC-like suite (tables T2 + F2 in one pass).

For each of the twelve workloads: IPC, miss-event rates, and the
misprediction penalty against the frontend pipeline length.

Run:  python examples/spec_characterization.py
"""

from repro import CoreConfig, measure_penalties, segment_intervals, simulate
from repro.trace.synthetic import generate_trace
from repro.util.tabulate import format_table
from repro.workloads import SPEC_PROFILES


def main() -> None:
    config = CoreConfig()
    rows = []
    for name, profile in SPEC_PROFILES.items():
        trace = generate_trace(profile, count=40_000, seed=2006)
        result = simulate(trace, config)
        report = measure_penalties(result)
        breakdown = segment_intervals(result)
        rows.append(
            [
                name,
                result.ipc,
                1000.0 * len(result.mispredict_events) / result.instructions,
                breakdown.mean_interval_length,
                report.mean_resolution,
                report.mean_penalty,
                report.penalty_over_refill,
            ]
        )
    print(
        format_table(
            [
                "workload",
                "IPC",
                "mispred/ki",
                "mean interval",
                "resolution",
                "penalty",
                "penalty/frontend",
            ],
            rows,
            float_fmt=".2f",
            title=f"SPEC-like suite on the baseline machine "
            f"(frontend = {config.frontend_depth} cycles)",
        )
    )
    print(
        "\nEvery workload's penalty exceeds the frontend depth — the "
        "misprediction penalty is not the pipeline length."
    )


if __name__ == "__main__":
    main()
