#!/usr/bin/env python3
"""Structural simulation of real kernel traces vs oracle annotations.

Runs assembled microbenchmark kernels through the functional simulator
to get *real* dynamic traces, then times them on the superscalar core
with the full structural substrates — tournament branch predictor, BTB,
and the L1I/L1D/L2 cache hierarchy — and reports predictor accuracy,
cache miss rates, and the measured misprediction penalty.

Run:  python examples/structural_vs_oracle.py
"""

from repro import (
    BranchTargetBuffer,
    BranchUnit,
    CacheHierarchy,
    CoreConfig,
    HierarchyConfig,
    StructuralAnnotator,
    TournamentPredictor,
    measure_penalties,
)
from repro.pipeline.core import simulate
from repro.util.tabulate import format_table
from repro.workloads import KERNEL_BUILDERS


def main() -> None:
    config = CoreConfig()
    rows = []
    for name, builder in KERNEL_BUILDERS.items():
        kernel = builder()
        trace = kernel.run()
        branch_unit = BranchUnit(
            direction=TournamentPredictor(), btb=BranchTargetBuffer()
        )
        hierarchy = CacheHierarchy(HierarchyConfig())
        annotator = StructuralAnnotator(config, branch_unit, hierarchy)
        result = simulate(trace, config, annotator=annotator)
        report = measure_penalties(result)
        rows.append(
            [
                name,
                len(trace),
                result.ipc,
                branch_unit.direction.stats.accuracy,
                hierarchy.l1d.stats.miss_rate,
                report.count,
                report.mean_penalty if report.count else 0.0,
            ]
        )
    print(
        format_table(
            [
                "kernel",
                "instructions",
                "IPC",
                "bpred accuracy",
                "L1D miss rate",
                "mispredicts",
                "mean penalty",
            ],
            rows,
            float_fmt=".3f",
            title="Real kernel traces on the structural machine",
        )
    )
    print(
        "\nbranchy_search defeats the predictor (data-dependent branches); "
        "pointer_chase hits the D-cache; nested_loop/dot_product predict "
        "nearly perfectly — the substrates behave as expected."
    )


if __name__ == "__main__":
    main()
