"""Unit tests for annotation sources."""

from repro.frontend.base import BranchUnit
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.perfect import PerfectPredictor
from repro.frontend.static import StaticPredictor
from repro.isa.opcodes import OpClass
from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig, MissClass
from repro.pipeline.annotate import OracleAnnotator, StructuralAnnotator
from repro.pipeline.config import CoreConfig
from repro.trace.record import TraceRecord


class TestOracleAnnotator:
    def setup_method(self):
        self.config = CoreConfig()
        self.annotator = OracleAnnotator(self.config)

    def test_clean_record(self):
        ann = self.annotator.annotate(TraceRecord(OpClass.IALU))
        assert not ann.mispredicted
        assert ann.icache_latency is None
        assert ann.dcache_class is None

    def test_mispredicted_branch(self):
        record = TraceRecord(OpClass.BRANCH, mispredict=True)
        assert self.annotator.annotate(record).mispredicted

    def test_mispredict_flag_on_non_branch_ignored(self):
        record = TraceRecord(OpClass.IALU, mispredict=True)
        assert not self.annotator.annotate(record).mispredicted

    def test_unannotated_branch_is_correct(self):
        record = TraceRecord(OpClass.BRANCH, mispredict=None)
        assert not self.annotator.annotate(record).mispredicted

    def test_icache_miss_latency(self):
        record = TraceRecord(OpClass.IALU, il1_miss=True)
        assert self.annotator.annotate(record).icache_latency == (
            self.config.l2_latency
        )

    def test_load_hit_latency(self):
        record = TraceRecord(OpClass.LOAD, mem_addr=0)
        ann = self.annotator.annotate(record)
        assert ann.dcache_class is MissClass.L1_HIT
        assert ann.dcache_latency == self.config.l1_latency

    def test_load_short_miss(self):
        record = TraceRecord(OpClass.LOAD, mem_addr=0, dl1_miss=True)
        ann = self.annotator.annotate(record)
        assert ann.dcache_class is MissClass.SHORT
        assert ann.dcache_latency == self.config.l2_latency

    def test_load_long_miss(self):
        record = TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True)
        ann = self.annotator.annotate(record)
        assert ann.dcache_class is MissClass.LONG
        assert ann.dcache_latency == self.config.memory_latency


class TestStructuralAnnotator:
    def make(self, predictor=None):
        config = CoreConfig()
        unit = BranchUnit(
            direction=predictor or PerfectPredictor(), btb=BranchTargetBuffer()
        )
        hierarchy = CacheHierarchy(
            HierarchyConfig(l1i_size=1024, l1i_ways=2, l1d_size=1024,
                            l1d_ways=2, l2_size=8192, l2_ways=4)
        )
        return StructuralAnnotator(config, unit, hierarchy), hierarchy

    def test_first_fetch_misses_icache(self):
        annotator, _ = self.make()
        ann = annotator.annotate(TraceRecord(OpClass.IALU, pc=0x1000))
        assert ann.icache_latency is not None

    def test_same_line_fetch_shares_access(self):
        annotator, hierarchy = self.make()
        annotator.annotate(TraceRecord(OpClass.IALU, pc=0x1000))
        before = hierarchy.l1i.stats.accesses
        annotator.annotate(TraceRecord(OpClass.IALU, pc=0x1004))
        assert hierarchy.l1i.stats.accesses == before

    def test_refetch_of_warm_line_hits(self):
        annotator, _ = self.make()
        annotator.annotate(TraceRecord(OpClass.IALU, pc=0x1000))
        annotator.annotate(TraceRecord(OpClass.IALU, pc=0x2000))
        ann = annotator.annotate(TraceRecord(OpClass.IALU, pc=0x1004))
        assert ann.icache_latency is None

    def test_static_wrong_direction_mispredicts(self):
        annotator, _ = self.make(predictor=StaticPredictor(predict_taken=False))
        record = TraceRecord(
            OpClass.BRANCH, pc=0x1000, taken=True, target=0x2000
        )
        assert annotator.annotate(record).mispredicted

    def test_load_drives_dcache(self):
        annotator, hierarchy = self.make()
        record = TraceRecord(OpClass.LOAD, pc=0x1000, mem_addr=0x9000)
        ann = annotator.annotate(record)
        assert ann.dcache_class is MissClass.LONG
        ann2 = annotator.annotate(record)
        assert ann2.dcache_class is MissClass.L1_HIT
        assert hierarchy.l1d.stats.accesses == 2

    def test_jump_uses_btb(self):
        annotator, _ = self.make()
        record = TraceRecord(OpClass.JUMP, pc=0x1000, taken=True, target=0x2000)
        assert annotator.annotate(record).mispredicted  # cold BTB
        assert not annotator.annotate(record).mispredicted
