"""Unit tests for the in-order core."""

import pytest

from repro.interval.penalty import measure_penalties
from repro.isa.opcodes import OpClass
from repro.pipeline.config import CoreConfig, DEFAULT_FU_SPECS
from repro.pipeline.core import simulate
from repro.pipeline.inorder import simulate_inorder
from repro.trace.profiles import WorkloadProfile
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace


def ialu(deps=()):
    return TraceRecord(OpClass.IALU, deps=deps)


class TestBasics:
    def test_empty_trace(self):
        result = simulate_inorder(Trace())
        assert result.cycles == 0

    def test_independent_stream_hits_width(self):
        result = simulate_inorder(Trace([ialu() for _ in range(4000)]))
        assert result.ipc == pytest.approx(4.0, abs=0.2)

    def test_serial_chain_ipc_one(self):
        records = [ialu((1,) if i else ()) for i in range(2000)]
        result = simulate_inorder(Trace(records))
        assert result.ipc == pytest.approx(1.0, abs=0.05)

    def test_no_memory_level_parallelism(self):
        """Two independent long misses, each followed by its consumer:
        the OoO window overlaps the misses; stall-on-use in-order
        serializes them."""
        config = CoreConfig()
        records = [
            TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True),
            ialu((1,)),
            TraceRecord(OpClass.LOAD, mem_addr=64, dl2_miss=True),
            ialu((1,)),
        ]
        in_order = simulate_inorder(Trace(records), config)
        out_of_order = simulate(Trace(records), config)
        assert in_order.cycles >= 2 * config.memory_latency
        assert out_of_order.cycles < 1.5 * config.memory_latency

    def test_issue_order_is_program_order(self):
        trace = generate_trace(WorkloadProfile(), 2000, seed=5)
        result = simulate_inorder(trace)
        issues = result.issue_cycle
        assert all(a <= b for a, b in zip(issues, issues[1:]))

    def test_no_issue_before_producer(self):
        trace = generate_trace(WorkloadProfile(), 2000, seed=5)
        result = simulate_inorder(trace)
        for i, record in enumerate(trace.records):
            for dist in record.deps:
                producer = i - dist
                if producer >= 0:
                    assert result.issue_cycle[i] >= result.complete_cycle[producer]

    def test_issue_width_respected(self):
        trace = generate_trace(WorkloadProfile(), 2000, seed=5)
        config = CoreConfig()
        result = simulate_inorder(trace, config)
        per_cycle = {}
        for cycle in result.issue_cycle:
            per_cycle[cycle] = per_cycle.get(cycle, 0) + 1
        assert max(per_cycle.values()) <= config.issue_width


class TestMissEvents:
    def test_mispredict_event_logged(self):
        records = [ialu() for _ in range(10)]
        records.append(TraceRecord(OpClass.BRANCH, mispredict=True))
        records.extend(ialu() for _ in range(10))
        config = CoreConfig()
        result = simulate_inorder(Trace(records), config)
        events = result.mispredict_events
        assert len(events) == 1
        assert events[0].refill_cycles == config.frontend_depth
        # redirect: next instruction delivered after resolve + refill
        next_dispatch = result.dispatch_cycle[events[0].seq + 1]
        assert next_dispatch >= events[0].resolve_cycle + config.frontend_depth

    def test_icache_miss_stalls(self):
        config = CoreConfig()
        records = [ialu() for _ in range(4)]
        records.append(TraceRecord(OpClass.IALU, il1_miss=True))
        records.extend(ialu() for _ in range(4))
        result = simulate_inorder(Trace(records), config)
        assert len(result.icache_events) == 1

    def test_long_miss_event(self):
        records = [TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True), ialu()]
        result = simulate_inorder(Trace(records))
        assert len(result.long_dmiss_events) == 1


class TestContrastWithOoO:
    """The F20 claim at unit scale."""

    def test_inorder_never_faster(self):
        trace = generate_trace(WorkloadProfile(), 6000, seed=11)
        config = CoreConfig()
        in_order = simulate_inorder(trace, config)
        out_of_order = simulate(trace, config)
        assert in_order.cycles >= out_of_order.cycles

    def test_inorder_resolution_much_smaller(self):
        trace = generate_trace(WorkloadProfile(name="c"), 10_000, seed=13)
        config = CoreConfig()
        in_order = measure_penalties(simulate_inorder(trace, config))
        out_of_order = measure_penalties(simulate(trace, config))
        assert in_order.count == out_of_order.count
        assert in_order.mean_resolution < 0.5 * out_of_order.mean_resolution

    def test_folk_wisdom_nearly_true_inorder(self):
        """On the in-order machine, penalty ~ frontend depth + a small
        execute term."""
        trace = generate_trace(
            WorkloadProfile(dl1_miss_rate=0.0, dl2_miss_rate=0.0),
            10_000,
            seed=17,
        )
        config = CoreConfig()
        report = measure_penalties(simulate_inorder(trace, config))
        assert report.mean_penalty < config.frontend_depth + 8
