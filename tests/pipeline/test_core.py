"""Behavioural unit tests for the superscalar core."""

import pytest

from repro.isa.opcodes import OpClass
from repro.pipeline.config import CoreConfig, FUSpec, DEFAULT_FU_SPECS
from repro.pipeline.core import simulate
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


def ialu(deps=()):
    return TraceRecord(OpClass.IALU, deps=deps)


def chain(n):
    """n serially dependent single-cycle instructions."""
    return Trace([ialu((1,) if i else ()) for i in range(n)])


def independent(n):
    return Trace([ialu() for _ in range(n)])


class TestBasics:
    def test_empty_trace(self):
        result = simulate(Trace(), CoreConfig())
        assert result.instructions == 0
        assert result.cycles == 0

    def test_single_instruction(self):
        config = CoreConfig()
        result = simulate(Trace([ialu()]), config)
        # frontend fill + dispatch + issue + execute + commit
        assert result.cycles >= config.frontend_depth + 2
        assert result.instructions == 1

    def test_serial_chain_ipc_near_one(self):
        result = simulate(chain(2000), CoreConfig())
        assert result.ipc == pytest.approx(1.0, abs=0.05)

    def test_independent_ipc_hits_width(self):
        result = simulate(independent(4000), CoreConfig())
        assert result.ipc == pytest.approx(4.0, abs=0.2)

    def test_dispatch_width_bounds_ipc(self):
        config = CoreConfig(dispatch_width=2, issue_width=4, commit_width=4)
        result = simulate(independent(4000), config)
        assert result.ipc <= 2.05

    def test_issue_width_bounds_ipc(self):
        config = CoreConfig(dispatch_width=4, issue_width=2, commit_width=4)
        result = simulate(independent(4000), config)
        assert result.ipc <= 2.05

    def test_commit_width_bounds_ipc(self):
        config = CoreConfig(dispatch_width=4, issue_width=4, commit_width=1)
        result = simulate(independent(4000), config)
        assert result.ipc <= 1.05

    def test_cycles_at_least_n_over_width(self):
        result = simulate(independent(1000), CoreConfig())
        assert result.cycles >= 1000 / 4


class TestLatencies:
    def test_mul_chain_costs_latency_each(self):
        records = [
            TraceRecord(OpClass.IMUL, deps=(1,) if i else ())
            for i in range(500)
        ]
        result = simulate(Trace(records), CoreConfig())
        latency = DEFAULT_FU_SPECS[OpClass.IMUL].latency
        assert result.cycles == pytest.approx(500 * latency, rel=0.05)

    def test_unpipelined_divider_serializes(self):
        records = [TraceRecord(OpClass.IDIV) for _ in range(50)]
        result = simulate(Trace(records), CoreConfig())
        interval = DEFAULT_FU_SPECS[OpClass.IDIV].issue_interval
        assert result.cycles >= 50 * interval

    def test_fu_count_limits_throughput(self):
        # 1 FMUL unit, independent fmuls -> IPC <= 1
        records = [TraceRecord(OpClass.FMUL) for _ in range(1000)]
        result = simulate(Trace(records), CoreConfig())
        assert result.ipc <= 1.05

    def test_load_hit_latency_on_chain(self):
        config = CoreConfig()
        records = []
        for i in range(400):
            records.append(
                TraceRecord(OpClass.LOAD, mem_addr=8 * i, deps=(1,) if i else ())
            )
        result = simulate(Trace(records), config)
        load_cost = (
            DEFAULT_FU_SPECS[OpClass.LOAD].latency + config.l1_latency
        )
        assert result.cycles == pytest.approx(400 * load_cost, rel=0.08)

    def test_long_miss_blocks_dependents(self):
        config = CoreConfig()
        records = [
            TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True),
            ialu((1,)),
        ]
        result = simulate(Trace(records), config)
        assert result.cycles >= config.memory_latency


class TestBranchMisprediction:
    def test_penalty_is_resolution_plus_refill(self):
        config = CoreConfig()
        records = [ialu() for _ in range(20)]
        records.append(TraceRecord(OpClass.BRANCH, mispredict=True, taken=True))
        records.extend(ialu() for _ in range(20))
        result = simulate(Trace(records), config)
        events = result.mispredict_events
        assert len(events) == 1
        event = events[0]
        assert event.refill_cycles == config.frontend_depth
        assert event.penalty == event.resolution + config.frontend_depth
        assert event.resolution >= 1

    def test_dispatch_gap_matches_penalty(self):
        config = CoreConfig()
        records = [ialu() for _ in range(8)]
        records.append(TraceRecord(OpClass.BRANCH, mispredict=True))
        records.extend(ialu() for _ in range(8))
        result = simulate(Trace(records), config)
        event = result.mispredict_events[0]
        branch_seq = event.seq
        next_dispatch = result.dispatch_cycle[branch_seq + 1]
        assert next_dispatch == event.resolve_cycle + config.frontend_depth

    def test_branch_on_slow_chain_resolves_late(self):
        config = CoreConfig()
        fast = [
            ialu(),
            TraceRecord(OpClass.BRANCH, mispredict=True, deps=(1,)),
            ialu(),
        ]
        slow = [
            TraceRecord(OpClass.IDIV),  # 20-cycle producer
            TraceRecord(OpClass.BRANCH, mispredict=True, deps=(1,)),
            ialu(),
        ]
        fast_result = simulate(Trace(fast), config)
        slow_result = simulate(Trace(slow), config)
        assert (
            slow_result.mispredict_events[0].resolution
            > fast_result.mispredict_events[0].resolution
        )

    def test_correctly_predicted_branch_no_event(self):
        records = [ialu(), TraceRecord(OpClass.BRANCH, mispredict=False), ialu()]
        result = simulate(Trace(records))
        assert not result.mispredict_events

    def test_full_window_resolution_exceeds_empty_window(self):
        config = CoreConfig()

        def trace_with_gap(gap):
            records = [TraceRecord(OpClass.BRANCH, mispredict=True)]
            records.extend(ialu((1,)) for _ in range(gap))
            records.append(TraceRecord(OpClass.BRANCH, mispredict=True,
                                       deps=(1,)))
            records.extend(ialu() for _ in range(10))
            return Trace(records)

        short_gap = simulate(trace_with_gap(4), config)
        long_gap = simulate(trace_with_gap(200), config)
        assert (
            long_gap.mispredict_events[-1].resolution
            > short_gap.mispredict_events[-1].resolution
        )

    def test_window_occupancy_recorded(self):
        records = [ialu((1,) if i else ()) for i in range(30)]
        records.append(TraceRecord(OpClass.BRANCH, mispredict=True))
        records.append(ialu())
        result = simulate(Trace(records), CoreConfig())
        event = result.mispredict_events[0]
        assert 0 < event.window_occupancy <= 30


class TestICacheMiss:
    def test_icache_miss_stalls_dispatch(self):
        config = CoreConfig()
        records = [ialu() for _ in range(4)]
        records.append(TraceRecord(OpClass.IALU, il1_miss=True))
        records.extend(ialu() for _ in range(4))
        result = simulate(Trace(records), config)
        events = result.icache_events
        assert len(events) == 1
        miss_seq = events[0].seq
        gap = result.dispatch_cycle[miss_seq] - result.dispatch_cycle[miss_seq - 1]
        assert gap >= config.l2_latency

    def test_icache_event_latency(self):
        config = CoreConfig()
        records = [TraceRecord(OpClass.IALU, il1_miss=True), ialu()]
        result = simulate(Trace(records), config)
        assert result.icache_events[0].latency == config.l2_latency


class TestLongDMiss:
    def test_event_logged_with_latency(self):
        config = CoreConfig()
        records = [TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True), ialu()]
        result = simulate(Trace(records), config)
        events = result.long_dmiss_events
        assert len(events) == 1
        assert events[0].latency >= config.memory_latency

    def test_rob_fills_behind_long_miss(self):
        config = CoreConfig(rob_size=16)
        records = [TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True)]
        records.extend(ialu() for _ in range(100))
        result = simulate(Trace(records), config)
        assert result.rob_peak_occupancy == 16

    def test_store_long_miss_not_an_event(self):
        records = [TraceRecord(OpClass.STORE, mem_addr=0, dl2_miss=True), ialu()]
        result = simulate(Trace(records))
        assert not result.long_dmiss_events


class TestWrongPathMode:
    def test_ghosts_squashed_and_counted(self):
        config = CoreConfig(dispatch_wrong_path=True)
        records = [ialu() for _ in range(10)]
        records.append(TraceRecord(OpClass.BRANCH, mispredict=True, deps=(1,)))
        records.extend(ialu() for _ in range(10))
        result = simulate(Trace(records), config)
        assert result.instructions == 21
        assert result.squashed_ghosts > 0

    def test_penalty_insensitive_to_wrong_path(self):
        records = [ialu((1,) if i else ()) for i in range(50)]
        records.append(TraceRecord(OpClass.BRANCH, mispredict=True, deps=(1,)))
        records.extend(ialu() for _ in range(50))
        stop = simulate(Trace(records), CoreConfig())
        ghost = simulate(Trace(records), CoreConfig(dispatch_wrong_path=True))
        assert stop.mispredict_events[0].resolution == pytest.approx(
            ghost.mispredict_events[0].resolution, abs=3
        )


class TestIssuePolicy:
    def test_random_policy_deterministic(self):
        trace = chain(500)
        config = CoreConfig(issue_policy="random", seed=3)
        a = simulate(trace, config)
        b = simulate(trace, config)
        assert a.cycles == b.cycles

    def test_random_policy_not_faster_than_oldest(self):
        # random selection can only hurt (or match) a width-bound stream
        records = []
        for i in range(2000):
            records.append(ialu((1,) if i % 4 == 0 and i else ()))
        trace = Trace(records)
        oldest = simulate(trace, CoreConfig())
        random_policy = simulate(
            trace, CoreConfig(issue_policy="random", seed=1)
        )
        assert random_policy.cycles >= oldest.cycles - 2
