"""Unit tests for functional-unit pools."""

import pytest

from repro.isa.opcodes import OpClass
from repro.pipeline.config import DEFAULT_FU_SPECS, FUSpec
from repro.pipeline.functional_units import FunctionalUnitPool, FunctionalUnits


class TestPool:
    def test_pipelined_unit_accepts_every_cycle(self):
        pool = FunctionalUnitPool(FUSpec(count=1, latency=3))
        assert pool.can_issue(0)
        done = pool.issue(0)
        assert done == 3
        assert pool.can_issue(1)  # pipelined: next op next cycle

    def test_unpipelined_unit_blocks(self):
        pool = FunctionalUnitPool(FUSpec(count=1, latency=4, issue_interval=4))
        pool.issue(0)
        assert not pool.can_issue(1)
        assert not pool.can_issue(3)
        assert pool.can_issue(4)

    def test_multiple_units(self):
        pool = FunctionalUnitPool(FUSpec(count=2, latency=10, issue_interval=10))
        pool.issue(0)
        assert pool.can_issue(0)  # second unit still free
        pool.issue(0)
        assert not pool.can_issue(5)

    def test_issue_without_capacity_raises(self):
        pool = FunctionalUnitPool(FUSpec(count=1, latency=2, issue_interval=2))
        pool.issue(0)
        with pytest.raises(RuntimeError):
            pool.issue(1)

    def test_completion_time(self):
        pool = FunctionalUnitPool(FUSpec(count=1, latency=7))
        assert pool.issue(5) == 12

    def test_issue_counting(self):
        pool = FunctionalUnitPool(FUSpec(count=4, latency=1))
        for i in range(5):
            pool.issue(i)
        assert pool.issued == 5


class TestFunctionalUnits:
    def test_all_classes_present(self):
        fus = FunctionalUnits(DEFAULT_FU_SPECS)
        for op_class in OpClass:
            assert fus.can_issue(op_class, 0)

    def test_latency_lookup(self):
        fus = FunctionalUnits(DEFAULT_FU_SPECS)
        assert fus.latency(OpClass.IMUL) == DEFAULT_FU_SPECS[OpClass.IMUL].latency

    def test_issue_counts_keys(self):
        fus = FunctionalUnits(DEFAULT_FU_SPECS)
        fus.issue(OpClass.IALU, 0)
        counts = fus.issue_counts()
        assert counts["ialu"] == 1
        assert counts["imul"] == 0
