"""Unit tests for the reorder buffer."""

import pytest

from repro.pipeline.rob import ReorderBuffer


class TestROB:
    def test_dispatch_and_occupancy(self):
        rob = ReorderBuffer(4)
        rob.dispatch(0)
        rob.dispatch(1)
        assert len(rob) == 2
        assert not rob.is_full
        assert rob.head == 0

    def test_full_rejects_dispatch(self):
        rob = ReorderBuffer(2)
        rob.dispatch(0)
        rob.dispatch(1)
        assert rob.is_full
        with pytest.raises(RuntimeError):
            rob.dispatch(2)

    def test_out_of_order_dispatch_rejected(self):
        rob = ReorderBuffer(4)
        rob.dispatch(5)
        with pytest.raises(ValueError):
            rob.dispatch(3)

    def test_commit_requires_completion(self):
        rob = ReorderBuffer(4)
        rob.dispatch(0)
        assert not rob.head_completed()
        with pytest.raises(RuntimeError):
            rob.commit_head()

    def test_commit_in_order(self):
        rob = ReorderBuffer(4)
        rob.dispatch(0)
        rob.dispatch(1)
        rob.complete(1)  # younger completes first
        assert not rob.head_completed()
        rob.complete(0)
        assert rob.commit_head() == 0
        assert rob.commit_head() == 1
        assert rob.is_empty

    def test_peak_occupancy(self):
        rob = ReorderBuffer(8)
        for i in range(5):
            rob.dispatch(i)
        rob.complete(0)
        rob.commit_head()
        assert rob.peak_occupancy == 5

    def test_squash_younger_than(self):
        rob = ReorderBuffer(8)
        for i in range(6):
            rob.dispatch(i)
        rob.complete(5)
        squashed = rob.squash_younger_than(2)
        assert sorted(squashed) == [3, 4, 5]
        assert len(rob) == 3
        # squashed completion state is discarded
        rob.dispatch(6)
        assert not rob.head_completed()

    def test_squash_nothing_when_newest(self):
        rob = ReorderBuffer(4)
        rob.dispatch(0)
        assert rob.squash_younger_than(0) == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReorderBuffer(0)
