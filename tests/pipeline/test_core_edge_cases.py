"""Edge-case tests for the out-of-order core."""

import pytest

from repro.isa.opcodes import OpClass
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


def ialu(deps=()):
    return TraceRecord(OpClass.IALU, deps=deps)


class TestTraceBoundaries:
    def test_mispredicted_branch_is_last_instruction(self):
        records = [ialu() for _ in range(5)]
        records.append(TraceRecord(OpClass.BRANCH, mispredict=True))
        result = simulate(Trace(records), CoreConfig())
        assert result.instructions == 6
        assert len(result.mispredict_events) == 1

    def test_trace_of_only_mispredicts(self):
        records = [
            TraceRecord(OpClass.BRANCH, mispredict=True) for _ in range(20)
        ]
        config = CoreConfig()
        result = simulate(Trace(records), config)
        assert len(result.mispredict_events) == 20
        # back-to-back: each pays ~resolution(1) + refill
        assert result.cycles >= 20 * config.frontend_depth

    def test_icache_miss_on_first_instruction(self):
        records = [TraceRecord(OpClass.IALU, il1_miss=True), ialu()]
        config = CoreConfig()
        result = simulate(Trace(records), config)
        assert result.dispatch_cycle[0] >= (
            config.frontend_depth + config.l2_latency
        )

    def test_long_miss_is_last_instruction(self):
        records = [ialu(), TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True)]
        config = CoreConfig()
        result = simulate(Trace(records), config)
        assert result.cycles >= config.memory_latency

    def test_mispredicted_jump_counts_as_event(self):
        records = [ialu()]
        records.append(
            TraceRecord(OpClass.JUMP, taken=True, target=0x40, mispredict=True)
        )
        records.append(ialu())
        result = simulate(Trace(records), CoreConfig())
        assert len(result.mispredict_events) == 1


class TestDegenerateMachines:
    def test_single_wide_single_entry_window_is_in_order(self):
        config = CoreConfig(
            dispatch_width=1, issue_width=1, commit_width=1, rob_size=1
        )
        records = [ialu() for _ in range(50)]
        result = simulate(Trace(records), config)
        # one instruction in flight at a time
        assert result.rob_peak_occupancy == 1
        assert result.ipc < 1.0

    def test_rob_equals_width(self):
        config = CoreConfig(rob_size=4)
        records = [ialu((1,) if i else ()) for i in range(100)]
        result = simulate(Trace(records), config)
        assert result.rob_peak_occupancy <= 4
        assert result.instructions == 100

    def test_huge_frontend_depth(self):
        config = CoreConfig(frontend_depth=100)
        records = [ialu() for _ in range(10)]
        records.append(TraceRecord(OpClass.BRANCH, mispredict=True))
        records.extend(ialu() for _ in range(10))
        result = simulate(Trace(records), config)
        event = result.mispredict_events[0]
        assert event.refill_cycles == 100
        assert event.penalty >= 101

    def test_timeline_recording_disabled(self):
        config = CoreConfig(record_timeline=False)
        records = [ialu() for _ in range(100)]
        records.append(TraceRecord(OpClass.BRANCH, mispredict=True))
        records.append(ialu())
        result = simulate(Trace(records), config)
        assert result.dispatch_cycle is None
        assert result.issue_cycle is None
        # events still carry full timing
        assert result.mispredict_events[0].penalty > 0

    def test_timeline_off_matches_timeline_on_cycles(self):
        records = [ialu((2,) if i >= 2 else ()) for i in range(500)]
        trace = Trace(records)
        with_timeline = simulate(trace, CoreConfig(record_timeline=True))
        without = simulate(trace, CoreConfig(record_timeline=False))
        assert with_timeline.cycles == without.cycles


class TestDependenceEdgeCases:
    def test_dep_on_instruction_before_trace_start_ignored(self):
        # first instruction cannot have deps (generator guarantees it),
        # but a sliced trace can: distances reaching before index 0.
        records = [ialu(), ialu((5,))]  # 1 - 5 < 0
        result = simulate(Trace(records), CoreConfig())
        assert result.instructions == 2

    def test_duplicate_dependence_distances(self):
        records = [ialu(), ialu((1, 1))]
        result = simulate(Trace(records), CoreConfig())
        assert result.issue_cycle[1] >= result.complete_cycle[0]

    def test_dependence_on_store(self):
        records = [
            TraceRecord(OpClass.STORE, mem_addr=0),
            ialu((1,)),
        ]
        result = simulate(Trace(records), CoreConfig())
        assert result.issue_cycle[1] >= result.complete_cycle[0]

    def test_long_dependence_distance(self):
        records = [ialu() for _ in range(300)]
        records.append(TraceRecord(OpClass.IALU, deps=(300,)))
        result = simulate(Trace(records), CoreConfig())
        # producer long retired: no stall
        assert result.instructions == 301


class TestEventOrdering:
    def test_events_sorted_by_dispatch_seq_per_kind(self):
        records = []
        for block in range(10):
            records.extend(ialu() for _ in range(10))
            records.append(TraceRecord(OpClass.BRANCH, mispredict=True))
        result = simulate(Trace(records), CoreConfig())
        seqs = [e.seq for e in result.mispredict_events]
        assert seqs == sorted(seqs)

    def test_interleaved_event_kinds(self):
        records = [
            TraceRecord(OpClass.IALU, il1_miss=True),
            TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True),
            TraceRecord(OpClass.BRANCH, mispredict=True),
            ialu(),
        ]
        result = simulate(Trace(records), CoreConfig())
        assert len(result.icache_events) == 1
        assert len(result.long_dmiss_events) == 1
        assert len(result.mispredict_events) == 1
