"""Unit tests for CoreConfig and FUSpec."""

import pytest

from repro.isa.opcodes import OpClass
from repro.pipeline.config import DEFAULT_FU_SPECS, CoreConfig, FUSpec


class TestFUSpec:
    def test_valid(self):
        FUSpec(count=2, latency=3)

    def test_unpipelined(self):
        spec = FUSpec(count=1, latency=20, issue_interval=20)
        assert spec.issue_interval == spec.latency

    def test_issue_interval_cannot_exceed_latency(self):
        with pytest.raises(ValueError):
            FUSpec(count=1, latency=2, issue_interval=3)

    @pytest.mark.parametrize("field", ["count", "latency", "issue_interval"])
    def test_positive_fields(self, field):
        kwargs = dict(count=1, latency=1, issue_interval=1)
        kwargs[field] = 0
        with pytest.raises(ValueError):
            FUSpec(**kwargs)

    def test_scaled_doubles_latency(self):
        spec = FUSpec(count=2, latency=4).scaled(2.0)
        assert spec.latency == 8
        assert spec.count == 2
        assert spec.issue_interval == 1

    def test_scaled_keeps_unpipelined(self):
        spec = FUSpec(count=1, latency=10, issue_interval=10).scaled(2.0)
        assert spec.latency == 20
        assert spec.issue_interval == 20

    def test_scaled_floors_at_one(self):
        spec = FUSpec(count=1, latency=1).scaled(0.1)
        assert spec.latency == 1


class TestCoreConfig:
    def test_default_valid(self):
        config = CoreConfig()
        assert config.rob_size == 128
        assert config.frontend_depth == 5

    def test_all_op_classes_have_specs(self):
        config = CoreConfig()
        for op_class in OpClass:
            assert op_class in config.fu_specs

    def test_missing_fu_spec_rejected(self):
        specs = dict(DEFAULT_FU_SPECS)
        del specs[OpClass.IDIV]
        with pytest.raises(ValueError, match="missing"):
            CoreConfig(fu_specs=specs)

    def test_rob_smaller_than_dispatch_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(rob_size=2, dispatch_width=4)

    @pytest.mark.parametrize(
        "field", ["dispatch_width", "issue_width", "commit_width",
                  "rob_size", "frontend_depth", "l1_latency"]
    )
    def test_positive_fields(self, field):
        with pytest.raises(ValueError):
            CoreConfig(**{field: 0})

    def test_bad_issue_policy_rejected(self):
        with pytest.raises(ValueError, match="issue_policy"):
            CoreConfig(issue_policy="lifo")

    def test_with_overrides(self):
        config = CoreConfig().with_overrides(rob_size=64)
        assert config.rob_size == 64
        assert config.dispatch_width == 4

    def test_with_scaled_fu_latencies(self):
        config = CoreConfig().with_scaled_fu_latencies(2.0)
        assert config.fu_specs[OpClass.IMUL].latency == 6
        assert config.fu_specs[OpClass.IALU].latency == 2

    def test_load_latency_by_class(self):
        config = CoreConfig()
        assert config.load_latency("l1_hit") == config.l1_latency
        assert config.load_latency("short") == config.l2_latency
        assert config.load_latency("long") == config.memory_latency
        with pytest.raises(ValueError):
            config.load_latency("medium")

    def test_describe_has_core_rows(self):
        rows = dict(CoreConfig().describe())
        assert "frontend pipeline depth" in rows
        assert "ROB / issue window" in rows
