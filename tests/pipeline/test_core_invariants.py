"""Invariant checks over full simulations of realistic traces."""

import pytest

from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace


@pytest.fixture(scope="module")
def run():
    trace = generate_trace(WorkloadProfile(name="inv"), 8000, seed=77)
    config = CoreConfig()
    return trace, config, simulate(trace, config)


class TestTimelineInvariants:
    def test_dispatch_monotone_nondecreasing(self, run):
        _, _, result = run
        cycles = result.dispatch_cycle
        assert all(a <= b for a, b in zip(cycles, cycles[1:]))

    def test_issue_after_dispatch(self, run):
        _, _, result = run
        for d, s in zip(result.dispatch_cycle, result.issue_cycle):
            assert s >= d + 1

    def test_complete_after_issue(self, run):
        _, _, result = run
        for s, c in zip(result.issue_cycle, result.complete_cycle):
            assert c >= s + 1

    def test_commit_at_or_after_complete(self, run):
        _, _, result = run
        for c, r in zip(result.complete_cycle, result.commit_cycle):
            assert r >= c

    def test_commit_order_is_program_order(self, run):
        _, _, result = run
        commits = result.commit_cycle
        assert all(a <= b for a, b in zip(commits, commits[1:]))

    def test_no_issue_before_producer_completes(self, run):
        trace, _, result = run
        for i, record in enumerate(trace.records):
            for dist in record.deps:
                producer = i - dist
                if producer >= 0:
                    assert (
                        result.issue_cycle[i]
                        >= result.complete_cycle[producer]
                    ), f"instruction {i} issued before producer {producer}"

    def test_commit_width_respected(self, run):
        _, config, result = run
        per_cycle = {}
        for cycle in result.commit_cycle:
            per_cycle[cycle] = per_cycle.get(cycle, 0) + 1
        assert max(per_cycle.values()) <= config.commit_width

    def test_dispatch_width_respected(self, run):
        _, config, result = run
        per_cycle = {}
        for cycle in result.dispatch_cycle:
            per_cycle[cycle] = per_cycle.get(cycle, 0) + 1
        assert max(per_cycle.values()) <= config.dispatch_width

    def test_issue_width_respected(self, run):
        _, config, result = run
        per_cycle = {}
        for cycle in result.issue_cycle:
            per_cycle[cycle] = per_cycle.get(cycle, 0) + 1
        assert max(per_cycle.values()) <= config.issue_width

    def test_inflight_never_exceeds_rob(self, run):
        _, config, result = run
        assert result.rob_peak_occupancy <= config.rob_size


class TestCycleBounds:
    def test_cycles_at_least_width_bound(self, run):
        trace, config, result = run
        assert result.cycles >= len(trace) / config.dispatch_width

    def test_cycles_at_least_critical_path(self, run):
        trace, config, result = run

        def latency(op_class):
            return config.fu_specs[op_class].latency

        assert result.cycles >= trace.critical_path_length(latency)

    def test_total_cycles_is_last_commit(self, run):
        _, _, result = run
        assert result.cycles == max(result.commit_cycle) + 1


class TestEventConsistency:
    def test_event_seqs_within_trace(self, run):
        trace, _, result = run
        for event in result.events:
            assert 0 <= event.seq < len(trace)

    def test_mispredict_events_match_annotations(self, run):
        trace, _, result = run
        annotated = set(trace.mispredicted_indices())
        observed = {e.seq for e in result.mispredict_events}
        assert observed == annotated

    def test_mispredict_resolution_matches_timeline(self, run):
        _, _, result = run
        for event in result.mispredict_events:
            assert event.cycle == result.dispatch_cycle[event.seq]
            assert event.resolve_cycle == result.complete_cycle[event.seq]

    def test_long_dmiss_events_match_annotations(self, run):
        trace, _, result = run
        annotated = {
            i
            for i, r in enumerate(trace.records)
            if r.is_load and r.dl2_miss
        }
        observed = {e.seq for e in result.long_dmiss_events}
        assert observed == annotated

    def test_icache_events_match_annotations(self, run):
        trace, _, result = run
        annotated = {i for i, r in enumerate(trace.records) if r.il1_miss}
        observed = {e.seq for e in result.icache_events}
        assert observed == annotated

    def test_determinism(self, run):
        trace, config, result = run
        again = simulate(trace, config)
        assert again.cycles == result.cycles
        assert again.dispatch_cycle == result.dispatch_cycle
        assert len(again.events) == len(result.events)
