"""Unit tests for SimulationResult accessors."""

import pytest

from repro.pipeline.events import (
    BranchMispredictEvent,
    ICacheMissEvent,
    LongDMissEvent,
    MissEventKind,
)
from repro.pipeline.result import SimulationResult


@pytest.fixture
def result():
    events = [
        BranchMispredictEvent(seq=10, cycle=100, resolve_cycle=130,
                              refill_cycles=5, window_occupancy=40),
        ICacheMissEvent(seq=20, cycle=200, latency=10),
        LongDMissEvent(seq=30, cycle=300, complete_cycle=550),
        BranchMispredictEvent(seq=40, cycle=400, resolve_cycle=410,
                              refill_cycles=5, window_occupancy=8),
    ]
    return SimulationResult(instructions=1000, cycles=800, events=events)


class TestDerived:
    def test_ipc_cpi_inverse(self, result):
        assert result.ipc == pytest.approx(1000 / 800)
        assert result.cpi == pytest.approx(800 / 1000)

    def test_zero_division_guards(self):
        empty = SimulationResult(instructions=0, cycles=0)
        assert empty.ipc == 0.0
        assert empty.cpi == 0.0
        assert empty.mean_mispredict_penalty == 0.0

    def test_event_filters(self, result):
        assert len(result.mispredict_events) == 2
        assert len(result.icache_events) == 1
        assert len(result.long_dmiss_events) == 1

    def test_mean_penalty(self, result):
        # penalties: (30+5) and (10+5)
        assert result.mean_mispredict_penalty == pytest.approx(25.0)
        assert result.mean_branch_resolution == pytest.approx(20.0)

    def test_summary_keys_and_values(self, result):
        summary = result.summary()
        assert summary["instructions"] == 1000.0
        assert summary["mispredictions"] == 2.0
        assert summary["icache_misses"] == 1.0
        assert summary["long_dmisses"] == 1.0
        assert summary["mean_penalty"] == pytest.approx(25.0)


class TestEventProperties:
    def test_mispredict_event_kind_and_math(self):
        event = BranchMispredictEvent(
            seq=1, cycle=10, resolve_cycle=35, refill_cycles=7,
            window_occupancy=12,
        )
        assert event.kind is MissEventKind.BRANCH_MISPREDICT
        assert event.resolution == 25
        assert event.penalty == 32

    def test_long_dmiss_latency(self):
        event = LongDMissEvent(seq=1, cycle=10, complete_cycle=260)
        assert event.kind is MissEventKind.LONG_DCACHE_MISS
        assert event.latency == 250

    def test_icache_kind(self):
        event = ICacheMissEvent(seq=1, cycle=10, latency=10)
        assert event.kind is MissEventKind.ICACHE_MISS
