"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out
        assert "pointer_chase" in out
        assert "f16" in out


class TestSimulate:
    def test_workload_simulation(self, capsys):
        assert main([
            "simulate", "--workload", "gzip", "--length", "3000",
        ]) == 0
        out = capsys.readouterr().out
        assert "instructions      : 3000" in out
        assert "mean penalty" in out
        assert "CPI stack" in out

    def test_kernel_simulation(self, capsys):
        assert main(["simulate", "--kernel", "fibonacci"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_structural_kernel(self, capsys):
        assert main([
            "simulate", "--kernel", "branchy_search", "--structural",
        ]) == 0
        out = capsys.readouterr().out
        assert "mispredictions" in out

    def test_config_flags_respected(self, capsys):
        main(["simulate", "--workload", "gzip", "--length", "3000",
              "--frontend-depth", "20"])
        deep = capsys.readouterr().out
        main(["simulate", "--workload", "gzip", "--length", "3000"])
        shallow = capsys.readouterr().out

        def cycles(text):
            for line in text.splitlines():
                if line.startswith("cycles"):
                    return int(line.split(":")[1])
            raise AssertionError("no cycles line")

        assert cycles(deep) > cycles(shallow)

    def test_inorder_flag_slower(self, capsys):
        main(["simulate", "--workload", "gzip", "--length", "3000",
              "--inorder"])
        in_order = capsys.readouterr().out
        main(["simulate", "--workload", "gzip", "--length", "3000"])
        out_of_order = capsys.readouterr().out

        def ipc(text):
            for line in text.splitlines():
                if line.startswith("IPC"):
                    return float(line.split(":")[1])
            raise AssertionError("no IPC line")

        assert ipc(in_order) <= ipc(out_of_order)

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "nonesuch"])

    def test_requires_exactly_one_source(self):
        with pytest.raises(SystemExit):
            main(["simulate"])
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "gzip", "--kernel", "fibonacci"])


class TestDecompose:
    def test_decompose_workload(self, capsys):
        assert main([
            "decompose", "--workload", "twolf", "--length", "5000",
            "--max-events", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "C1 frontend refill" in out
        assert "C5 short (L1) D-cache misses" in out


class TestTraceRoundTrip:
    def test_trace_and_info(self, tmp_path, capsys):
        path = tmp_path / "t.trc"
        assert main([
            "trace", "--workload", "mcf", "--length", "2000",
            "--out", str(path),
        ]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["trace-info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "instructions        : 2000" in out
        assert "dataflow IPC" in out

    def test_simulate_from_file(self, tmp_path, capsys):
        path = tmp_path / "t.trc"
        main(["trace", "--workload", "gzip", "--length", "2000",
              "--out", str(path)])
        capsys.readouterr()
        assert main(["simulate", "--trace", str(path)]) == 0
        assert "IPC" in capsys.readouterr().out


class TestExperiment:
    def test_runs_t1(self, capsys):
        assert main(["experiment", "t1"]) == 0
        assert "Baseline processor configuration" in capsys.readouterr().out

    def test_markdown_mode(self, capsys):
        assert main(["experiment", "t1", "--markdown"]) == 0
        assert "| parameter | value |" in capsys.readouterr().out

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "f99"])


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "t1"]) == 0
        out = capsys.readouterr().out
        assert "### T1" in out
        assert "| parameter | value |" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(["report", "t1", "--out", str(path)]) == 0
        text = path.read_text()
        assert text.startswith("# Reproduction report")
        assert "### T1" in text


class TestSuiteCommand:
    def test_suite_small(self, capsys):
        assert main(["suite", "--length", "2000"]) == 0
        out = capsys.readouterr().out
        assert "twolf" in out
        assert "penalty/frontend" in out


class TestQuiet:
    def test_quiet_suppresses_progress_but_not_results(self, tmp_path, capsys):
        path = tmp_path / "t.trc"
        assert main(["trace", "-q", "--workload", "gzip",
                     "--length", "2000", "--out", str(path)]) == 0
        assert capsys.readouterr().out == ""
        assert path.exists()

    def test_results_still_print_under_quiet(self, capsys):
        assert main(["simulate", "--quiet", "--workload", "gzip",
                     "--length", "2000"]) == 0
        out = capsys.readouterr().out
        assert "instructions      : 2000" in out


class TestTraceExport:
    def test_trace_out_is_perfetto_loadable(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        assert main(["simulate", "--workload", "gzip", "--length", "3000",
                     "--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        mispredicts = None
        for line in out.splitlines():
            if line.startswith("mispredictions"):
                mispredicts = int(line.split(":")[1])
        document = json.loads(path.read_text())
        spans = [e for e in document["traceEvents"]
                 if e.get("name") == "mispredict"]
        assert len(spans) == mispredicts > 0
        for span in spans:
            assert span["dur"] == span["args"]["penalty_cycles"]

    def test_trace_jsonl_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(["simulate", "--workload", "gzip", "--length", "2000",
                     "--trace-jsonl", str(path)]) == 0
        capsys.readouterr()
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_obs_trace_verb(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "obs.json"
        assert main(["obs", "trace", "--workload", "gzip",
                     "--length", "2000", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "mispredict span(s)" in out
        assert "traceEvents" in json.loads(out_path.read_text()) or True
        document = json.loads(out_path.read_text())
        assert any(e.get("name") == "interval_boundary"
                   for e in document["traceEvents"])


class TestObsMetrics:
    # The harness's simulate_workload caches (in-process LRU + the
    # persistent store) are redirected/cleared so the experiment really
    # simulates — a cache-served result records no metrics, by design.

    @pytest.fixture(autouse=True)
    def _cold_harness_caches(self):
        from repro.harness import runner

        runner._sim_cache.clear()
        yield
        runner._sim_cache.clear()

    def test_lab_run_metrics_then_render(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["lab", "run", "f1", "--workers", "1", "--metrics",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "view with `repro obs metrics" in out
        assert main(["obs", "metrics", "latest",
                     "--cache-dir", str(tmp_path)]) == 0
        first = capsys.readouterr().out
        assert "core.instructions_total" in first
        assert "counters:" in first

    def test_metrics_render_is_quiet_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        main(["lab", "run", "f1", "-q", "--workers", "1", "--metrics",
              "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["obs", "metrics", "-q", "latest",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("counters:")

    def test_missing_metrics_reports_and_fails(self, tmp_path, capsys):
        main(["lab", "run", "t1", "-q", "--workers", "1",
              "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["obs", "metrics", "latest",
                     "--cache-dir", str(tmp_path)]) == 1
        assert "no metrics recorded" in capsys.readouterr().out


class TestProfile:
    def test_profile_reports_phases(self, capsys):
        assert main(["profile", "--workload", "gzip",
                     "--length", "2000", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "cli.simulate" in out
        assert "core.dispatch" in out
        assert "fast_sim.estimate" in out
        assert "share" in out


class TestLabFsck:
    def _seed_store(self, tmp_path, capsys):
        assert main(["lab", "run", "f1", "-q", "--workers", "1",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_clean_store_exits_zero(self, tmp_path, capsys):
        self._seed_store(tmp_path, capsys)
        assert main(["lab", "fsck", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_corruption_exits_one_with_repair_hint(self, tmp_path, capsys):
        from repro.lab import ResultStore

        self._seed_store(tmp_path, capsys)
        store = ResultStore(root=tmp_path)
        [path] = list(store.iter_objects())
        path.write_bytes(b"{torn")
        assert main(["lab", "fsck", "--cache-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "unrepaired" in out
        assert "--repair" in out

    def test_repair_quarantines_and_exits_zero(self, tmp_path, capsys):
        from repro.lab import ResultStore

        self._seed_store(tmp_path, capsys)
        store = ResultStore(root=tmp_path)
        [path] = list(store.iter_objects())
        path.write_bytes(b"{torn")
        assert main(["lab", "fsck", "--repair",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert len(ResultStore(root=tmp_path).quarantined_files()) == 1

    def test_json_report_to_output_file(self, tmp_path, capsys):
        import json

        self._seed_store(tmp_path, capsys)
        report = tmp_path / "fsck-report.json"
        assert main(["lab", "fsck", "--cache-dir", str(tmp_path),
                     "--format", "json", "--output", str(report)]) == 0
        doc = json.loads(report.read_text())
        assert doc["ok"] is True
        assert doc["scanned"]["objects"] >= 1


class TestLabResume:
    def test_run_then_resume_replays_from_store(self, tmp_path, capsys):
        assert main(["lab", "run", "f1", "--workers", "1",
                     "--run-id", "cli-demo",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["lab", "run", "f1", "--workers", "1",
                     "--resume", "cli-demo",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "resumed" in out


class TestSweep:
    def test_scalar_sweep_prints_table(self, tmp_path, capsys):
        assert main([
            "sweep", "--workload", "gzip", "--parameter", "rob_size",
            "--values", "32,64", "--length", "2000",
            "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "rob_size" in out
        assert "32" in out and "64" in out

    def test_batched_sweep_matches_scalar_sweep(self, tmp_path, capsys):
        args = [
            "sweep", "--workload", "gzip", "--parameter", "rob_size",
            "--values", "32,64,128", "--length", "2000", "--no-cache",
        ]
        assert main(args) == 0
        scalar_out = capsys.readouterr().out
        assert main(args + ["--batch", "--batch-size", "2"]) == 0
        batch_out = capsys.readouterr().out
        scalar_rows = [l for l in scalar_out.splitlines() if l.strip()]
        batch_rows = [l for l in batch_out.splitlines() if l.strip()]
        # identical tables after the mode header: IPC, cycles, events
        assert scalar_rows[1:6] == batch_rows[1:6]

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            main([
                "sweep", "--workload", "nosuch", "--parameter", "rob_size",
                "--values", "32", "--no-cache",
            ])

    def test_batched_inorder_rejected(self):
        with pytest.raises(SystemExit):
            main([
                "sweep", "--workload", "gzip", "--parameter", "rob_size",
                "--values", "32", "--batch", "--inorder", "--no-cache",
            ])
