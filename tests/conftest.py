"""Shared fixtures: small deterministic traces, configs, simulations."""

from __future__ import annotations

import pytest

from repro.obs import runtime as obs_runtime
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.resilience import faults
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace


@pytest.fixture(autouse=True)
def _obs_isolated():
    """No test inherits (or leaks) ambient observability state."""
    obs_runtime.reset()
    yield
    obs_runtime.reset()


@pytest.fixture(autouse=True)
def _faults_isolated():
    """No test inherits (or leaks) an ambient fault-injection plan."""
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="session")
def base_profile() -> WorkloadProfile:
    return WorkloadProfile(name="fixture")


@pytest.fixture(scope="session")
def small_trace(base_profile):
    """10k-instruction deterministic trace shared across tests."""
    return generate_trace(base_profile, 10_000, seed=1234)


@pytest.fixture(scope="session")
def base_config() -> CoreConfig:
    return CoreConfig()


@pytest.fixture(scope="session")
def small_result(small_trace, base_config):
    """Baseline simulation of the shared trace."""
    return simulate(small_trace, base_config)
