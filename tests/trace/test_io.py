"""Unit tests for binary trace serialization."""

import pytest

from repro.isa.opcodes import OpClass
from repro.trace.io import load_trace, save_trace
from repro.trace.profiles import WorkloadProfile
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace


class TestRoundTrip:
    def test_synthetic_trace_round_trip(self, tmp_path):
        trace = generate_trace(WorkloadProfile(name="io-test"), 2000, seed=5)
        path = tmp_path / "trace.bin"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        assert loaded.records == trace.records

    def test_all_flag_combinations(self, tmp_path):
        records = [
            TraceRecord(OpClass.IALU, pc=4, deps=(1,)),
            TraceRecord(OpClass.BRANCH, pc=8, taken=True, target=0x40,
                        mispredict=True),
            TraceRecord(OpClass.BRANCH, pc=12, taken=False, mispredict=False),
            TraceRecord(OpClass.LOAD, pc=16, mem_addr=0x2000, dl1_miss=True,
                        dl2_miss=False),
            TraceRecord(OpClass.LOAD, pc=20, mem_addr=0x3000, dl2_miss=True,
                        il1_miss=True),
            TraceRecord(OpClass.STORE, pc=24, mem_addr=0x4000,
                        deps=(3, 1)),
            TraceRecord(OpClass.JUMP, pc=28, taken=True, target=0x1000),
            TraceRecord(OpClass.NOP, pc=32),
        ]
        path = tmp_path / "flags.bin"
        save_trace(Trace(records, name="flags"), path)
        loaded = load_trace(path)
        assert loaded.records == records

    def test_tri_state_none_preserved(self, tmp_path):
        records = [TraceRecord(OpClass.BRANCH, mispredict=None)]
        path = tmp_path / "tri.bin"
        save_trace(Trace(records), path)
        assert load_trace(path)[0].mispredict is None

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.bin"
        save_trace(Trace(name="empty"), path)
        loaded = load_trace(path)
        assert len(loaded) == 0
        assert loaded.name == "empty"


class TestErrors:
    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        with pytest.raises(ValueError, match="magic"):
            load_trace(path)

    def test_truncated_file_raises(self, tmp_path):
        trace = generate_trace(WorkloadProfile(), 100, seed=1)
        path = tmp_path / "trunc.bin"
        save_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="truncated"):
            load_trace(path)

    def test_oversized_dep_distance_rejected(self, tmp_path):
        record = TraceRecord(OpClass.IALU, deps=(70_000,))
        with pytest.raises(ValueError, match="distance"):
            save_trace(Trace([record]), tmp_path / "big.bin")
