"""Unit tests for WorkloadProfile validation and derived quantities."""

import pytest

from repro.isa.opcodes import OpClass
from repro.trace.profiles import DEFAULT_MIX, WorkloadProfile


class TestValidation:
    def test_default_profile_valid(self):
        WorkloadProfile()

    def test_mix_must_sum_to_one(self):
        bad = dict(DEFAULT_MIX)
        bad[OpClass.IALU] += 0.1
        with pytest.raises(ValueError, match="sum"):
            WorkloadProfile(mix=bad)

    def test_negative_mix_fraction_rejected(self):
        bad = dict(DEFAULT_MIX)
        bad[OpClass.IALU] -= 2 * bad[OpClass.LOAD]
        bad[OpClass.LOAD] = -bad[OpClass.LOAD]
        with pytest.raises(ValueError):
            WorkloadProfile(mix=bad)

    def test_nop_in_mix_rejected(self):
        bad = dict(DEFAULT_MIX)
        bad[OpClass.IALU] -= 0.1
        bad[OpClass.NOP] = 0.1
        with pytest.raises(ValueError, match="NOP"):
            WorkloadProfile(mix=bad)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("mean_dependence_distance", 0.5),
            ("mispredict_rate", 1.5),
            ("dl1_miss_rate", -0.1),
            ("burst_fraction", 2.0),
            ("burst_persistence", -1.0),
            ("il1_mpki", 2000.0),
            ("stride_fraction", 1.5),
        ],
    )
    def test_out_of_range_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            WorkloadProfile(**{field: value})

    def test_miss_rates_cannot_exceed_one_combined(self):
        with pytest.raises(ValueError):
            WorkloadProfile(dl1_miss_rate=0.7, dl2_miss_rate=0.4)


class TestDerived:
    def test_dependence_p(self):
        assert WorkloadProfile(
            mean_dependence_distance=4.0
        ).dependence_p == pytest.approx(0.25)

    def test_chain_count_rounding(self):
        assert WorkloadProfile(mean_dependence_distance=1.2).chain_count == 1
        assert WorkloadProfile(mean_dependence_distance=3.6).chain_count == 4

    def test_mispredictions_per_ki(self):
        profile = WorkloadProfile(mispredict_rate=0.05)
        expected = 1000 * profile.branch_fraction * 0.05
        assert profile.mispredictions_per_ki == pytest.approx(expected)

    def test_miss_events_per_ki_sums_components(self):
        profile = WorkloadProfile()
        assert profile.miss_events_per_ki == pytest.approx(
            profile.mispredictions_per_ki
            + profile.il1_mpki
            + profile.long_dmisses_per_ki
        )

    def test_with_overrides_returns_new_profile(self):
        base = WorkloadProfile(name="a")
        derived = base.with_overrides(mispredict_rate=0.2)
        assert derived.mispredict_rate == 0.2
        assert base.mispredict_rate != 0.2
        assert derived.name == "a"


class TestBurstScaling:
    def test_long_run_average_preserved(self):
        profile = WorkloadProfile(
            mispredict_rate=0.06, burst_fraction=0.2, burst_factor=5.0
        )
        low = profile.scaled_mispredict_rate(in_burst=False)
        high = profile.scaled_mispredict_rate(in_burst=True)
        average = 0.8 * low + 0.2 * high
        assert average == pytest.approx(0.06)

    def test_burst_rate_exceeds_base(self):
        profile = WorkloadProfile(burst_factor=4.0, burst_fraction=0.1)
        assert profile.scaled_mispredict_rate(True) > profile.mispredict_rate
        assert profile.scaled_mispredict_rate(False) < profile.mispredict_rate

    def test_rate_capped_at_one(self):
        profile = WorkloadProfile(
            mispredict_rate=0.9, burst_factor=10.0, burst_fraction=0.5
        )
        assert profile.scaled_mispredict_rate(True) <= 1.0
