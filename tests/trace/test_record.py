"""Unit tests for TraceRecord."""

import pytest

from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord


class TestConstruction:
    def test_minimal(self):
        record = TraceRecord(OpClass.IALU)
        assert record.deps == ()
        assert record.mem_addr is None
        assert not record.is_branch

    def test_load_requires_address(self):
        with pytest.raises(ValueError, match="mem_addr"):
            TraceRecord(OpClass.LOAD)

    def test_store_requires_address(self):
        with pytest.raises(ValueError):
            TraceRecord(OpClass.STORE)

    def test_load_with_address(self):
        record = TraceRecord(OpClass.LOAD, mem_addr=0x1000)
        assert record.is_load and record.is_memory

    def test_nonpositive_dep_rejected(self):
        with pytest.raises(ValueError, match="distances"):
            TraceRecord(OpClass.IALU, deps=(0,))
        with pytest.raises(ValueError):
            TraceRecord(OpClass.IALU, deps=(2, -1))

    def test_deps_normalized_to_tuple(self):
        record = TraceRecord(OpClass.IALU, deps=[3, 1])
        assert record.deps == (3, 1)


class TestClassification:
    def test_branch_flags(self):
        record = TraceRecord(OpClass.BRANCH, taken=True, target=0x2000)
        assert record.is_branch and record.is_control
        assert not record.is_memory

    def test_jump_is_control_not_branch(self):
        record = TraceRecord(OpClass.JUMP, taken=True, target=0x2000)
        assert record.is_control and not record.is_branch

    def test_store_flags(self):
        record = TraceRecord(OpClass.STORE, mem_addr=8)
        assert record.is_store and not record.is_load


class TestAnnotations:
    def test_default_unannotated(self):
        record = TraceRecord(OpClass.BRANCH)
        assert record.mispredict is None
        assert record.il1_miss is None

    def test_annotated_flags(self):
        record = TraceRecord(
            OpClass.LOAD, mem_addr=8, dl1_miss=True, dl2_miss=False
        )
        assert record.dl1_miss is True
        assert record.dl2_miss is False


class TestEquality:
    def test_equal_records(self):
        a = TraceRecord(OpClass.IALU, pc=4, deps=(1,))
        b = TraceRecord(OpClass.IALU, pc=4, deps=(1,))
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_records(self):
        a = TraceRecord(OpClass.IALU, pc=4)
        b = TraceRecord(OpClass.IALU, pc=8)
        assert a != b

    def test_annotation_changes_equality(self):
        a = TraceRecord(OpClass.BRANCH, mispredict=True)
        b = TraceRecord(OpClass.BRANCH, mispredict=False)
        assert a != b

    def test_repr_mentions_misses(self):
        record = TraceRecord(OpClass.LOAD, mem_addr=8, dl2_miss=True)
        assert "DL2$" in repr(record)
