"""Unit tests for the Trace container and its statistics."""

import pytest

from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


def _ialu(deps=()):
    return TraceRecord(OpClass.IALU, deps=deps)


def _branch(mispredict=None, taken=False):
    return TraceRecord(OpClass.BRANCH, taken=taken, mispredict=mispredict)


class TestContainer:
    def test_append_and_len(self):
        trace = Trace()
        trace.append(_ialu())
        trace.extend([_ialu(), _ialu()])
        assert len(trace) == 3

    def test_indexing_and_iter(self):
        records = [_ialu(), _branch()]
        trace = Trace(records)
        assert trace[1].is_branch
        assert list(trace) == records

    def test_slice(self):
        trace = Trace([_ialu() for _ in range(10)])
        sub = trace.slice(2, 5)
        assert len(sub) == 3

    def test_validate_passes(self):
        Trace([_ialu(deps=(1,)), _ialu()]).validate()


class TestAnnotationDetection:
    def test_annotated_when_branches_flagged(self):
        trace = Trace([_ialu(), _branch(mispredict=False)])
        assert trace.is_annotated

    def test_unannotated_when_flags_missing(self):
        trace = Trace([_branch(mispredict=None)])
        assert not trace.is_annotated

    def test_trace_without_branches_is_annotated(self):
        assert Trace([_ialu()]).is_annotated


class TestStatistics:
    def test_counts(self):
        trace = Trace(
            [
                _ialu(deps=(1,)),
                _branch(mispredict=True, taken=True),
                _branch(mispredict=False, taken=False),
                TraceRecord(OpClass.LOAD, mem_addr=8, dl1_miss=True),
            ]
        )
        stats = trace.statistics()
        assert stats.instruction_count == 4
        assert stats.branch_count == 2
        assert stats.mispredict_count == 1
        assert stats.mispredict_rate == pytest.approx(0.5)
        assert stats.taken_fraction == pytest.approx(0.5)
        assert stats.dl1_miss_rate == pytest.approx(1.0)

    def test_mix_sums_to_one(self):
        trace = Trace([_ialu(), _branch(), TraceRecord(OpClass.LOAD, mem_addr=0)])
        assert sum(trace.statistics().mix.values()) == pytest.approx(1.0)

    def test_empty_trace_statistics(self):
        stats = Trace().statistics()
        assert stats.instruction_count == 0
        assert stats.mispredict_rate == 0.0

    def test_dependence_histogram(self):
        trace = Trace([_ialu(), _ialu(deps=(1,)), _ialu(deps=(2, 1))])
        stats = trace.statistics()
        assert stats.dependence_histogram.count(1) == 2
        assert stats.dependence_histogram.count(2) == 1

    def test_indices_helpers(self):
        trace = Trace([_ialu(), _branch(mispredict=True), _branch(mispredict=False)])
        assert trace.branch_indices() == [1, 2]
        assert trace.mispredicted_indices() == [1]


class TestCriticalPath:
    def test_serial_chain(self):
        records = [_ialu(deps=(1,) if i else ()) for i in range(50)]
        assert Trace(records).critical_path_length() == 50

    def test_independent_instructions(self):
        records = [_ialu() for _ in range(50)]
        assert Trace(records).critical_path_length() == 1

    def test_distance_two_halves_path(self):
        records = [_ialu(deps=(2,) if i >= 2 else ()) for i in range(100)]
        assert Trace(records).critical_path_length() == 50

    def test_latency_function(self):
        records = [_ialu(deps=(1,) if i else ()) for i in range(10)]
        cp = Trace(records).critical_path_length(lambda op: 3)
        assert cp == 30

    def test_dataflow_ipc(self):
        records = [_ialu(deps=(2,) if i >= 2 else ()) for i in range(100)]
        assert Trace(records).dataflow_ipc() == pytest.approx(2.0)

    def test_dataflow_ipc_empty(self):
        assert Trace().dataflow_ipc() == 0.0


class TestStatisticsMemoization:
    def test_statistics_cached_until_mutation(self):
        trace = Trace([_ialu(), _branch(taken=True)])
        first = trace.statistics()
        assert trace.statistics() is first  # memoized object

        trace.append(_ialu())
        second = trace.statistics()
        assert second is not first
        assert second.instruction_count == 3

    def test_extend_invalidates(self):
        trace = Trace([_ialu()])
        first = trace.statistics()
        trace.extend([_branch(taken=True)])
        assert trace.statistics() is not first
        assert trace.statistics().branch_count == 1

    def test_version_counts_mutations(self):
        trace = Trace()
        start = trace.version
        trace.append(_ialu())
        trace.extend([_ialu(), _ialu()])
        assert trace.version == start + 2

    def test_pack_cached_until_mutation(self):
        trace = Trace([_ialu(), _branch(taken=True)])
        packed = trace.pack()
        assert trace.pack() is packed
        trace.append(_ialu())
        repacked = trace.pack()
        assert repacked is not packed
        assert len(repacked) == 3

    def test_memoized_statistics_match_fresh_computation(self):
        trace = Trace([_ialu(deps=(1,) if i else ()) for i in range(20)])
        assert trace.statistics() == trace._compute_statistics()
