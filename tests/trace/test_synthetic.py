"""Unit tests for the synthetic trace generator.

These close the loop between profile parameters and measured trace
statistics — the property the SPEC substitution rests on.
"""

import pytest

from repro.isa.opcodes import OpClass
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import SyntheticTraceGenerator, generate_trace

N = 30_000


@pytest.fixture(scope="module")
def default_trace():
    return generate_trace(WorkloadProfile(name="syn"), N, seed=99)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        profile = WorkloadProfile()
        a = generate_trace(profile, 1000, seed=7)
        b = generate_trace(profile, 1000, seed=7)
        assert a.records == b.records

    def test_different_seed_differs(self):
        profile = WorkloadProfile()
        a = generate_trace(profile, 1000, seed=7)
        b = generate_trace(profile, 1000, seed=8)
        assert a.records != b.records

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(WorkloadProfile(), -1)

    def test_incremental_matches_batch(self):
        profile = WorkloadProfile()
        gen = SyntheticTraceGenerator(profile, seed=3)
        incremental = [gen.generate_record() for _ in range(500)]
        batch = generate_trace(profile, 500, seed=3)
        assert incremental == batch.records


class TestStatisticsMatchProfile:
    def test_instruction_mix(self, default_trace):
        profile = WorkloadProfile()
        mix = default_trace.statistics().mix
        for op_class, expected in profile.mix.items():
            measured = mix.get(op_class.value, 0.0)
            assert measured == pytest.approx(expected, abs=0.012)

    def test_mispredict_rate(self, default_trace):
        stats = default_trace.statistics()
        assert stats.mispredict_rate == pytest.approx(0.06, abs=0.015)

    def test_taken_fraction(self, default_trace):
        stats = default_trace.statistics()
        assert stats.taken_fraction == pytest.approx(0.55, abs=0.03)

    def test_il1_rate(self, default_trace):
        stats = default_trace.statistics()
        assert stats.il1_misses_per_ki == pytest.approx(2.0, abs=0.8)

    def test_dcache_rates(self, default_trace):
        stats = default_trace.statistics()
        assert stats.dl1_miss_rate == pytest.approx(0.05, abs=0.015)
        assert stats.dl2_miss_rate == pytest.approx(0.005, abs=0.004)

    def test_short_and_long_misses_exclusive(self, default_trace):
        for record in default_trace:
            if record.is_load:
                assert not (record.dl1_miss and record.dl2_miss)

    def test_trace_is_annotated(self, default_trace):
        assert default_trace.is_annotated

    def test_trace_validates(self, default_trace):
        default_trace.validate()


class TestILPControl:
    def test_dataflow_ipc_tracks_chain_count(self):
        base = WorkloadProfile()
        measured = []
        for distance in (2.0, 4.0, 8.0):
            profile = base.with_overrides(mean_dependence_distance=distance)
            trace = generate_trace(profile, 15_000, seed=5)
            ipc = trace.dataflow_ipc()
            measured.append(ipc)
            assert ipc == pytest.approx(profile.chain_count, rel=0.35)
        assert measured == sorted(measured)  # monotone in the knob

    def test_serial_profile_is_serial(self):
        profile = WorkloadProfile(
            mean_dependence_distance=1.0, chain_dep_fraction=1.0
        )
        trace = generate_trace(profile, 5000, seed=1)
        assert trace.dataflow_ipc() < 1.8


class TestStructure:
    def test_memory_ops_have_addresses(self, default_trace):
        for record in default_trace:
            if record.is_memory:
                assert record.mem_addr is not None

    def test_addresses_within_footprint(self, default_trace):
        profile = WorkloadProfile()
        limit = 0x10000 + profile.data_footprint_bytes + profile.stride_bytes
        for record in default_trace:
            if record.is_memory:
                assert 0x10000 <= record.mem_addr < limit

    def test_pcs_within_code_footprint(self, default_trace):
        profile = WorkloadProfile()
        for record in default_trace.records[:2000]:
            assert 0x1000 <= record.pc < 0x1000 + profile.code_footprint_bytes

    def test_branches_have_targets(self, default_trace):
        for record in default_trace:
            if record.is_branch:
                assert record.target is not None

    def test_dep_distances_never_exceed_index(self, default_trace):
        for i, record in enumerate(default_trace):
            for dep in record.deps:
                assert dep <= i or i == 0


class TestBurstiness:
    def test_bursty_profile_clusters_mispredictions(self):
        smooth = WorkloadProfile(
            name="smooth", burst_fraction=0.0, mispredict_rate=0.06
        )
        bursty = WorkloadProfile(
            name="bursty",
            burst_fraction=0.3,
            burst_factor=8.0,
            burst_persistence=0.98,
            mispredict_rate=0.06,
        )

        def gap_cv(trace):
            gaps = []
            last = None
            for i in trace.mispredicted_indices():
                if last is not None:
                    gaps.append(i - last)
                last = i
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / (len(gaps) - 1)
            return var**0.5 / mean

        smooth_cv = gap_cv(generate_trace(smooth, 60_000, seed=4))
        bursty_cv = gap_cv(generate_trace(bursty, 60_000, seed=4))
        assert bursty_cv > smooth_cv

    def test_overall_rate_independent_of_burstiness(self):
        for burst_fraction in (0.0, 0.3):
            profile = WorkloadProfile(
                burst_fraction=burst_fraction,
                burst_factor=6.0,
                mispredict_rate=0.06,
            )
            trace = generate_trace(profile, 60_000, seed=11)
            assert trace.statistics().mispredict_rate == pytest.approx(
                0.06, abs=0.02
            )
