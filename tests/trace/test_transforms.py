"""Unit tests for trace transformations."""

import pytest

from repro.interval.penalty import measure_penalties
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.profiles import WorkloadProfile
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace
from repro.trace.transforms import (
    interleave,
    truncate,
    with_perfect_branches,
    with_perfect_dcache,
    with_perfect_frontend,
    with_perfect_icache,
    without_short_misses,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadProfile(name="tf"), 8000, seed=3)


class TestPerfectBranches:
    def test_no_mispredictions_remain(self, trace):
        ideal = with_perfect_branches(trace)
        assert not ideal.mispredicted_indices()

    def test_other_annotations_preserved(self, trace):
        ideal = with_perfect_branches(trace)
        for a, b in zip(trace.records, ideal.records):
            assert a.il1_miss == b.il1_miss
            assert a.dl1_miss == b.dl1_miss
            assert a.op_class == b.op_class
            assert a.deps == b.deps

    def test_paired_counterfactual_is_faster(self, trace):
        config = CoreConfig()
        base = simulate(trace, config)
        ideal = simulate(with_perfect_branches(trace), config)
        assert ideal.cycles < base.cycles
        assert not ideal.mispredict_events

    def test_name_suffix(self, trace):
        assert with_perfect_branches(trace).name.endswith("+perfect-bp")


class TestPerfectCaches:
    def test_perfect_icache(self, trace):
        ideal = with_perfect_icache(trace)
        assert not any(r.il1_miss for r in ideal.records)

    def test_perfect_dcache_removes_all_miss_classes(self, trace):
        ideal = with_perfect_dcache(trace)
        for record in ideal.records:
            if record.is_load:
                assert not record.dl1_miss
                assert not record.dl2_miss

    def test_without_short_misses_keeps_long(self, trace):
        thinned = without_short_misses(trace)
        original_long = sum(
            1 for r in trace.records if r.is_load and r.dl2_miss
        )
        remaining_long = sum(
            1 for r in thinned.records if r.is_load and r.dl2_miss
        )
        assert remaining_long == original_long
        assert not any(
            r.dl1_miss for r in thinned.records if r.is_load
        )

    def test_short_miss_counterfactual_shrinks_resolution(self, trace):
        """Removing short misses is contributor C5 measured directly."""
        config = CoreConfig()
        base = measure_penalties(simulate(trace, config))
        thinned = measure_penalties(
            simulate(without_short_misses(trace), config)
        )
        assert thinned.mean_resolution < base.mean_resolution

    def test_perfect_frontend_combines(self, trace):
        ideal = with_perfect_frontend(trace)
        assert not ideal.mispredicted_indices()
        assert not any(r.il1_miss for r in ideal.records)
        assert "ideal-frontend" in ideal.name


class TestStructural:
    def test_truncate(self, trace):
        short = truncate(trace, 100)
        assert len(short) == 100
        assert short.records == trace.records[:100]

    def test_truncate_negative_raises(self, trace):
        with pytest.raises(ValueError):
            truncate(trace, -1)

    def test_truncate_beyond_length(self, trace):
        assert len(truncate(trace, 10**9)) == len(trace)

    def test_interleave_preserves_per_stream_dataflow(self):
        a = generate_trace(WorkloadProfile(name="a"), 2000, seed=1)
        b = generate_trace(WorkloadProfile(name="b"), 2000, seed=2)
        mixed = interleave([a, b])
        assert len(mixed) == 4000
        mixed.validate()
        # doubled distances: stream-a record at 2i depends on 2i - 2d
        for i in (10, 100, 500):
            assert mixed.records[2 * i].deps == tuple(
                min(2 * d, 0xFFFF) for d in a.records[i].deps
            )

    def test_interleave_raises_ilp(self):
        serial = WorkloadProfile(
            name="s", mean_dependence_distance=1.0, chain_dep_fraction=1.0
        )
        a = generate_trace(serial, 3000, seed=1)
        b = generate_trace(serial, 3000, seed=2)
        mixed = interleave([a, b])
        assert mixed.dataflow_ipc() > 1.5 * a.dataflow_ipc()

    def test_interleave_empty_raises(self):
        with pytest.raises(ValueError):
            interleave([])

    def test_interleave_single_stream_identity_lengths(self, trace):
        mixed = interleave([trace])
        assert len(mixed) == len(trace)
        assert mixed.records[5].deps == trace.records[5].deps
