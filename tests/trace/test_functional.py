"""Unit tests for the functional simulator."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.opcodes import OpClass
from repro.trace.functional import (
    DataMemory,
    ExecutionLimitExceeded,
    FunctionalSimulator,
)


def run_source(source, memory_values=None, max_instructions=100_000):
    program = assemble(source)
    memory = DataMemory()
    if memory_values:
        memory.preload(memory_values)
    simulator = FunctionalSimulator(program, memory=memory)
    trace = simulator.run(max_instructions=max_instructions)
    return trace, simulator


class TestArithmetic:
    def test_add_chain(self):
        trace, sim = run_source(
            """
            li r1, 10
            li r2, 32
            add r3, r1, r2
            st r3, 0x1000(r0)
            halt
            """
        )
        assert sim.memory.load(0x1000) == 42

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 3, 4, 7),
            ("sub", 10, 4, 6),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("mul", 6, 7, 42),
            ("div", 45, 6, 7),
            ("rem", 45, 6, 3),
            ("slt", 3, 4, 1),
            ("slt", 4, 3, 0),
        ],
    )
    def test_binary_ops(self, op, a, b, expected):
        _, sim = run_source(
            f"""
            li r1, {a}
            li r2, {b}
            {op} r3, r1, r2
            st r3, 0x1000(r0)
            halt
            """
        )
        assert sim.memory.load(0x1000) == expected

    def test_shifts(self):
        _, sim = run_source(
            """
            li r1, 5
            li r2, 2
            sll r3, r1, r2
            srl r4, r3, r2
            st r3, 0x1000(r0)
            st r4, 0x1008(r0)
            halt
            """
        )
        assert sim.memory.load(0x1000) == 20
        assert sim.memory.load(0x1008) == 5

    def test_division_by_zero_yields_zero(self):
        _, sim = run_source(
            """
            li r1, 5
            li r2, 0
            div r3, r1, r2
            st r3, 0x1000(r0)
            halt
            """
        )
        assert sim.memory.load(0x1000) == 0


class TestControlFlow:
    def test_loop_executes_n_times(self):
        trace, _ = run_source(
            """
                li r1, 0
                li r2, 5
            loop:
                addi r1, r1, 1
                bne r1, r2, loop
                halt
            """
        )
        branch_records = [r for r in trace if r.is_branch]
        assert len(branch_records) == 5
        # taken 4 times, not-taken on exit
        assert sum(r.taken for r in branch_records) == 4

    def test_branch_targets_are_pcs(self):
        trace, _ = run_source(
            """
            top:
                addi r1, r1, 1
                beq r0, r0, top2
            top2:
                halt
            """
        )
        branch = [r for r in trace if r.is_branch][0]
        assert branch.taken
        assert branch.target == 0x1000 + 8  # instruction index 2

    def test_jal_and_jr(self):
        trace, sim = run_source(
            """
                jal func
                st r9, 0x1000(r0)
                halt
            func:
                li r9, 7
                jr r1
            """
        )
        assert sim.memory.load(0x1000) == 7
        assert any(r.op_class is OpClass.JUMP for r in trace)

    def test_infinite_loop_raises_with_partial_trace(self):
        with pytest.raises(ExecutionLimitExceeded) as info:
            run_source("spin: j spin", max_instructions=100)
        assert len(info.value.partial_trace) == 100

    def test_fallthrough_off_the_end_raises(self):
        with pytest.raises(IndexError):
            run_source("nop")


class TestMemoryAndDeps:
    def test_load_reads_preloaded(self):
        _, sim = run_source(
            """
            ld r1, 0x2000(r0)
            st r1, 0x1000(r0)
            halt
            """,
            memory_values={0x2000: 99},
        )
        assert sim.memory.load(0x1000) == 99

    def test_register_dependence_distance(self):
        trace, _ = run_source(
            """
            li r1, 1
            li r2, 2
            add r3, r1, r2
            halt
            """
        )
        add = trace[2]
        assert sorted(add.deps) == [1, 2]

    def test_store_load_memory_dependence(self):
        trace, _ = run_source(
            """
            li r1, 5
            st r1, 0x2000(r0)
            ld r2, 0x2000(r0)
            halt
            """
        )
        load = trace[2]
        assert 1 in load.deps  # distance to the store

    def test_r0_reads_create_no_deps(self):
        trace, _ = run_source(
            """
            li r1, 1
            add r2, r0, r0
            halt
            """
        )
        assert trace[1].deps == ()

    def test_dep_distances_positive(self):
        trace, _ = run_source(
            """
                li r1, 0
                li r2, 20
            loop:
                addi r1, r1, 4
                bne r1, r2, loop
                halt
            """
        )
        for record in trace:
            assert all(d >= 1 for d in record.deps)

    def test_word_alignment(self):
        memory = DataMemory()
        memory.store(0x1003, 7)
        assert memory.load(0x1000) == 7
        assert DataMemory.word_address(0x1007) == 0x1000


class TestFloatingPoint:
    def test_fp_pipeline(self):
        _, sim = run_source(
            """
            fmov f1, 3
            fmov f2, 4
            fmul f3, f1, f2
            fadd f4, f3, f1
            fst f4, 0x1000(r0)
            halt
            """
        )
        assert sim.memory.load(0x1000) == pytest.approx(15.0)

    def test_fdiv(self):
        _, sim = run_source(
            """
            fmov f1, 10
            fmov f2, 4
            fdiv f3, f1, f2
            fst f3, 0x1000(r0)
            halt
            """
        )
        assert sim.memory.load(0x1000) == pytest.approx(2.5)
