"""VectorizedIntervalSimulator must equal the scalar estimate exactly."""

from __future__ import annotations

import pytest

from repro.interval.fast_sim import FastIntervalSimulator
from repro.perf.fast import VectorizedIntervalSimulator
from repro.perf.packed import PackedTrace
from repro.pipeline.config import CoreConfig
from repro.trace.profiles import WorkloadProfile
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace

FIELDS = (
    "instructions",
    "base_cycles",
    "mispredict_cycles",
    "icache_cycles",
    "long_dmiss_cycles",
    "mispredict_count",
    "icache_count",
    "long_dmiss_count",
    "resolutions",
)


def profile(**overrides):
    params = dict(
        name="fast-eq",
        mispredict_rate=0.07,
        il1_mpki=2.5,
        dl1_miss_rate=0.05,
        dl2_miss_rate=0.015,
    )
    params.update(overrides)
    return WorkloadProfile(**params)


def assert_equivalent(trace, config):
    scalar = FastIntervalSimulator(config).estimate(trace)
    vector = VectorizedIntervalSimulator(config).estimate(
        PackedTrace.pack(trace)
    )
    for name in FIELDS:
        assert getattr(scalar, name) == getattr(vector, name), name
    # The derived totals therefore agree exactly too (integer sums in
    # float64 are order-independent).
    assert scalar.cycles == vector.cycles
    assert scalar.cpi == vector.cpi


@pytest.mark.parametrize("seed", [42, 7, 123, 9001])
def test_estimate_equals_scalar(seed):
    assert_equivalent(generate_trace(profile(), 4000, seed), CoreConfig())


def test_estimate_equals_scalar_without_timeline():
    config = CoreConfig(record_timeline=False)
    assert_equivalent(generate_trace(profile(), 4000, 13), config)


@pytest.mark.parametrize("rob_size", [8, 32, 128])
def test_estimate_equals_scalar_across_window_sizes(rob_size):
    """Window boundaries move with the ROB; the DP must track exactly."""
    config = CoreConfig(rob_size=rob_size)
    assert_equivalent(generate_trace(profile(), 3000, 77), config)


def test_estimate_equals_scalar_on_dense_events():
    """Back-to-back events shrink windows to near zero."""
    dense = profile(mispredict_rate=0.3, il1_mpki=20.0, dl2_miss_rate=0.1)
    assert_equivalent(generate_trace(dense, 2000, 5), CoreConfig())


def test_estimate_equals_scalar_on_eventless_trace():
    quiet = profile(mispredict_rate=0.0, il1_mpki=0.0, dl2_miss_rate=0.0)
    assert_equivalent(generate_trace(quiet, 1500, 3), CoreConfig())


def test_estimate_empty_trace():
    estimate = VectorizedIntervalSimulator(CoreConfig()).estimate(
        PackedTrace.pack(Trace([]))
    )
    assert estimate.instructions == 0
    assert estimate.cycles == 0.0
    assert estimate.resolutions == []
