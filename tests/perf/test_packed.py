"""PackedTrace: lossless round-trip and the columnar invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa.opcodes import OpClass
from repro.perf.packed import PACK_SCHEMA_VERSION, PackedTrace
from repro.trace.profiles import WorkloadProfile
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace


def synthetic(length=400, seed=11):
    profile = WorkloadProfile(
        name="pack-test",
        mispredict_rate=0.08,
        il1_mpki=3.0,
        dl1_miss_rate=0.06,
        dl2_miss_rate=0.02,
    )
    return generate_trace(profile, length, seed)


def hand_trace():
    """Every field shape: None vs bool annotations, mem/target presence."""
    return Trace(
        [
            TraceRecord(OpClass.IALU, pc=0x100),
            TraceRecord(
                OpClass.LOAD, pc=0x104, mem_addr=0x8000, deps=(1,),
                dl1_miss=True, dl2_miss=False,
            ),
            TraceRecord(
                OpClass.BRANCH, pc=0x108, taken=True, target=0x200,
                mispredict=True, il1_miss=False, deps=(2, 1),
            ),
            TraceRecord(OpClass.STORE, pc=0x10C, mem_addr=0x8008, deps=(3,)),
            TraceRecord(OpClass.JUMP, pc=0x110, taken=True, target=0x300),
            TraceRecord(OpClass.FMUL, pc=0x114, deps=(4, 2)),
        ],
        name="hand",
    )


def test_round_trip_is_lossless_on_synthetic_trace():
    trace = synthetic()
    back = PackedTrace.pack(trace).unpack()
    assert len(back) == len(trace)
    assert all(a == b for a, b in zip(back.records, trace.records))


def test_round_trip_preserves_none_vs_false_annotations():
    trace = hand_trace()
    back = PackedTrace.pack(trace).unpack()
    for a, b in zip(back.records, trace.records):
        assert a == b
        # Tri-state fields must distinguish None from False exactly.
        for field in ("mispredict", "il1_miss", "dl1_miss", "dl2_miss"):
            assert getattr(a, field) is getattr(b, field)
        assert a.mem_addr == b.mem_addr
        assert a.target == b.target


def test_round_trip_preserves_name():
    assert PackedTrace.pack(hand_trace()).unpack().name == "hand"


def test_csr_dependence_index_matches_records():
    trace = synthetic(length=200, seed=3)
    packed = PackedTrace.pack(trace)
    assert packed.dep_indptr[0] == 0
    assert packed.dep_indptr[-1] == len(packed.dep_data)
    for seq, record in enumerate(trace.records):
        assert tuple(packed.deps_of(seq)) == record.deps


def test_array_round_trip_and_schema_gate(tmp_path):
    packed = PackedTrace.pack(hand_trace())
    arrays = packed.to_arrays()
    again = PackedTrace.from_arrays(arrays)
    assert packed.equals(again)

    wrong = dict(arrays)
    wrong["schema"] = np.int64(PACK_SCHEMA_VERSION + 1)
    with pytest.raises(ValueError):
        PackedTrace.from_arrays(wrong)


def test_equals_discriminates():
    a = PackedTrace.pack(synthetic(length=100, seed=1))
    b = PackedTrace.pack(synthetic(length=100, seed=2))
    assert a.equals(a)
    assert not a.equals(b)


def test_empty_trace_packs():
    packed = PackedTrace.pack(Trace([]))
    assert len(packed) == 0
    assert len(packed.unpack()) == 0
