"""Vectorized predictor replay must match the scalar predictors bit-for-bit."""

from __future__ import annotations

import pytest

from repro.frontend.bimodal import BimodalPredictor
from repro.frontend.gshare import GSharePredictor
from repro.frontend.local import LocalPredictor
from repro.perf.packed import PackedTrace
from repro.perf.replay import replay
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace

SCALARS = {
    "bimodal": BimodalPredictor,
    "gshare": GSharePredictor,
    "local": LocalPredictor,
}


def make(seed, length=3000):
    profile = WorkloadProfile(
        name="replay-test", mispredict_rate=0.1, dl1_miss_rate=0.04
    )
    return generate_trace(profile, length, seed)


def scalar_mispredict_bits(trace, predictor):
    """Feed the branch stream through a scalar predictor, one at a time."""
    bits = []
    for record in trace.records:
        if record.is_branch:
            correct = predictor.predict_and_update(record.pc, record.taken)
            bits.append(not correct)
    return bits


@pytest.mark.parametrize("name", sorted(SCALARS))
@pytest.mark.parametrize("seed", [1, 17, 4242])
def test_replay_matches_scalar_bitstream(name, seed):
    trace = make(seed)
    result = replay(PackedTrace.pack(trace), name)
    expected = scalar_mispredict_bits(trace, SCALARS[name]())
    assert result.branch_count == len(expected)
    assert result.mispredicted.tolist() == expected


@pytest.mark.parametrize(
    "name,params",
    [
        ("bimodal", {"entries": 16}),
        ("bimodal", {"entries": 64, "counter_bits": 1}),
        ("gshare", {"entries": 32, "history_bits": 4}),
        ("gshare", {"entries": 128, "history_bits": 7}),
        ("local", {"history_entries": 8, "pattern_entries": 16,
                   "history_bits": 4}),
    ],
)
def test_replay_matches_scalar_under_small_tables(name, params):
    """Tiny tables maximize aliasing — the hardest case to get right."""
    trace = make(seed=5, length=2000)
    result = replay(PackedTrace.pack(trace), name, **params)
    expected = scalar_mispredict_bits(trace, SCALARS[name](**params))
    assert result.mispredicted.tolist() == expected


def test_replay_accuracy_and_counts_consistent():
    result = replay(PackedTrace.pack(make(seed=2)), "bimodal")
    assert result.branch_count == len(result.predictions)
    assert result.mispredict_count == int(result.mispredicted.sum())
    assert result.accuracy + result.mispredict_rate == pytest.approx(1.0)


def test_replay_rejects_unknown_predictor():
    packed = PackedTrace.pack(make(seed=3, length=100))
    with pytest.raises(ValueError):
        replay(packed, "tage")


def test_replay_empty_trace():
    from repro.trace.stream import Trace

    result = replay(PackedTrace.pack(Trace([])), "gshare")
    assert result.branch_count == 0
    assert result.mispredict_count == 0
    assert result.accuracy == 1.0
