"""PackedTraceCache: content addressing, persistence, and the kill switch."""

from __future__ import annotations

import pytest

from repro.perf.cache import PackedTraceCache, canonical_profile, trace_key
from repro.perf.packed import PackedTrace
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace

PROFILE = WorkloadProfile(name="cache-test", mispredict_rate=0.05)


def test_key_is_stable_and_parameter_sensitive():
    key = trace_key(PROFILE, 500, 7)
    assert key == trace_key(PROFILE, 500, 7)
    assert key != trace_key(PROFILE, 500, 8)
    assert key != trace_key(PROFILE, 501, 7)
    other = WorkloadProfile(name="cache-test", mispredict_rate=0.06)
    assert key != trace_key(other, 500, 7)


def test_canonical_profile_is_json_ready():
    import json

    payload = canonical_profile(PROFILE)
    assert json.dumps(payload, sort_keys=True)
    assert payload["name"] == "cache-test"


def test_get_or_build_round_trips_through_disk(tmp_path):
    cache = PackedTraceCache(root=tmp_path)
    first = cache.get_or_build(PROFILE, 400, 3)
    assert cache.misses == 1 and cache.puts == 1 and cache.hits == 0

    again = PackedTraceCache(root=tmp_path).get_or_build(PROFILE, 400, 3)
    assert first.equals(again)
    # And the loaded form unpacks to the very trace generation produces.
    reference = generate_trace(PROFILE, 400, 3)
    assert all(
        a == b for a, b in zip(again.unpack().records, reference.records)
    )


def test_cache_hit_counts(tmp_path):
    cache = PackedTraceCache(root=tmp_path)
    cache.get_or_build(PROFILE, 300, 1)
    cache.get_or_build(PROFILE, 300, 1)
    assert cache.hits == 1 and cache.puts == 1


def test_corrupt_object_is_a_miss_and_gets_rebuilt(tmp_path):
    cache = PackedTraceCache(root=tmp_path)
    packed = cache.get_or_build(PROFILE, 200, 9)
    key = trace_key(PROFILE, 200, 9)
    path = cache._object_path(key)
    path.write_bytes(b"not an npz")

    rebuilt = cache.get_or_build(PROFILE, 200, 9)
    assert rebuilt.equals(packed)
    assert cache.get(key) is not None  # overwritten with a good object


def test_no_cache_env_bypasses_disk(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    cache = PackedTraceCache(root=tmp_path)
    packed = cache.get_or_build(PROFILE, 150, 2)
    assert isinstance(packed, PackedTrace)
    assert not cache.packed_dir.exists()
    assert cache.puts == 0


def test_describe_reports_objects(tmp_path):
    cache = PackedTraceCache(root=tmp_path)
    cache.get_or_build(PROFILE, 100, 4)
    info = cache.describe()
    assert info["objects"] == 1
    assert info["size_bytes"] > 0
    assert info["stats"]["puts"] == 1
