"""The batched SoA core must equal the scalar oracle field-for-field.

Every test here compares complete :class:`SimulationResult` objects —
all fields, including event lists and (when recorded) the four
per-instruction timeline columns — because the batched kernel's whole
contract is bit-exactness against :class:`SuperscalarCore`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.batchcore import (
    BatchedSuperscalarCore,
    TraceColumns,
    batch_supported,
    run_batch,
)
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import SuperscalarCore
from repro.trace.profiles import WorkloadProfile
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace


def profile(**overrides):
    params = dict(
        name="batchcore-eq",
        mispredict_rate=0.06,
        il1_mpki=2.0,
        dl1_miss_rate=0.05,
        dl2_miss_rate=0.02,
    )
    params.update(overrides)
    return WorkloadProfile(**params)


def assert_result_equal(batched, scalar, context=""):
    assert vars(batched) == vars(scalar), context


def assert_batch_matches_oracle(trace, configs):
    results = run_batch(trace, configs)
    assert len(results) == len(configs)
    for config, result in zip(configs, results):
        oracle = SuperscalarCore(config).run(trace)
        assert_result_equal(result, oracle, f"config={config}")


class TestBatchSupported:
    def test_default_config_is_supported(self):
        assert batch_supported(CoreConfig())

    def test_random_issue_falls_back(self):
        assert not batch_supported(CoreConfig(issue_policy="random"))

    def test_wrong_path_dispatch_falls_back(self):
        assert not batch_supported(CoreConfig(dispatch_wrong_path=True))


class TestEdgeCases:
    def test_empty_trace(self):
        trace = Trace(records=[])
        for result in run_batch(trace, [CoreConfig(), CoreConfig(rob_size=32)]):
            assert result.instructions == 0
            assert result.cycles == 0

    def test_empty_config_list(self):
        trace = generate_trace(profile(), 50, seed=1)
        assert BatchedSuperscalarCore([]).run(trace) == []

    def test_single_instruction(self):
        trace = generate_trace(profile(), 1, seed=3)
        assert_batch_matches_oracle(trace, [CoreConfig()])

    def test_plan_reused_across_runs(self):
        core = BatchedSuperscalarCore([CoreConfig(), CoreConfig(rob_size=48)])
        trace = generate_trace(profile(), 300, seed=5)
        first = core.run(trace)
        again = core.run(trace)
        for a, b in zip(first, again):
            assert_result_equal(a, b)


class TestOracleEquality:
    @pytest.mark.parametrize("seed", [7, 42, 2006])
    def test_rob_sweep_matches_scalar(self, seed):
        trace = generate_trace(profile(), 1500, seed=seed)
        configs = [CoreConfig(rob_size=r) for r in (16, 32, 64, 128, 256)]
        assert_batch_matches_oracle(trace, configs)

    def test_width_and_latency_variants(self):
        trace = generate_trace(profile(), 1200, seed=11)
        base = CoreConfig()
        configs = [
            base,
            base.with_overrides(issue_width=1, dispatch_width=1, commit_width=1),
            base.with_overrides(issue_width=8, dispatch_width=8, rob_size=256),
            base.with_overrides(l1_latency=1, l2_latency=20, memory_latency=400),
            base.with_overrides(frontend_depth=12),
            base.with_overrides(record_timeline=False),
        ]
        assert_batch_matches_oracle(trace, configs)

    def test_timeline_off_leaves_columns_unset(self):
        trace = generate_trace(profile(), 400, seed=17)
        [result] = run_batch(trace, [CoreConfig(record_timeline=False)])
        assert result.dispatch_cycle is None
        assert result.issue_cycle is None
        assert result.complete_cycle is None
        assert result.commit_cycle is None

    def test_unsupported_config_uses_oracle(self):
        trace = generate_trace(profile(), 800, seed=23)
        config = CoreConfig(issue_policy="random")
        assert_batch_matches_oracle(trace, [config])

    def test_mixed_batch_supported_and_fallback(self):
        trace = generate_trace(profile(), 800, seed=29)
        configs = [
            CoreConfig(),
            CoreConfig(issue_policy="random"),
            CoreConfig(rob_size=32),
            CoreConfig(dispatch_wrong_path=True),
        ]
        assert_batch_matches_oracle(trace, configs)

    def test_memory_heavy_profile(self):
        heavy = profile(dl1_miss_rate=0.25, dl2_miss_rate=0.4, il1_mpki=12.0)
        trace = generate_trace(heavy, 1000, seed=31)
        assert_batch_matches_oracle(
            trace, [CoreConfig(), CoreConfig(rob_size=32)]
        )

    def test_branch_heavy_profile(self):
        branchy = profile(mispredict_rate=0.25)
        trace = generate_trace(branchy, 1000, seed=37)
        assert_batch_matches_oracle(
            trace, [CoreConfig(), CoreConfig(frontend_depth=15)]
        )


class TestTraceColumns:
    def test_build_is_memoized_per_trace(self):
        trace = generate_trace(profile(), 200, seed=41)
        assert TraceColumns.build(trace) is TraceColumns.build(trace)

    def test_slice_rebases_producers(self):
        trace = generate_trace(profile(), 300, seed=43)
        cols = TraceColumns.build(trace)
        part = cols.slice(100, 250)
        assert part.n == 150
        assert part.op == cols.op[100:250]
        for seq, producers in enumerate(part.prod_lists):
            for producer in producers:
                assert 0 <= producer < seq

    def test_slice_bounds_checked(self):
        cols = TraceColumns.build(generate_trace(profile(), 50, seed=47))
        with pytest.raises(ValueError):
            cols.slice(-1, 10)
        with pytest.raises(ValueError):
            cols.slice(10, 51)


CONFIG_STRATEGY = st.builds(
    CoreConfig,
    rob_size=st.sampled_from([16, 32, 64, 128, 256]),
    dispatch_width=st.sampled_from([1, 2, 4, 8]),
    issue_width=st.sampled_from([1, 2, 4, 8]),
    commit_width=st.sampled_from([1, 2, 4]),
    frontend_depth=st.integers(min_value=1, max_value=12),
    issue_policy=st.sampled_from(["oldest", "random"]),
    record_timeline=st.booleans(),
)


class TestBatchProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        configs=st.lists(CONFIG_STRATEGY, min_size=1, max_size=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_batched_equals_scalar(self, seed, configs):
        trace = generate_trace(profile(), 300, seed=seed)
        assert_batch_matches_oracle(trace, configs)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_batch_order_is_config_order(self, seed):
        trace = generate_trace(profile(), 200, seed=seed)
        configs = [CoreConfig(rob_size=r) for r in (128, 16, 64)]
        results = run_batch(trace, configs)
        singles = [run_batch(trace, [c])[0] for c in configs]
        for batched, single in zip(results, singles):
            assert_result_equal(batched, single)
