"""Sharded simulation must stitch to the unsharded result exactly.

The checkpoint layer's contract is byte-identity: cut a trace at
interval boundaries, simulate each shard from a fresh pipeline, stitch,
and the composite :class:`SimulationResult` equals the whole-trace run
on every field.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.batchcore import TraceColumns
from repro.perf.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    PipelineCheckpoint,
    checkpoints_of,
    interval_boundaries,
    plan_shards,
    simulate_shard,
    simulate_sharded,
    simulate_sharded_detailed,
    stitch,
)
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import SuperscalarCore
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace


def profile(**overrides):
    params = dict(
        name="checkpoint-eq",
        mispredict_rate=0.08,
        il1_mpki=2.0,
        dl1_miss_rate=0.05,
        dl2_miss_rate=0.02,
    )
    params.update(overrides)
    return WorkloadProfile(**params)


def assert_result_equal(sharded, whole, context=""):
    assert vars(sharded) == vars(whole), context


class TestIntervalBoundaries:
    def test_boundaries_follow_mispredicts(self):
        trace = generate_trace(profile(), 500, seed=3)
        cols = TraceColumns.build(trace)
        for boundary in interval_boundaries(trace):
            assert 0 < boundary < len(trace)
            assert cols.misp[boundary - 1]

    def test_min_gap_respected(self):
        trace = generate_trace(profile(mispredict_rate=0.3), 500, seed=5)
        boundaries = interval_boundaries(trace, min_gap=50)
        previous = 0
        for boundary in boundaries:
            assert boundary - previous >= 50
            previous = boundary

    def test_limit_truncates(self):
        trace = generate_trace(profile(mispredict_rate=0.3), 500, seed=7)
        assert len(interval_boundaries(trace, limit=3)) <= 3

    def test_plan_shards_monotonic(self):
        trace = generate_trace(profile(), 2000, seed=9)
        cuts = plan_shards(trace, 4)
        assert cuts == sorted(set(cuts))
        assert all(0 < cut < len(trace) for cut in cuts)


class TestShardStitchIdentity:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_sharded_equals_whole(self, shards):
        trace = generate_trace(profile(), 2500, seed=11)
        whole = SuperscalarCore(CoreConfig()).run(trace)
        sharded = simulate_sharded(trace, CoreConfig(), shards=shards)
        assert_result_equal(sharded, whole, f"shards={shards}")

    def test_split_at_every_boundary(self):
        """The stress case: one shard per interval."""
        config = CoreConfig()
        trace = generate_trace(profile(), 1200, seed=13)
        boundaries = interval_boundaries(trace)
        assert boundaries, "trace must contain mispredicts for this test"
        whole = SuperscalarCore(config).run(trace)
        sharded = simulate_sharded(trace, config, boundaries=boundaries)
        assert_result_equal(sharded, whole)

    def test_manual_stitch_matches(self):
        """Drive simulate_shard + stitch by hand, healing dirty cuts
        the same way the orchestrator does: merge with the successor
        span and re-simulate."""
        config = CoreConfig()
        trace = generate_trace(profile(), 1000, seed=17)
        cuts = plan_shards(trace, 3)
        spans = list(zip([0] + cuts, cuts + [len(trace)]))
        pieces = [simulate_shard(trace, config, a, b) for a, b in spans]
        index = 0
        while index < len(pieces) - 1:
            piece = pieces[index]
            if piece.clean:
                index += 1
                continue
            merged = simulate_shard(
                trace, config, piece.start, pieces[index + 1].stop
            )
            pieces[index:index + 2] = [merged]
        stitched = stitch(pieces, config)
        assert_result_equal(stitched, SuperscalarCore(config).run(trace))

    def test_stitch_refuses_dirty_pieces(self):
        heavy = profile(dl1_miss_rate=0.3, dl2_miss_rate=0.6)
        config = CoreConfig()
        trace = generate_trace(heavy, 1500, seed=17)
        boundaries = interval_boundaries(trace)
        spans = list(zip([0] + boundaries, boundaries + [len(trace)]))
        pieces = [simulate_shard(trace, config, a, b) for a, b in spans]
        if all(piece.clean for piece in pieces[:-1]):
            pytest.skip("all cuts happened to be clean")
        with pytest.raises(ValueError):
            stitch(pieces, config)

    def test_sharded_without_timeline(self):
        config = CoreConfig(record_timeline=False)
        trace = generate_trace(profile(), 1500, seed=19)
        whole = SuperscalarCore(config).run(trace)
        sharded = simulate_sharded(trace, config, shards=4)
        assert_result_equal(sharded, whole)
        assert sharded.dispatch_cycle is None

    def test_dirty_boundaries_are_healed(self):
        """Long D-miss shadows make many cuts dirty; stitching must
        merge across them and still match exactly."""
        heavy = profile(dl1_miss_rate=0.3, dl2_miss_rate=0.5)
        config = CoreConfig()
        trace = generate_trace(heavy, 1500, seed=23)
        boundaries = interval_boundaries(trace)
        if not boundaries:
            pytest.skip("no mispredicts in generated trace")
        whole = SuperscalarCore(config).run(trace)
        result, report = simulate_sharded_detailed(
            trace, config, boundaries=boundaries
        )
        assert_result_equal(result, whole)
        assert report.merged_boundaries >= 0

    def test_no_boundaries_falls_back_to_whole_run(self):
        calm = profile(mispredict_rate=0.0, il1_mpki=0.0)
        config = CoreConfig()
        trace = generate_trace(calm, 400, seed=29)
        whole = SuperscalarCore(config).run(trace)
        result, report = simulate_sharded_detailed(trace, config, shards=4)
        assert_result_equal(result, whole)


class TestCheckpointPayload:
    def test_round_trip(self):
        checkpoint = PipelineCheckpoint(
            boundary=120,
            resume_cycle=431,
            last_commit_cycle=430,
            max_fu_free=429,
            clean=True,
        )
        restored = PipelineCheckpoint.from_payload(checkpoint.to_payload())
        assert restored == checkpoint

    def test_schema_version_enforced(self):
        payload = PipelineCheckpoint(
            boundary=1,
            resume_cycle=2,
            last_commit_cycle=1,
            max_fu_free=1,
            clean=True,
        ).to_payload()
        payload["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            PipelineCheckpoint.from_payload(payload)

    def test_checkpoints_describe_cuts(self):
        config = CoreConfig()
        trace = generate_trace(profile(), 800, seed=31)
        cuts = plan_shards(trace, 3)
        spans = list(zip([0] + cuts, cuts + [len(trace)]))
        pieces = [simulate_shard(trace, config, a, b) for a, b in spans]
        checkpoints = checkpoints_of(pieces, config)
        assert [c.boundary for c in checkpoints] == [p.stop for p in pieces[:-1]]


class TestShardProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        shards=st.integers(min_value=2, max_value=6),
        rob_size=st.sampled_from([32, 64, 128]),
    )
    @settings(max_examples=20, deadline=None)
    def test_sharding_is_invisible(self, seed, shards, rob_size):
        config = CoreConfig(rob_size=rob_size)
        trace = generate_trace(profile(), 600, seed=seed)
        whole = SuperscalarCore(config).run(trace)
        sharded = simulate_sharded(trace, config, shards=shards)
        assert_result_equal(sharded, whole)
