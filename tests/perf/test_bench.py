"""The benchmark harness: payload schema, baseline merge, regression gate."""

from __future__ import annotations

import json

import pytest

from repro.perf import bench


def run_payload(**overrides):
    payload = {
        "schema": bench.BENCH_SCHEMA_VERSION,
        "mode": "quick",
        "length": 12_000,
        "seed": bench.BENCH_SEED,
        "repeats": 2,
        "machine_score": 1_000_000.0,
        "benchmarks": {
            "fast_sim_vectorized": {
                "items_per_sec": 5e6,
                "seconds": 0.01,
                "items": 12_000,
                "normalized": 5.0,
            },
            "pack": {
                "items_per_sec": 1e6,
                "seconds": 0.01,
                "items": 12_000,
                "normalized": 1.0,
            },
        },
        "speedups": {"fast_sim": 5.0},
    }
    payload.update(overrides)
    return payload


def baseline_doc(run):
    return {
        "schema": bench.BENCH_SCHEMA_VERSION,
        "seed": run["seed"],
        "runs": {run["mode"]: {k: run[k] for k in run if k != "schema"}},
    }


def scaled(run, factor):
    copy = json.loads(json.dumps(run))
    for entry in copy["benchmarks"].values():
        entry["normalized"] *= factor
        entry["items_per_sec"] *= factor
    return copy


def test_compare_passes_on_identical_payloads():
    run = run_payload()
    assert bench.compare(run, baseline_doc(run)) == []


def test_compare_passes_within_threshold():
    run = run_payload()
    assert bench.compare(scaled(run, 0.90), baseline_doc(run)) == []


def test_compare_fails_beyond_threshold():
    run = run_payload()
    problems = bench.compare(scaled(run, 0.80), baseline_doc(run))
    assert len(problems) == 2
    assert all("below baseline" in p for p in problems)


def test_compare_threshold_is_adjustable():
    run = run_payload()
    assert bench.compare(
        scaled(run, 0.80), baseline_doc(run), threshold=0.25
    ) == []


def test_compare_reports_missing_benchmark():
    run = run_payload()
    current = run_payload()
    del current["benchmarks"]["pack"]
    problems = bench.compare(current, baseline_doc(run))
    assert problems and "not measured" in problems[0]


def test_compare_ignores_new_benchmarks():
    run = run_payload()
    current = run_payload()
    current["benchmarks"]["brand_new"] = {
        "items_per_sec": 1.0,
        "seconds": 1.0,
        "items": 1,
        "normalized": 0.001,
    }
    assert bench.compare(current, baseline_doc(run)) == []


def test_compare_requires_matching_mode_section():
    run = run_payload()
    doc = baseline_doc(run)
    full = dict(run, mode="full")
    problems = bench.compare(full, doc)
    assert problems and "no 'full' section" in problems[0]


def test_write_payload_merges_modes(tmp_path):
    path = tmp_path / "BENCH_simulator.json"
    quick = run_payload()
    full = run_payload(mode="full", length=60_000)
    bench.write_payload(full, str(path))
    bench.write_payload(quick, str(path))

    document = bench.load_baseline(str(path))
    assert sorted(document["runs"]) == ["full", "quick"]
    assert document["runs"]["full"]["length"] == 60_000
    assert document["runs"]["quick"]["length"] == 12_000
    # Rewriting one mode leaves the other intact.
    bench.write_payload(scaled(quick, 2.0), str(path))
    document = bench.load_baseline(str(path))
    assert document["runs"]["full"]["length"] == 60_000


def test_render_mentions_mode_and_speedups():
    text = bench.render(run_payload())
    assert "bench[quick]" in text
    assert "fast_sim" in text
    assert "5.00x" in text


@pytest.mark.slow
def test_run_benchmarks_smoke(monkeypatch):
    """One tiny real run: schema fields, normalization, speedup keys."""
    monkeypatch.setattr(bench, "QUICK_LENGTH", 800)
    monkeypatch.setattr(bench, "_MIN_SAMPLE_SECONDS", 0.001)
    monkeypatch.setattr(bench, "_MAX_REPEATS", 1)
    monkeypatch.setattr(bench, "_CYCLES", 1)
    payload = bench.run_benchmarks(quick=True, repeats=1)
    assert payload["mode"] == "quick"
    assert payload["machine_score"] > 0
    for entry in payload["benchmarks"].values():
        assert entry["normalized"] > 0
    assert set(payload["speedups"]) >= {
        "fast_sim",
        "replay_bimodal",
        "replay_gshare",
        "replay_local",
        "statistics",
        "end_to_end",
    }
