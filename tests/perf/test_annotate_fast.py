"""The packed oracle-annotation path must not change simulation results."""

from __future__ import annotations

import json

import pytest

from repro.lab.codec import result_to_payload
from repro.perf.annotate_fast import annotation_table, oracle_annotations
from repro.pipeline.annotate import OracleAnnotator
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace


def make(seed=21, length=1500):
    profile = WorkloadProfile(
        name="annot-test",
        mispredict_rate=0.08,
        il1_mpki=4.0,
        dl1_miss_rate=0.06,
        dl2_miss_rate=0.02,
    )
    return generate_trace(profile, length, seed)


def test_oracle_annotations_match_scalar_annotator():
    trace = make()
    config = CoreConfig()
    annotator = OracleAnnotator(config)
    fast = oracle_annotations(trace, config)
    assert len(fast) == len(trace)
    for seq, record in enumerate(trace.records):
        assert fast[seq] == annotator.annotate(record)


@pytest.mark.parametrize("seed", [21, 99])
def test_simulation_result_byte_identical(seed):
    """End to end: packed-oracle fast path vs the per-record annotator."""
    trace = make(seed)
    config = CoreConfig()
    via_fast = simulate(trace, config)
    via_scalar = simulate(trace, config, annotator=OracleAnnotator(config))
    fast_bytes = json.dumps(result_to_payload(via_fast), sort_keys=True)
    scalar_bytes = json.dumps(result_to_payload(via_scalar), sort_keys=True)
    assert fast_bytes == scalar_bytes


def test_annotation_table_covers_all_keys():
    table = annotation_table(CoreConfig())
    assert len(table) == 16
    mispredicted = [a for a in table if a.mispredicted]
    assert len(mispredicted) == 8
    with_icache = [a for a in table if a.icache_latency is not None]
    assert len(with_icache) == 8


def test_annotations_are_shared_instances():
    """One canonical object per key, not one fresh object per record."""
    trace = make(length=600)
    fast = oracle_annotations(trace, CoreConfig())
    assert len({id(a) for a in fast}) <= 16
