"""Detection-completeness tests for the whole-program rule family.

The fixture corpus under ``fixtures/raceapp`` seeds every
interprocedural rule at least once, with a clean twin next to each
violation; ``# seeded: <RULE>`` markers on the violating lines are the
ground truth. The corpus test asserts the pass finds exactly the
marked set — any miss is a detection regression, any extra is a false
positive.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.program import _NullCache, analyze_paths

FIXTURES = Path(__file__).parent / "fixtures"

_MARKER = re.compile(r"#\s*seeded:\s*([A-Z]{3,4}\d{3})")


def seeded_expectations():
    """(path-suffix, line, rule) for every marker in the corpus."""
    expected = set()
    for path in sorted(FIXTURES.rglob("*.py")):
        rel = path.relative_to(FIXTURES).as_posix()
        for line_no, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = _MARKER.search(line)
            if match:
                expected.add((rel, line_no, match.group(1)))
    return expected


@pytest.fixture(scope="module")
def corpus_report():
    return analyze_paths([str(FIXTURES)], cache=_NullCache())


def _found(report):
    found = set()
    for violation in report.violations:
        rel = violation.path
        marker = "fixtures/"
        if marker in rel:
            rel = rel.split(marker, 1)[1]
        found.add((rel, violation.line, violation.rule))
    return found


def test_corpus_parses_cleanly(corpus_report):
    assert corpus_report.parse_errors == []


def test_every_seeded_violation_is_detected(corpus_report):
    expected = seeded_expectations()
    assert expected, "fixture corpus has no seeded markers"
    missed = expected - _found(corpus_report)
    assert not missed, f"seeded violations not detected: {sorted(missed)}"


def test_no_unseeded_findings_on_corpus(corpus_report):
    """The clean twins (locks, to_thread, atomic writes, fixed seeds)
    must not produce findings — false positives fail here."""
    extra = _found(corpus_report) - seeded_expectations()
    assert not extra, f"unseeded findings (false positives): {sorted(extra)}"


@pytest.mark.parametrize(
    "rule",
    ["RACE001", "RACE002", "SRV002", "SRV003", "RES002", "DET001", "OBS003"],
)
def test_each_program_rule_is_exercised(corpus_report, rule):
    rules_seen = {v.rule for v in corpus_report.violations}
    assert rule in rules_seen, f"corpus never triggers {rule}"


def test_noqa_suppresses_program_findings(tmp_path):
    """A justified noqa on the flagged line silences the program rule."""
    pkg = tmp_path / "app" / "serve"
    pkg.mkdir(parents=True)
    (tmp_path / "app" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "svc.py").write_text(
        "import asyncio\n"
        "\n"
        "\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self.n = 0\n"
        "\n"
        "    async def bump(self):\n"
        "        v = self.n\n"
        "        await asyncio.sleep(0)\n"
        "        self.n = v + 1  # repro: noqa[RACE001]\n",
        encoding="utf-8",
    )
    report = analyze_paths([str(tmp_path)], cache=_NullCache())
    assert [v.rule for v in report.violations] == []
    assert report.suppressed >= 1
