"""Baseline gating and SARIF export."""

from __future__ import annotations

import json

from repro.analysis.engine import LintViolation, rule_catalogue
from repro.analysis.program import (
    ProgramReport,
    apply_baseline,
    load_baseline,
    report_fingerprints,
    to_sarif,
    violation_fingerprint,
    write_baseline,
)


def _violation(rule="RACE001", path="src/a.py", line=10, message="boom 10"):
    return LintViolation(
        rule=rule, path=path, line=line, col=1, message=message
    )


def test_fingerprint_ignores_line_churn():
    """Moving a finding down 40 lines must not read as a new finding."""
    before = _violation(line=10, message="write on line 10 races")
    after = _violation(line=50, message="write on line 50 races")
    assert violation_fingerprint(before, 0) == violation_fingerprint(after, 0)


def test_fingerprint_distinguishes_new_instances():
    first = _violation(message="races")
    fingerprints = report_fingerprints([first, _violation(message="races")])
    assert len(set(fingerprints)) == 2


def test_baseline_round_trip_and_gating(tmp_path):
    known = _violation(rule="RES002", message="old finding")
    report = ProgramReport(violations=[known], files_checked=1)
    baseline_path = tmp_path / "baseline.json"
    assert write_baseline(baseline_path, report) == 1
    baseline = load_baseline(baseline_path)
    assert baseline is not None

    fresh = _violation(rule="RACE001", path="src/b.py", message="new finding")
    rerun = ProgramReport(violations=[known, fresh], files_checked=1)
    gated = apply_baseline(rerun, baseline)
    assert [v.rule for v in gated.violations] == ["RACE001"]
    assert gated.baseline_suppressed == 1
    assert not gated.ok  # the new finding still fails the run


def test_baseline_missing_or_corrupt_loads_as_none(tmp_path):
    assert load_baseline(tmp_path / "nope.json") is None
    bad = tmp_path / "bad.json"
    bad.write_text("{ torn")
    assert load_baseline(bad) is None
    wrong_schema = tmp_path / "schema.json"
    wrong_schema.write_text(json.dumps({"schema": 999, "fingerprints": []}))
    assert load_baseline(wrong_schema) is None


def test_sarif_document_shape():
    report = ProgramReport(
        violations=[
            _violation(rule="RACE001", message="races"),
            _violation(rule="DET001", path="src/c.py", message="tainted"),
        ],
        files_checked=2,
    )
    report.parse_errors.append(("src/broken.py", "invalid syntax"))
    doc = to_sarif(report, rule_catalogue())

    assert doc["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in doc["$schema"]
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert {"DET001", "RACE001"} <= set(rule_ids)
    for rule in driver["rules"]:
        assert rule["fullDescription"]["text"]

    results = run["results"]
    assert len(results) == 3  # two findings + one parse error
    for result in results:
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] >= 1
        if result["ruleId"] != "PARSE":
            assert result["ruleIndex"] == rule_ids.index(result["ruleId"])
    levels = {r["ruleId"]: r["level"] for r in results}
    assert levels["PARSE"] == "error"
    assert levels["RACE001"] == "warning"


def test_sarif_round_trips_through_json():
    report = ProgramReport(violations=[_violation()], files_checked=1)
    doc = to_sarif(report, rule_catalogue())
    assert json.loads(json.dumps(doc)) == doc
