"""Per-rule positive and negative cases for the default pack."""

from __future__ import annotations

from repro.analysis.engine import lint_source


def rules_hit(source: str, path: str) -> list:
    return [v.rule for v in lint_source(source, path).violations]


# -- RNG001 ----------------------------------------------------------------

def test_rng_flags_stdlib_random_import():
    assert "RNG001" in rules_hit("import random\n", "src/repro/trace/x.py")


def test_rng_flags_from_random_import():
    assert "RNG001" in rules_hit(
        "from random import shuffle\n", "src/repro/trace/x.py"
    )


def test_rng_flags_numpy_random_attribute():
    source = "import numpy as np\ny = np.random.rand(3)\n"
    assert "RNG001" in rules_hit(source, "src/repro/workloads/x.py")


def test_rng_exempts_the_blessed_module():
    assert "RNG001" not in rules_hit("import random\n", "src/repro/util/rng.py")


def test_rng_allows_splitmix():
    source = "from repro.util.rng import SplitMix\nr = SplitMix(7)\n"
    assert rules_hit(source, "src/repro/trace/x.py") == []


# -- CLK001 ----------------------------------------------------------------

def test_clk_flags_time_time_in_pipeline():
    source = "import time\nt = time.time()\n"
    assert "CLK001" in rules_hit(source, "src/repro/pipeline/x.py")


def test_clk_flags_perf_counter_in_interval():
    source = "import time\nt = time.perf_counter()\n"
    assert "CLK001" in rules_hit(source, "src/repro/interval/x.py")


def test_clk_flags_datetime_now_in_frontend():
    source = "import datetime\nt = datetime.datetime.now()\n"
    assert "CLK001" in rules_hit(source, "src/repro/frontend/x.py")


def test_clk_flags_from_import():
    source = "from time import perf_counter\n"
    assert "CLK001" in rules_hit(source, "src/repro/pipeline/x.py")


def test_clk_ignores_wall_clock_outside_sim_packages():
    source = "import time\nt = time.time()\n"
    assert rules_hit(source, "src/repro/lab/x.py") == []


def test_clk_allows_the_timing_doorway():
    source = "from repro.util.timing import Stopwatch\nw = Stopwatch()\n"
    assert rules_hit(source, "src/repro/interval/x.py") == []


# -- FLT001 ----------------------------------------------------------------

def test_flt_flags_float_literal_equality():
    assert "FLT001" in rules_hit(
        "ok = x == 0.5\n", "src/repro/interval/x.py"
    )


def test_flt_flags_float_cast_inequality():
    assert "FLT001" in rules_hit(
        "bad = float(x) != y\n", "src/repro/interval/x.py"
    )


def test_flt_flags_division_result_equality():
    assert "FLT001" in rules_hit(
        "bad = (a / b) == c\n", "src/repro/interval/x.py"
    )


def test_flt_allows_int_equality_and_ordering():
    source = "a = x == 0\nb = y <= 0.5\n"
    assert rules_hit(source, "src/repro/interval/x.py") == []


def test_flt_scoped_to_interval_only():
    assert rules_hit("ok = x == 0.5\n", "src/repro/pipeline/x.py") == []


# -- MUT001 ----------------------------------------------------------------

def test_mut_flags_list_default():
    assert "MUT001" in rules_hit("def f(a, b=[]):\n    pass\n", "x.py")


def test_mut_flags_dict_call_default():
    assert "MUT001" in rules_hit("def f(b=dict()):\n    pass\n", "x.py")


def test_mut_flags_kwonly_set_default():
    assert "MUT001" in rules_hit("def f(*, b={1}):\n    pass\n", "x.py")


def test_mut_allows_none_and_tuples():
    assert rules_hit("def f(a=None, b=(1, 2)):\n    pass\n", "x.py") == []


# -- ORD001 ----------------------------------------------------------------

def test_ord_flags_for_over_set_call():
    source = "def f(xs):\n    for x in set(xs):\n        pass\n"
    assert "ORD001" in rules_hit(source, "src/repro/pipeline/x.py")


def test_ord_flags_iteration_over_local_set_variable():
    source = (
        "def f():\n"
        "    pending = set()\n"
        "    for x in pending:\n"
        "        pass\n"
    )
    assert "ORD001" in rules_hit(source, "src/repro/interval/x.py")


def test_ord_flags_comprehension_over_set_literal():
    source = "def f():\n    return [x for x in {1, 2, 3}]\n"
    assert "ORD001" in rules_hit(source, "src/repro/pipeline/x.py")


def test_ord_allows_sorted_sets_and_membership():
    source = (
        "def f(xs):\n"
        "    seen = set()\n"
        "    for x in sorted(set(xs)):\n"
        "        if x in seen:\n"
        "            pass\n"
    )
    assert rules_hit(source, "src/repro/pipeline/x.py") == []


def test_ord_not_enforced_outside_hot_packages():
    source = "def f(xs):\n    for x in set(xs):\n        pass\n"
    assert rules_hit(source, "src/repro/harness/x.py") == []


# -- CFG001 ----------------------------------------------------------------

def test_cfg_flags_unfrozen_config_dataclass():
    source = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class SweepConfig:\n"
        "    x: int = 0\n"
    )
    assert "CFG001" in rules_hit(source, "x.py")


def test_cfg_allows_frozen_config():
    source = (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class SweepConfig:\n"
        "    x: int = 0\n"
    )
    assert rules_hit(source, "x.py") == []


def test_cfg_ignores_non_dataclass_and_non_config_names():
    source = (
        "from dataclasses import dataclass\n"
        "class PlainConfig:\n"
        "    pass\n"
        "@dataclass\n"
        "class Result:\n"
        "    x: int = 0\n"
    )
    assert rules_hit(source, "x.py") == []


# -- EXC001 / PRT001 -------------------------------------------------------

def test_exc_flags_bare_except_only():
    source = (
        "try:\n    pass\nexcept:\n    pass\n"
        "try:\n    pass\nexcept ValueError:\n    pass\n"
    )
    assert rules_hit(source, "x.py") == ["EXC001"]


def test_prt_flags_print_in_library():
    assert "PRT001" in rules_hit("print('hi')\n", "src/repro/lab/x.py")


def test_prt_exempts_cli_and_main():
    assert rules_hit("print('hi')\n", "src/repro/cli.py") == []
    assert rules_hit("print('hi')\n", "src/repro/__main__.py") == []


# -- OBS001 ----------------------------------------------------------------

def test_obs_flags_perf_counter_in_lab():
    source = "import time\nt = time.perf_counter()\n"
    assert "OBS001" in rules_hit(source, "src/repro/lab/x.py")


def test_obs_flags_monotonic_from_import_in_harness():
    source = "from time import monotonic\n"
    assert "OBS001" in rules_hit(source, "src/repro/harness/x.py")


def test_obs_allows_time_time_and_sleep_in_lab():
    source = "import time\nt = time.time()\ntime.sleep(0.1)\n"
    assert rules_hit(source, "src/repro/lab/x.py") == []


def test_obs_allows_the_blessed_doorways():
    source = "from repro.util.timing import Stopwatch\nw = Stopwatch()\n"
    assert rules_hit(source, "src/repro/lab/x.py") == []


def test_obs_scoped_to_lab_and_harness():
    source = "import time\nt = time.perf_counter()\n"
    assert "OBS001" not in rules_hit(source, "src/repro/trace/x.py")


# -- OBS002 ----------------------------------------------------------------

def test_obs2_flags_name_without_unit_suffix():
    source = "m.counter('core.penalty')\n"
    assert "OBS002" in rules_hit(source, "src/repro/pipeline/x.py")


def test_obs2_flags_name_without_subsystem():
    source = "m.histogram('penalty_cycles')\n"
    assert "OBS002" in rules_hit(source, "src/repro/pipeline/x.py")


def test_obs2_allows_conventional_names():
    source = (
        "m.counter('core.cycles_total')\n"
        "m.gauge('core.rob_occupancy_peak')\n"
        "m.histogram('interval.length_instructions')\n"
    )
    assert rules_hit(source, "src/repro/pipeline/x.py") == []


def test_obs2_ignores_dynamic_names():
    source = "m.counter(name)\nm.counter(f'core.{x}_total')\n"
    assert rules_hit(source, "src/repro/pipeline/x.py") == []


# -- PERF001 ---------------------------------------------------------------

def test_perf_flags_loop_over_trace_records():
    source = "def f(trace):\n    for r in trace.records:\n        pass\n"
    assert "PERF001" in rules_hit(source, "src/repro/perf/x.py")


def test_perf_flags_loop_over_aliased_records():
    source = (
        "def f(trace):\n"
        "    records = trace.records\n"
        "    for r in records:\n"
        "        pass\n"
    )
    assert "PERF001" in rules_hit(source, "src/repro/perf/x.py")


def test_perf_flags_enumerate_and_comprehension():
    looped = (
        "def f(trace):\n"
        "    for i, r in enumerate(trace.records):\n"
        "        pass\n"
    )
    assert "PERF001" in rules_hit(looped, "src/repro/perf/x.py")
    comp = "def f(trace):\n    return [r.pc for r in trace.records]\n"
    assert "PERF001" in rules_hit(comp, "src/repro/perf/x.py")


def test_perf_only_scoped_to_perf_package():
    source = "def f(trace):\n    for r in trace.records:\n        pass\n"
    assert "PERF001" not in rules_hit(source, "src/repro/interval/x.py")
    assert "PERF001" not in rules_hit(source, "src/repro/trace/x.py")


def test_perf_allows_columnar_code():
    source = (
        "def f(packed):\n"
        "    for seq in packed.dep_indptr.tolist():\n"
        "        pass\n"
    )
    assert rules_hit(source, "src/repro/perf/x.py") == []


def test_perf_noqa_escape_hatch():
    source = (
        "def f(trace):\n"
        "    for r in trace.records:  # repro: noqa[PERF001]\n"
        "        pass\n"
    )
    assert "PERF001" not in rules_hit(source, "src/repro/perf/x.py")


def test_perf_flags_loop_over_unpack_result():
    source = (
        "def f(packed):\n"
        "    for r in packed.unpack():\n"
        "        pass\n"
    )
    assert "PERF001" in rules_hit(source, "src/repro/perf/batchcore.py")


def test_perf_flags_aliased_unpack_result():
    source = (
        "def f(packed):\n"
        "    trace = packed.unpack()\n"
        "    return [r.pc for r in trace]\n"
    )
    assert "PERF001" in rules_hit(source, "src/repro/perf/checkpoint.py")


def test_perf_flags_enumerate_of_unpack():
    source = (
        "def f(packed):\n"
        "    for i, r in enumerate(packed.unpack()):\n"
        "        pass\n"
    )
    assert "PERF001" in rules_hit(source, "src/repro/perf/x.py")


def test_perf_allows_unpack_outside_loops():
    # Calling unpack is fine — only iterating its records is not.
    source = "def f(packed):\n    return packed.unpack()\n"
    assert rules_hit(source, "src/repro/perf/x.py") == []


# -- RES001 ----------------------------------------------------------------

def test_res_flags_bare_write_open_in_lab():
    source = 'with open("manifest.json", "w") as h:\n    h.write("{}")\n'
    assert "RES001" in rules_hit(source, "src/repro/lab/x.py")


def test_res_flags_append_mode_and_path_open():
    assert "RES001" in rules_hit(
        'h = open("log.jsonl", mode="a")\n', "src/repro/resilience/x.py"
    )
    assert "RES001" in rules_hit(
        'h = path.open("wb")\n', "src/repro/lab/x.py"
    )
    assert "RES001" in rules_hit(
        'import os\nh = os.fdopen(fd, "w")\n', "src/repro/lab/x.py"
    )


def test_res_flags_dynamic_mode():
    assert "RES001" in rules_hit(
        "h = open(p, mode)\n", "src/repro/lab/x.py"
    )


def test_res_allows_reads():
    source = (
        'with open("manifest.json", "r") as h:\n    h.read()\n'
        'g = open("other.json")\n'
        'f = path.open()\n'
    )
    assert "RES001" not in rules_hit(source, "src/repro/lab/x.py")


def test_res_scoped_to_lab_and_resilience():
    source = 'h = open("out.txt", "w")\n'
    assert "RES001" not in rules_hit(source, "src/repro/harness/x.py")
    assert "RES001" not in rules_hit(source, "src/repro/cli.py")


def test_res_exempts_the_atomic_helper_module():
    source = 'h = open("state.json", "w")\n'
    assert "RES001" not in rules_hit(
        source, "src/repro/resilience/atomic.py"
    )


def test_res_noqa_escape_hatch():
    source = 'h = open("scratch.txt", "w")  # repro: noqa[RES001]\n'
    assert "RES001" not in rules_hit(source, "src/repro/lab/x.py")


# ---------------------------------------------------------------- SRV001


def test_srv_flags_sleep_and_subprocess_in_coroutine():
    source = (
        "import time, subprocess\n"
        "async def handler(req):\n"
        "    time.sleep(0.1)\n"
        "    subprocess.run(['ls'])\n"
    )
    hits = rules_hit(source, "src/repro/serve/service.py")
    assert hits.count("SRV001") == 2


def test_srv_flags_sync_store_and_file_io():
    source = (
        "async def handler(store, cache, path, key):\n"
        "    a = store.get(key)\n"
        "    b = cache.lookup(key)\n"
        "    c = open('x.json').read()\n"
        "    d = path.read_text()\n"
    )
    hits = rules_hit(source, "src/repro/serve/service.py")
    assert hits.count("SRV001") == 4


def test_srv_ignores_sync_functions_and_nested_defs():
    source = (
        "import time\n"
        "def blocking_helper(store, key):\n"
        "    time.sleep(0.1)\n"
        "    return store.get(key)\n"
        "async def handler(store, key):\n"
        "    def inner():\n"
        "        return store.get(key)\n"
        "    return inner\n"
    )
    assert "SRV001" not in rules_hit(source, "src/repro/serve/service.py")


def test_srv_allows_awaited_to_thread_wrappers():
    source = (
        "import asyncio\n"
        "async def handler(store, key):\n"
        "    return await asyncio.to_thread(store.get, key)\n"
    )
    assert "SRV001" not in rules_hit(source, "src/repro/serve/service.py")


def test_srv_scoped_to_serve():
    source = (
        "import time\n"
        "async def handler():\n"
        "    time.sleep(0.1)\n"
    )
    assert "SRV001" not in rules_hit(source, "src/repro/lab/pool.py")
    assert "SRV001" in rules_hit(source, "src/repro/serve/shards.py")


def test_srv_noqa_escape_hatch():
    source = (
        "async def handler(cache, key):\n"
        "    return cache.get(key)  # repro: noqa[SRV001]  in-memory\n"
    )
    assert "SRV001" not in rules_hit(source, "src/repro/serve/service.py")


# ---------------------------------------------------------------- SRV003


def test_srv3_flags_unbounded_future_awaits():
    source = (
        "import asyncio\n"
        "async def run(future, inflight, key):\n"
        "    a = await asyncio.wrap_future(future)\n"
        "    b = await asyncio.shield(inflight[key])\n"
        "    c = await future\n"
    )
    hits = rules_hit(source, "src/repro/serve/service.py")
    assert hits.count("SRV003") == 3


def test_srv3_allows_wait_for_bounded_awaits():
    source = (
        "import asyncio\n"
        "async def run(future, existing, remaining_s):\n"
        "    a = await asyncio.wait_for(\n"
        "        asyncio.wrap_future(future), timeout=remaining_s\n"
        "    )\n"
        "    b = await asyncio.wait_for(\n"
        "        asyncio.shield(existing), timeout=None\n"
        "    )\n"
        "    c = await asyncio.to_thread(len, [])\n"
    )
    assert "SRV003" not in rules_hit(source, "src/repro/serve/service.py")


def test_srv3_ignores_non_future_names():
    source = (
        "async def run(barrier, response):\n"
        "    await barrier\n"
        "    return await response\n"
    )
    assert "SRV003" not in rules_hit(source, "src/repro/serve/service.py")


def test_srv3_scoped_to_serve():
    source = (
        "import asyncio\n"
        "async def run(future):\n"
        "    return await asyncio.wrap_future(future)\n"
    )
    assert "SRV003" not in rules_hit(source, "src/repro/lab/pool.py")
    assert "SRV003" in rules_hit(source, "src/repro/serve/shards.py")


def test_srv3_noqa_escape_hatch():
    source = (
        "import asyncio\n"
        "async def run(future):\n"
        "    return await asyncio.wrap_future(future)"
        "  # repro: noqa[SRV003]  teardown\n"
    )
    assert "SRV003" not in rules_hit(source, "src/repro/serve/service.py")
