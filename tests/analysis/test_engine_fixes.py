"""Regression + property tests for the engine fixes in the v2 pass.

Covers the three engine-level fixes (multi-line ``noqa`` placement,
repo-relative reported paths, scope matching against file stems) and
property-tests the suppression comment syntax round-trip.
"""

from __future__ import annotations

import ast
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.engine import (
    FileContext,
    LintViolation,
    Rule,
    _file_suppressions,
    _line_suppresses,
    discover_files,
    lint_source,
    reported_path,
    suppresses,
)


class _FlagEveryCall(Rule):
    id = "TST001"
    name = "test-flag-calls"
    description = "flags every call expression (test-only)"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield self.violation(ctx, node, "call flagged")


# -- satellite: multi-line noqa placement ------------------------------


def test_noqa_on_last_line_of_multiline_statement_suppresses():
    source = (
        "value = compute(\n"
        "    1,\n"
        "    2,\n"
        ")  # repro: noqa[TST001]\n"
    )
    report = lint_source(source, "mod.py", rules=[_FlagEveryCall()])
    assert report.violations == []
    assert report.suppressed == 1


def test_noqa_on_first_line_still_suppresses():
    source = (
        "value = compute(  # repro: noqa[TST001]\n"
        "    1,\n"
        ")\n"
    )
    report = lint_source(source, "mod.py", rules=[_FlagEveryCall()])
    assert report.violations == []
    assert report.suppressed == 1


def test_noqa_outside_statement_range_does_not_suppress():
    source = (
        "# repro: noqa[TST001]\n"
        "value = compute(1)\n"
    )
    report = lint_source(source, "mod.py", rules=[_FlagEveryCall()])
    assert len(report.violations) == 1


def test_end_line_clamped_to_line():
    violation = LintViolation(
        rule="X", path="p", line=9, col=1, message="m", end_line=3
    )
    assert violation.end_line == 9


# -- satellite: repo-relative POSIX reported paths ---------------------


def test_discover_files_reports_relative_posix(tmp_path, monkeypatch):
    sub = tmp_path / "pkg" / "inner"
    sub.mkdir(parents=True)
    (sub / "mod.py").write_text("x = 1\n")
    monkeypatch.chdir(tmp_path)
    found = discover_files(["pkg"])
    assert [rep for _, rep in found] == ["pkg/inner/mod.py"]


def test_reported_path_outside_cwd_keeps_posix_form(tmp_path, monkeypatch):
    inside = tmp_path / "in"
    inside.mkdir()
    monkeypatch.chdir(inside)
    outside = tmp_path / "other" / "mod.py"
    assert reported_path(outside) == outside.as_posix()


# -- satellite: scope matching against the file stem -------------------


class _ServeScoped(Rule):
    id = "TST002"
    name = "test-serve-scoped"
    description = "scoped to serve (test-only)"
    scope = ("serve",)

    def check(self, ctx):
        return iter(())


def _ctx(path):
    return FileContext(path=path, tree=ast.parse(""), source="", lines=())


def test_scope_matches_file_stem_named_like_directory():
    """A rule scoped to 'serve' must match serve.py itself, not only
    files under a serve/ directory (the parts()[:-1] regression)."""
    rule = _ServeScoped()
    assert rule.applies_to(_ctx("serve.py"))
    assert rule.applies_to(_ctx("src/repro/serve.py"))


def test_scope_still_matches_directories_and_rejects_others():
    rule = _ServeScoped()
    assert rule.applies_to(_ctx("src/repro/serve/service.py"))
    assert not rule.applies_to(_ctx("src/repro/lab/jobs.py"))
    assert not rule.applies_to(_ctx("src/repro/observe.py"))


# -- suppression syntax property tests ---------------------------------

_rule_ids = st.from_regex(r"[A-Z]{3}[0-9]{3}", fullmatch=True)


@settings(max_examples=200, deadline=None)
@given(
    rules=st.lists(_rule_ids, min_size=1, max_size=5, unique=True).filter(
        lambda ids: "ZZZ999" not in ids
    )
)
def test_named_noqa_round_trips(rules):
    line = f"x = 1  # repro: noqa[{','.join(rules)}]"
    for rule_id in rules:
        assert _line_suppresses(line, rule_id)
    assert not _line_suppresses(line, "ZZZ999")


@settings(max_examples=50, deadline=None)
@given(padding=st.text(alphabet=" \t", max_size=4))
def test_blanket_noqa_round_trips(padding):
    line = f"x = 1  #{padding}repro:{padding}noqa"
    assert _line_suppresses(line, "ANY000")


@settings(max_examples=200, deadline=None)
@given(rules=st.lists(_rule_ids, min_size=1, max_size=5, unique=True))
def test_noqa_file_round_trips(rules):
    lines = ("import x", f"# repro: noqa-file[{','.join(rules)}]")
    suppressed = _file_suppressions(lines)
    assert suppressed == set(rules)
    violation = LintViolation(
        rule=rules[0], path="p.py", line=1, col=1, message="m"
    )
    assert suppresses(lines, suppressed, violation)


def test_blanket_noqa_file_suppresses_everything():
    lines = ("# repro: noqa-file",)
    assert _file_suppressions(lines) == set()
    violation = LintViolation(
        rule="ANY000", path="p.py", line=1, col=1, message="m"
    )
    assert suppresses(lines, set(), violation)


@settings(max_examples=100, deadline=None)
@given(rule_id=_rule_ids)
def test_unrelated_comments_never_suppress(rule_id):
    assert not _line_suppresses("x = 1  # plain comment", rule_id)
    assert _file_suppressions(("x = 1  # nothing here",)) is None
