"""The merged tree must satisfy its own lint pack (acceptance gate)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import lint_paths

SRC = Path(__file__).resolve().parents[2] / "src"


def test_repro_lint_src_is_clean():
    report = lint_paths([str(SRC)])
    assert report.files_checked > 50
    assert not report.parse_errors
    assert report.ok, "\n" + report.render_human()


def test_whole_program_pass_on_src_is_clean():
    from repro.analysis.program import _NullCache, analyze_paths

    report = analyze_paths([str(SRC)], cache=_NullCache())
    assert report.files_checked > 50
    assert not report.parse_errors
    assert report.ok, "\n" + report.render_human()
