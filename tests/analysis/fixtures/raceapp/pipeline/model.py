"""Simulation core: inputs must be deterministic (DET001 territory)."""

from raceapp.helpers import fixed_seed, now_seed


def step(state, seed):
    return (state * 1103515245 + seed) % (1 << 31)


def reset():
    return step(0, fixed_seed())


def reset_jittered():
    return step(0, now_seed())  # seeded: DET001
