"""Harness outside the sim packages: taint must not cross into them."""

from raceapp.helpers import fixed_seed, now_seed
from raceapp.pipeline import model


def run_deterministic(state):
    seed = fixed_seed()
    return model.step(state, seed)


def run_jittered(state):
    seed = now_seed()
    return model.step(state, seed)  # seeded: DET001


def run_jittered_directly(state):
    return model.step(state, now_seed())  # seeded: DET001
