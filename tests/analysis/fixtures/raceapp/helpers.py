"""Sync helpers: SRV002 blocking seeds and DET001 taint sources."""

import time


def slow_save(payload):
    """Blocking sleep two frames below the serve coroutine."""
    time.sleep(0.5)
    return payload


def save_indirect(payload):
    """One extra frame so SRV002 must walk a chain, not one edge."""
    return slow_save(payload)


def now_seed():
    """Returns wall-clock entropy — the DET001 taint source."""
    return int(time.time() * 1000)


def relabel(seed):
    """Taint flows through an intermediate return unchanged."""
    value = seed
    return value


def fixed_seed():
    """Deterministic counterpart: must NOT taint anything."""
    return 0xC0FFEE
