"""Lab layer: run-state writes must route through resilience.atomic."""

from raceapp.export import export_deep, export_results
from raceapp.resilience.atomic import atomic_write_json


def record_run(path, payload):
    export_results(path, payload)  # seeded: RES002


def record_run_deep(path, payload):
    export_deep(path, payload)  # seeded: RES002


def record_run_safely(path, payload):
    atomic_write_json(path, payload)
