"""Span bookkeeping with a seeded OBS003 violation per method kind.

Each orphaned recording has a correctly-parented twin next to it, so
the corpus exercises both detection and false-positive behaviour for
the trace-context propagation rule.
"""


class SpanSink:
    """Stand-in for the obs SpanCollector's recording surface."""

    def start(self, name, *, trace_id, parent_id=None, **args):
        return (name, trace_id, parent_id, args)

    def add_complete(
        self, name, *, trace_id, parent_id=None, start_ns=0, end_ns=0, **args
    ):
        return (name, trace_id, parent_id, start_ns, end_ns, args)


def record_orphan(sink, trace_id):
    return sink.start("lookup", trace_id=trace_id)  # seeded: OBS003


def record_child(sink, trace_id, parent):
    return sink.start("lookup", trace_id=trace_id, parent_id=parent)


def backfill_orphan(sink, trace_id, t0, t1):
    return sink.add_complete(  # seeded: OBS003
        "wait", trace_id=trace_id, start_ns=t0, end_ns=t1
    )


def backfill_child(sink, trace_id, parent, t0, t1):
    return sink.add_complete(
        "wait", trace_id=trace_id, parent_id=parent, start_ns=t0, end_ns=t1
    )


def backfill_dynamic(sink, trace_id, extra):
    # A **splat may carry parent_id; the rule must not flag it.
    return sink.add_complete("wait", trace_id=trace_id, **extra)


def restart_pool(executor):
    # Lifecycle `.start()` (no trace_id) is out of scope entirely.
    return executor.start()
