"""Asyncio service with seeded RACE001/RACE002/SRV002 violations.

Each racy method has a clean twin right next to it so the tests cover
false-positive behaviour too, not just detection.
"""

import asyncio

from raceapp.helpers import save_indirect


class Counter:
    def __init__(self):
        self.count = 0
        self.cache = {}
        self._lock = asyncio.Lock()
        self._tasks = set()

    async def bump(self):
        value = self.count
        await asyncio.sleep(0)
        self.count = value + 1  # seeded: RACE001
        return self.count

    async def locked_bump(self):
        async with self._lock:
            value = self.count
            await asyncio.sleep(0)
            self.count = value + 1
        return self.count

    async def claimed_bump(self):
        # Claim-before-await: the write happens synchronously, so the
        # window never spans a suspension point.
        value = self.count
        self.count = value + 1
        await asyncio.sleep(0)
        return self.count

    async def memoize(self, key):
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        built = await self._build(key)
        self.cache[key] = built  # seeded: RACE001
        return built

    async def _build(self, key):
        await asyncio.sleep(0)
        return [key]

    async def kickoff(self):
        asyncio.create_task(self._build("bg"))  # seeded: RACE002
        return None

    async def kickoff_tracked(self):
        task = asyncio.create_task(self._build("bg"))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def kickoff_awaited(self):
        task = asyncio.create_task(self._build("bg"))
        return await task

    async def persist(self, payload):
        return save_indirect(payload)  # seeded: SRV002

    async def persist_offloaded(self, payload):
        return await asyncio.to_thread(save_indirect, payload)
