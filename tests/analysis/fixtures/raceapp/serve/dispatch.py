"""Shard dispatch with seeded SRV003 violations (unbounded awaits).

Each unbounded pool-future await has a ``wait_for``-bounded twin
right next to it so the tests cover false-positive behaviour too,
not just detection.
"""

import asyncio


class Dispatcher:
    def __init__(self):
        self.inflight = {}

    async def run_raw(self, pool_future):
        return await asyncio.wrap_future(pool_future)  # seeded: SRV003

    async def run_bounded(self, pool_future, remaining_s):
        return await asyncio.wait_for(
            asyncio.wrap_future(pool_future), timeout=remaining_s
        )

    async def follow_raw(self, key):
        existing = self.inflight[key]
        return await asyncio.shield(existing)  # seeded: SRV003

    async def follow_bounded(self, key, remaining_s):
        existing = self.inflight[key]
        return await asyncio.wait_for(
            asyncio.shield(existing), timeout=remaining_s
        )

    async def join_raw(self, leader_future):
        return await leader_future  # seeded: SRV003

    async def join_justified(self, leader_future):
        # Teardown-only path: the producer is resolved above us.
        return await leader_future  # repro: noqa[SRV003]

    async def join_event(self, barrier):
        # Not future-named and not a pool wrapper: out of scope.
        return await barrier
