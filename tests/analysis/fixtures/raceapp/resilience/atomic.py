"""The blessed atomic-write helper: exempt from RES001/RES002."""

import json
import os
import tempfile


def atomic_write_json(path, payload):
    directory = os.path.dirname(str(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    with os.fdopen(fd, "w") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
