"""Exporter outside lab/: raw writes legal here, but not reachable
from the durable packages (RES002 flags the boundary call, not us)."""

import json


def export_results(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle)


def export_deep(path, payload):
    """One more frame so RES002 must follow a chain."""
    export_results(path, payload)
