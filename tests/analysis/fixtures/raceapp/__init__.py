"""Seeded-violation corpus for the whole-program analysis tests.

Every deliberate violation line carries a trailing ``# seeded: RULE``
marker; the detection-completeness test asserts the program pass finds
exactly the marked set — nothing missed, nothing extra.
"""
