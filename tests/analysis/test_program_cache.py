"""Content-addressed analysis cache: hits, misses, invalidation."""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.analysis.engine import all_rules
from repro.analysis.iprules import all_program_rules
from repro.analysis.program import (
    AnalysisCache,
    analyze_paths,
    pack_fingerprint,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _renderings(report):
    return [v.render() for v in report.violations]


def test_warm_run_hits_for_every_file_and_agrees(tmp_path):
    cache = AnalysisCache(root=tmp_path / "analysis")
    cold = analyze_paths([str(FIXTURES)], cache=cache)
    assert cold.cache_misses == cold.files_checked
    assert cold.cache_hits == 0

    warm_cache = AnalysisCache(root=tmp_path / "analysis")
    warm = analyze_paths([str(FIXTURES)], cache=warm_cache)
    assert warm.cache_hits == warm.files_checked
    assert warm.cache_misses == 0
    assert _renderings(warm) == _renderings(cold)
    assert warm.suppressed == cold.suppressed


def test_source_edit_misses_only_the_edited_file(tmp_path):
    tree = tmp_path / "app"
    tree.mkdir()
    (tree / "a.py").write_text("def f():\n    return 1\n")
    (tree / "b.py").write_text("def g():\n    return 2\n")
    cache_root = tmp_path / "cache"

    analyze_paths([str(tree)], cache=AnalysisCache(root=cache_root))
    (tree / "a.py").write_text("def f():\n    return 3\n")
    cache = AnalysisCache(root=cache_root)
    report = analyze_paths([str(tree)], cache=cache)
    assert report.cache_misses == 1
    assert report.cache_hits == 1


def test_pack_fingerprint_changes_invalidate(tmp_path):
    tree = tmp_path / "app"
    tree.mkdir()
    (tree / "a.py").write_text("def f():\n    return 1\n")
    cache_root = tmp_path / "cache"

    analyze_paths([str(tree)], cache=AnalysisCache(root=cache_root))
    # Same source, same cache dir, but a different pack fingerprint
    # must miss: simulate a rule change by dropping one rule.
    cache = AnalysisCache(root=cache_root)
    report = analyze_paths(
        [str(tree)], rules=all_rules()[:-1], cache=cache
    )
    assert report.cache_misses == 1
    assert report.cache_hits == 0


def test_pack_fingerprint_is_stable_and_rule_sensitive():
    rules, program_rules = all_rules(), all_program_rules()
    assert pack_fingerprint(rules, program_rules) == pack_fingerprint(
        rules, program_rules
    )
    assert pack_fingerprint(rules[:-1], program_rules) != pack_fingerprint(
        rules, program_rules
    )


def test_torn_cache_entry_is_treated_as_miss(tmp_path):
    tree = tmp_path / "app"
    tree.mkdir()
    (tree / "a.py").write_text("def f():\n    return 1\n")
    cache_root = tmp_path / "cache"
    analyze_paths([str(tree)], cache=AnalysisCache(root=cache_root))
    for entry in cache_root.rglob("*.json"):
        entry.write_text("{ torn")
    cache = AnalysisCache(root=cache_root)
    report = analyze_paths([str(tree)], cache=cache)
    assert report.cache_misses == 1
    assert report.parse_errors == []


@pytest.mark.slow
def test_warm_cache_is_5x_faster_on_src():
    """Acceptance criterion: warm ``repro lint src/`` ≥ 5x cold."""
    import shutil
    import tempfile

    tmp = Path(tempfile.mkdtemp())
    try:
        start = time.perf_counter()
        analyze_paths(["src"], cache=AnalysisCache(root=tmp / "analysis"))
        cold = time.perf_counter() - start

        start = time.perf_counter()
        analyze_paths(["src"], cache=AnalysisCache(root=tmp / "analysis"))
        warm = time.perf_counter() - start
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    assert cold / warm >= 5.0, f"speedup only {cold / warm:.1f}x"
