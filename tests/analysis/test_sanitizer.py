"""Runtime sanitizer: hooks, injected bugs, ambient lifecycle."""

from __future__ import annotations

import pytest

from repro.analysis import sanitizer
from repro.interval.cpi_stack import CPIStack, build_cpi_stack
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.pipeline.inorder import simulate_inorder
from repro.pipeline.rob import ReorderBuffer
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace


@pytest.fixture(autouse=True)
def isolated_sanitizer():
    """Every test starts and ends with pristine ambient state."""
    sanitizer.reset()
    yield
    sanitizer.reset()


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
    assert sanitizer.current() is None
    assert sanitizer.drain_report() is None


def test_env_var_enables(monkeypatch):
    monkeypatch.setenv(sanitizer.ENV_VAR, "1")
    assert sanitizer.enabled()
    assert sanitizer.current() is not None


def test_enable_exports_to_environment(monkeypatch):
    monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
    sanitizer.enable()
    import os

    assert os.environ[sanitizer.ENV_VAR] == "1"
    assert sanitizer.current() is not None


def test_injected_rob_overflow_is_reported_not_raised():
    """Acceptance: a ROB-overflow bug is caught as a structured report."""
    san = sanitizer.Sanitizer()
    rob = ReorderBuffer(2, sanitizer=san)
    for seq in range(3):  # one past capacity; without a sanitizer: raise
        rob.dispatch(seq)
    report = san.report()
    assert not report.ok
    [violation] = report.violations
    assert violation.check == "rob-overflow"
    assert violation.seq == 2
    assert "2/2" in violation.message


def test_rob_overflow_without_sanitizer_still_raises():
    rob = ReorderBuffer(1)
    rob.dispatch(0)
    with pytest.raises(RuntimeError):
        rob.dispatch(1)


def test_injected_out_of_order_dispatch_is_reported():
    san = sanitizer.Sanitizer()
    rob = ReorderBuffer(8, sanitizer=san)
    rob.dispatch(5)
    rob.dispatch(3)
    assert [v.check for v in san.violations] == ["rob-order"]


def test_injected_non_monotonic_commit_is_reported():
    """Acceptance: a commit-clock regression is caught and reported."""
    san = sanitizer.Sanitizer()
    san.begin_run()
    san.check_commit(5, seq=0)
    san.check_commit(3, seq=1)
    report = san.report()
    assert not report.ok
    [violation] = report.violations
    assert violation.check == "commit-monotonic"
    assert violation.cycle == 3
    assert violation.seq == 1


def test_begin_run_resets_the_commit_clock():
    san = sanitizer.Sanitizer()
    san.check_commit(100)
    san.begin_run()
    san.check_commit(1)  # a new simulation legitimately restarts at 0
    assert san.report().ok


def test_occupancy_over_capacity_is_reported():
    san = sanitizer.Sanitizer()
    san.check_occupancy(cycle=10, occupancy=129, capacity=128)
    [violation] = san.violations
    assert violation.check == "rob-occupancy"
    assert violation.cycle == 10


def test_cpi_stack_identity_violation_is_reported():
    san = sanitizer.Sanitizer()
    bogus = CPIStack(
        instructions=100,
        total_cycles=1000,
        base=25.0,
        bpred=10.0,
        icache=5.0,
        long_dcache=0.0,
        other=900.0,  # sums to 940, not 1000
    )
    san.check_cpi_stack(bogus)
    [violation] = san.violations
    assert violation.check == "cpi-stack-identity"


def test_full_default_run_is_clean(monkeypatch):
    """Acceptance: a sanitized default run reports zero violations."""
    monkeypatch.setenv(sanitizer.ENV_VAR, "1")
    trace = generate_trace(WorkloadProfile(name="san"), 8_000, seed=99)
    config = CoreConfig()
    result = simulate(trace, config)
    build_cpi_stack(result, config.dispatch_width)
    simulate_inorder(trace, config)
    report = sanitizer.drain_report()
    assert report is not None
    assert report.runs == 2
    assert report.checks_run > 0
    assert report.ok, report.render()


def test_drain_starts_a_fresh_window(monkeypatch):
    monkeypatch.setenv(sanitizer.ENV_VAR, "1")
    san = sanitizer.current()
    san.check_occupancy(0, 5, 4)
    first = sanitizer.drain_report()
    assert first is not None and not first.ok
    second = sanitizer.drain_report()
    assert second is None  # nothing ran since the drain


def test_report_payload_round_trips_to_json():
    import json

    san = sanitizer.Sanitizer()
    san.check_occupancy(7, 10, 8)
    payload = json.loads(json.dumps(san.report().as_payload()))
    assert payload["ok"] is False
    assert payload["violations"][0]["check"] == "rob-occupancy"
    assert payload["violations"][0]["cycle"] == 7


def test_sanitized_simulation_matches_unsanitized(monkeypatch):
    """The sanitizer observes; it must never change simulated results."""
    from repro.lab.codec import result_to_payload

    trace = generate_trace(WorkloadProfile(name="same"), 5_000, seed=3)
    config = CoreConfig()
    monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
    plain = result_to_payload(simulate(trace, config))
    monkeypatch.setenv(sanitizer.ENV_VAR, "1")
    sanitized = result_to_payload(simulate(trace, config))
    sanitizer.drain_report()
    assert plain == sanitized
