"""CLI surface of the v2 lint: exits, baseline flow, SARIF, --changed."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture()
def racy_tree(tmp_path):
    """A tiny tree with one RACE001 finding and no cache side effects."""
    tree = tmp_path / "app"
    tree.mkdir()
    (tree / "svc.py").write_text(
        "import asyncio\n"
        "\n"
        "\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self.n = 0\n"
        "\n"
        "    async def bump(self):\n"
        "        v = self.n\n"
        "        await asyncio.sleep(0)\n"
        "        self.n = v + 1\n",
        encoding="utf-8",
    )
    return tree


def test_lint_exits_nonzero_on_parse_errors(tmp_path, capsys):
    """Satellite: a parse error is a failed run, not a silent skip."""
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n", encoding="utf-8")
    rc = main(["lint", str(broken), "--no-cache"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "parse error" in out


def test_lint_exits_nonzero_on_violations(racy_tree, capsys):
    rc = main(["lint", str(racy_tree), "--no-cache"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "RACE001" in out


def test_lint_clean_tree_exits_zero(tmp_path, capsys):
    clean = tmp_path / "ok.py"
    clean.write_text("x = 1\n", encoding="utf-8")
    rc = main(["lint", str(clean), "--no-cache"])
    assert rc == 0


def test_list_rules_includes_program_pack(capsys):
    rc = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for rule_id in ("RACE001", "RACE002", "SRV002", "RES002", "DET001"):
        assert rule_id in out
    assert "SRV001" in out  # the per-file pack is still listed


def test_update_baseline_then_gate(racy_tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    rc = main([
        "lint", str(racy_tree), "--no-cache",
        "--baseline", str(baseline), "--update-baseline",
    ])
    assert rc == 0
    assert baseline.exists()

    # Same tree, baseline applied: the known finding no longer fails.
    rc = main([
        "lint", str(racy_tree), "--no-cache", "--baseline", str(baseline),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "baseline" in out

    # A *new* finding still fails the gated run.
    (racy_tree / "svc2.py").write_text(
        "import asyncio\n"
        "\n"
        "\n"
        "async def orphan():\n"
        "    asyncio.create_task(asyncio.sleep(0))\n",
        encoding="utf-8",
    )
    rc = main([
        "lint", str(racy_tree), "--no-cache", "--baseline", str(baseline),
    ])
    out = capsys.readouterr().out
    assert rc == 1
    assert "RACE002" in out


def test_sarif_flag_writes_valid_document(racy_tree, tmp_path):
    sarif_path = tmp_path / "lint.sarif"
    rc = main([
        "lint", str(racy_tree), "--no-cache", "--sarif", str(sarif_path),
    ])
    assert rc == 1
    doc = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"]
    assert doc["runs"][0]["results"][0]["ruleId"] == "RACE001"


def test_rules_filter_narrows_reporting(racy_tree, capsys):
    rc = main([
        "lint", str(racy_tree), "--no-cache", "--rules", "DET001",
    ])
    out = capsys.readouterr().out
    assert rc == 0  # the RACE001 finding is filtered out of the report
    assert "RACE001" not in out


def test_changed_outside_git_lints_nothing(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    rc = main(["lint", "--changed", "--no-cache"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "nothing to lint" in out


def test_json_format_carries_cache_counters(racy_tree, capsys):
    rc = main([
        "lint", str(racy_tree), "--no-cache", "--format", "json",
    ])
    out = capsys.readouterr().out
    assert rc == 1
    payload = json.loads(out)
    assert payload["cache"] == {"hits": 0, "misses": 1}
    assert payload["violations"][0]["rule"] == "RACE001"
