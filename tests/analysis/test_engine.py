"""Engine mechanics: discovery, suppressions, reporters, scoping."""

from __future__ import annotations

import json

import pytest

from repro.analysis.engine import (
    LintViolation,
    all_rules,
    lint_paths,
    lint_source,
    rule_catalogue,
)

BARE_EXCEPT = (
    "try:\n"
    "    x = 1\n"
    "except:\n"
    "    pass\n"
)


def test_detects_injected_violation_with_rule_file_and_line(tmp_path):
    """Acceptance: an injected violation reports rule id, file, line."""
    fixture = tmp_path / "fixture.py"
    fixture.write_text(
        "def f():\n"
        "    try:\n"
        "        return 1\n"
        "    except:\n"  # line 4
        "        return 2\n",
        encoding="utf-8",
    )
    report = lint_paths([str(tmp_path)])
    assert len(report.violations) == 1
    violation = report.violations[0]
    assert violation.rule == "EXC001"
    assert violation.path == str(fixture)
    assert violation.line == 4


def test_line_noqa_suppresses_all_rules():
    source = BARE_EXCEPT.replace("except:", "except:  # repro: noqa")
    report = lint_source(source, "lib.py")
    assert report.ok
    assert report.suppressed == 1


def test_line_noqa_with_rule_id_suppresses_only_that_rule():
    source = BARE_EXCEPT.replace("except:", "except:  # repro: noqa[EXC001]")
    assert lint_source(source, "lib.py").ok
    wrong = BARE_EXCEPT.replace("except:", "except:  # repro: noqa[PRT001]")
    report = lint_source(wrong, "lib.py")
    assert [v.rule for v in report.violations] == ["EXC001"]


def test_file_level_noqa_suppresses_everywhere():
    source = "# repro: noqa-file[EXC001]\n" + BARE_EXCEPT + BARE_EXCEPT
    report = lint_source(source, "lib.py")
    assert report.ok
    assert report.suppressed == 2


def test_blanket_file_noqa_suppresses_all_rules():
    source = "# repro: noqa-file\n" + BARE_EXCEPT + "print('x')\n"
    report = lint_source(source, "lib.py")
    assert report.ok
    assert report.suppressed == 2


def test_parse_error_is_reported_not_raised():
    report = lint_source("def broken(:\n", "bad.py")
    assert not report.ok
    assert report.parse_errors and report.parse_errors[0][0] == "bad.py"


def test_json_reporter_round_trips():
    report = lint_source(BARE_EXCEPT, "lib.py")
    payload = json.loads(report.render_json())
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    [violation] = payload["violations"]
    assert violation["rule"] == "EXC001"
    assert violation["line"] == 3


def test_human_reporter_mentions_path_line_and_rule():
    report = lint_source(BARE_EXCEPT, "somewhere/lib.py")
    text = report.render_human()
    assert "somewhere/lib.py:3:" in text
    assert "EXC001" in text


def test_discovery_skips_pycache(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("except:", encoding="utf-8")
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    report = lint_paths([str(tmp_path)])
    assert report.files_checked == 1
    assert report.ok


def test_rule_catalogue_covers_the_whole_pack():
    from repro.analysis.iprules import all_program_rules

    catalogue = rule_catalogue()
    ids = {row["id"] for row in catalogue}
    assert ids == {rule.id for rule in all_rules()} | {
        rule.id for rule in all_program_rules()
    }
    assert len(ids) >= 8


def test_violation_render_is_clickable():
    violation = LintViolation(
        rule="EXC001", path="a/b.py", line=3, col=1, message="m"
    )
    assert violation.render() == "a/b.py:3:1: EXC001 m"


@pytest.mark.parametrize("rule_id", ["RNG001", "CLK001", "FLT001", "MUT001",
                                     "ORD001", "CFG001", "EXC001", "PRT001"])
def test_expected_rule_ids_registered(rule_id):
    assert rule_id in {rule.id for rule in all_rules()}
