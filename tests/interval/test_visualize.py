"""Unit tests for the interval timeline visualization."""

import pytest

from repro.interval.visualize import (
    interval_timeline,
    pick_illustrative_event,
    render_timeline,
)
from repro.isa.opcodes import OpClass
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


@pytest.fixture(scope="module")
def run_with_event():
    records = [TraceRecord(OpClass.IALU) for _ in range(200)]
    records.append(
        TraceRecord(OpClass.BRANCH, mispredict=True, deps=(1,))
    )
    records.extend(TraceRecord(OpClass.IALU) for _ in range(200))
    result = simulate(Trace(records), CoreConfig())
    return result, result.mispredict_events[0]


class TestTimeline:
    def test_phases_in_order(self, run_with_event):
        result, event = run_with_event
        points = interval_timeline(result, event)
        phases = [p.phase for p in points]
        order = {"steady": 0, "resolving": 1, "refill": 2, "ramp-up": 3}
        ranks = [order[p] for p in phases]
        assert ranks == sorted(ranks)
        assert set(phases) == {"steady", "resolving", "refill", "ramp-up"}

    def test_steady_faster_than_refill(self, run_with_event):
        result, event = run_with_event
        points = interval_timeline(result, event)
        steady = [p.dispatch_rate for p in points if p.phase == "steady"]
        refill = [p.dispatch_rate for p in points if p.phase == "refill"]
        assert sum(steady) / len(steady) > sum(refill) / len(refill)

    def test_refill_rate_is_zero(self, run_with_event):
        result, event = run_with_event
        points = interval_timeline(result, event, bucket=1)
        refill = [p.dispatch_rate for p in points if p.phase == "refill"]
        assert all(rate == 0.0 for rate in refill)

    def test_requires_timeline(self, run_with_event):
        _, event = run_with_event
        records = [TraceRecord(OpClass.IALU)]
        result = simulate(Trace(records), CoreConfig(record_timeline=False))
        with pytest.raises(ValueError, match="timeline"):
            interval_timeline(result, event)

    def test_bucket_validation(self, run_with_event):
        result, event = run_with_event
        with pytest.raises(ValueError):
            interval_timeline(result, event, bucket=0)


class TestEventPicking:
    def test_returns_none_without_events(self):
        result = simulate(
            Trace([TraceRecord(OpClass.IALU)] * 10), CoreConfig()
        )
        assert pick_illustrative_event(result) is None

    def test_prefers_qualified_event(self, run_with_event):
        result, _ = run_with_event
        event = pick_illustrative_event(result, min_resolution=1,
                                        min_occupancy=0)
        assert event.resolution >= 1

    def test_falls_back_to_median(self, run_with_event):
        result, _ = run_with_event
        event = pick_illustrative_event(
            result, min_resolution=10_000, min_occupancy=10_000
        )
        assert event is not None


class TestRendering:
    def test_render_contains_phases(self, run_with_event):
        result, event = run_with_event
        text = render_timeline(interval_timeline(result, event))
        assert "steady" in text
        assert "refill" in text

    def test_render_empty(self):
        assert render_timeline([]) == "(no timeline)"
