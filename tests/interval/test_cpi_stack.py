"""Unit tests for CPI stack construction."""

import pytest

from repro.interval.cpi_stack import build_cpi_stack
from repro.pipeline.events import LongDMissEvent
from repro.pipeline.result import SimulationResult


class TestCPIStack:
    def test_components_sum_to_total(self, small_result, base_config):
        stack = build_cpi_stack(small_result, base_config.dispatch_width)
        total = stack.base + stack.bpred + stack.icache + stack.long_dcache + stack.other
        assert total == pytest.approx(small_result.cycles)

    def test_component_cpi_sums_to_cpi(self, small_result, base_config):
        stack = build_cpi_stack(small_result, base_config.dispatch_width)
        assert sum(stack.component_cpi().values()) == pytest.approx(stack.cpi)

    def test_fractions_sum_to_one(self, small_result, base_config):
        stack = build_cpi_stack(small_result, base_config.dispatch_width)
        assert sum(stack.fractions().values()) == pytest.approx(1.0)

    def test_base_is_n_over_width(self, small_result, base_config):
        stack = build_cpi_stack(small_result, base_config.dispatch_width)
        assert stack.base == pytest.approx(
            small_result.instructions / base_config.dispatch_width
        )

    def test_bpred_component_matches_penalties(self, small_result, base_config):
        stack = build_cpi_stack(small_result, base_config.dispatch_width)
        expected = sum(e.penalty for e in small_result.mispredict_events)
        assert stack.bpred == pytest.approx(expected)

    def test_overlapping_long_misses_merged(self):
        events = [
            LongDMissEvent(seq=0, cycle=100, complete_cycle=350),
            LongDMissEvent(seq=1, cycle=200, complete_cycle=450),  # overlaps
            LongDMissEvent(seq=2, cycle=1000, complete_cycle=1250),  # separate
        ]
        result = SimulationResult(instructions=100, cycles=2000, events=events)
        stack = build_cpi_stack(result, 4)
        assert stack.long_dcache == pytest.approx((450 - 100) + 250)

    def test_contained_long_miss_not_double_counted(self):
        events = [
            LongDMissEvent(seq=0, cycle=100, complete_cycle=400),
            LongDMissEvent(seq=1, cycle=150, complete_cycle=300),  # inside
        ]
        result = SimulationResult(instructions=100, cycles=1000, events=events)
        stack = build_cpi_stack(result, 4)
        assert stack.long_dcache == pytest.approx(300)

    def test_rows_structure(self, small_result, base_config):
        stack = build_cpi_stack(small_result, base_config.dispatch_width)
        rows = stack.rows()
        assert [name for name, _, _ in rows] == [
            "base", "bpred", "icache", "long_dcache", "other",
        ]

    def test_empty_result(self):
        result = SimulationResult(instructions=0, cycles=0)
        stack = build_cpi_stack(result, 4)
        assert stack.cpi == 0.0
        assert stack.component_cpi() == {}
