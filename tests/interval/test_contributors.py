"""Unit tests for the five-contributor decomposition."""

import pytest

from repro.interval.contributors import decompose_contributors
from repro.interval.penalty import measure_penalties
from repro.isa.opcodes import OpClass
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.profiles import WorkloadProfile
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace


@pytest.fixture(scope="module")
def decomposition(small_trace, base_config, small_result):
    return decompose_contributors(
        small_trace, small_result, base_config, max_events=100
    )


class TestBreakdownStructure:
    def test_refill_is_frontend_depth(self, decomposition, base_config):
        assert decomposition.refill == base_config.frontend_depth

    def test_components_non_negative(self, decomposition):
        assert decomposition.ilp_chain >= 0
        assert decomposition.fu_latency_extra >= 0
        assert decomposition.short_miss_extra >= 0

    def test_components_sum_to_penalty(self, decomposition):
        total = (
            decomposition.refill
            + decomposition.ilp_chain
            + decomposition.fu_latency_extra
            + decomposition.short_miss_extra
            + decomposition.residual
        )
        assert total == pytest.approx(decomposition.mean_penalty, abs=1e-6)

    def test_explained_definition(self, decomposition):
        assert decomposition.explained == pytest.approx(
            decomposition.ilp_chain
            + decomposition.fu_latency_extra
            + decomposition.short_miss_extra
        )

    def test_residual_is_small(self, decomposition):
        """The dispatch-anchored slice should explain nearly all of the
        measured resolution time."""
        assert abs(decomposition.residual) < 0.35 * decomposition.mean_resolution

    def test_rows_render(self, decomposition):
        rows = decomposition.rows()
        names = [name for name, _ in rows]
        assert any("C1" in n for n in names)
        assert any("C5" in n for n in names)

    def test_empty_events(self, base_config):
        trace = Trace([TraceRecord(OpClass.IALU) for _ in range(20)])
        result = simulate(trace, base_config)
        breakdown = decompose_contributors(trace, result, base_config)
        assert breakdown.count == 0
        assert breakdown.mean_penalty == base_config.frontend_depth


class TestContributorSensitivity:
    def _decompose(self, profile, config=None, n=15_000, seed=5):
        config = config or CoreConfig()
        trace = generate_trace(profile, n, seed=seed)
        result = simulate(trace, config)
        return decompose_contributors(trace, result, config, max_events=80)

    def test_short_misses_raise_c5(self):
        base = WorkloadProfile(dl2_miss_rate=0.0, il1_mpki=0.0)
        low = self._decompose(base.with_overrides(dl1_miss_rate=0.0))
        high = self._decompose(base.with_overrides(dl1_miss_rate=0.25))
        assert high.short_miss_extra > low.short_miss_extra
        assert low.short_miss_extra == pytest.approx(0.0, abs=1e-9)

    def test_fu_latency_scaling_raises_c4(self):
        profile = WorkloadProfile(dl1_miss_rate=0.0, dl2_miss_rate=0.0)
        base = self._decompose(profile)
        scaled = self._decompose(
            profile, config=CoreConfig().with_scaled_fu_latencies(3.0)
        )
        assert scaled.fu_latency_extra > base.fu_latency_extra

    def test_low_ilp_raises_c3(self):
        high_ilp = self._decompose(
            WorkloadProfile(mean_dependence_distance=10.0)
        )
        low_ilp = self._decompose(
            WorkloadProfile(mean_dependence_distance=2.0)
        )
        assert low_ilp.ilp_chain > high_ilp.ilp_chain

    def test_max_events_caps_work(self, small_trace, base_config, small_result):
        report = measure_penalties(small_result)
        capped = decompose_contributors(
            small_trace, small_result, base_config, report=report, max_events=10
        )
        assert capped.count == 10
