"""Unit tests for the first-order interval model."""

import pytest

from repro.interval.model import IntervalModel
from repro.isa.opcodes import OpClass
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.profiles import WorkloadProfile
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace


class TestEventPositions:
    def test_extraction(self):
        records = [
            TraceRecord(OpClass.IALU),
            TraceRecord(OpClass.BRANCH, mispredict=True),
            TraceRecord(OpClass.IALU, il1_miss=True),
            TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True),
            TraceRecord(OpClass.LOAD, mem_addr=0, dl1_miss=True),  # short: no event
        ]
        positions = IntervalModel.event_positions(Trace(records))
        assert positions == [(1, "bpred"), (2, "icache"), (3, "long")]

    def test_bpred_wins_on_same_instruction(self):
        record = TraceRecord(OpClass.BRANCH, mispredict=True, il1_miss=True)
        positions = IntervalModel.event_positions(Trace([record]))
        assert positions == [(0, "bpred")]


class TestPrediction:
    def test_base_cycles(self):
        config = CoreConfig()
        trace = Trace([TraceRecord(OpClass.IALU) for _ in range(400)])
        prediction = IntervalModel(config).predict(trace)
        assert prediction.base_cycles == pytest.approx(100.0)
        assert prediction.mispredict_cycles == 0.0

    def test_components_sum(self):
        trace = generate_trace(WorkloadProfile(), 10_000, seed=3)
        prediction = IntervalModel(CoreConfig()).predict(trace)
        assert prediction.cycles == pytest.approx(
            sum(prediction.components().values())
        )

    def test_event_counts_match_trace(self):
        trace = generate_trace(WorkloadProfile(), 10_000, seed=3)
        prediction = IntervalModel(CoreConfig()).predict(trace)
        assert prediction.mispredict_count == len(trace.mispredicted_indices())

    def test_mlp_correction_merges_adjacent_long_misses(self):
        config = CoreConfig()
        records = []
        # two long misses one instruction apart: should cost ~one latency
        records.append(TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True))
        records.append(TraceRecord(OpClass.LOAD, mem_addr=64, dl2_miss=True))
        records.extend(TraceRecord(OpClass.IALU) for _ in range(500))
        near = IntervalModel(config).predict(Trace(records))
        # two long misses far apart: two latencies
        records2 = [TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True)]
        records2.extend(TraceRecord(OpClass.IALU) for _ in range(300))
        records2.append(TraceRecord(OpClass.LOAD, mem_addr=64, dl2_miss=True))
        records2.extend(TraceRecord(OpClass.IALU) for _ in range(200))
        far = IntervalModel(config).predict(Trace(records2))
        assert near.long_dmiss_cycles == pytest.approx(config.memory_latency)
        assert far.long_dmiss_cycles == pytest.approx(2 * config.memory_latency)

    def test_cpi_accuracy_against_simulation(self):
        config = CoreConfig()
        trace = generate_trace(WorkloadProfile(name="acc"), 30_000, seed=21)
        result = simulate(trace, config)
        prediction = IntervalModel(config).predict(trace)
        assert abs(prediction.error_vs(result)) < 0.20

    def test_penalty_prediction_in_range(self):
        config = CoreConfig()
        trace = generate_trace(WorkloadProfile(name="pen"), 30_000, seed=22)
        result = simulate(trace, config)
        from repro.interval.penalty import measure_penalties

        measured = measure_penalties(result).mean_penalty
        predicted = IntervalModel(config).predict_mean_penalty(trace)
        assert predicted == pytest.approx(measured, rel=0.45)

    def test_occupancy_bounded_by_rob(self):
        config = CoreConfig(rob_size=32)
        # one mispredict after a huge gap: occupancy capped at 32
        records = [TraceRecord(OpClass.IALU) for _ in range(5000)]
        records.append(TraceRecord(OpClass.BRANCH, mispredict=True))
        model = IntervalModel(config)
        prediction = model.predict(Trace(records))
        drain = model.ilp_fit.predict_drain(32)
        assert prediction.mispredict_cycles == pytest.approx(
            drain + config.frontend_depth
        )

    def test_empty_trace(self):
        prediction = IntervalModel(CoreConfig(), ilp_fit=None)
        trace = generate_trace(WorkloadProfile(), 256, seed=1)
        assert prediction.predict(trace).instructions == 256
