"""Accounting identities the sanitizer enforces, checked exactly.

Two invariants anchor the whole reproduction:

* the CPI stack's components sum to the measured total cycles, and
* every misprediction's penalty is resolution + frontend refill.
"""

from __future__ import annotations

import pytest

from repro.interval.cpi_stack import build_cpi_stack
from repro.interval.fast_sim import FastIntervalSimulator
from repro.interval.penalty import measure_penalties
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.pipeline.events import BranchMispredictEvent
from repro.workloads.spec_profiles import SPEC_PROFILES

TOLERANCE = 1e-9
WORKLOADS = ["gzip", "mcf", "twolf"]


@pytest.fixture(scope="module", params=WORKLOADS)
def simulated(request):
    from repro.trace.synthetic import generate_trace

    config = CoreConfig()
    trace = generate_trace(SPEC_PROFILES[request.param], 8_000, seed=2006)
    return trace, config, simulate(trace, config)


def test_cpi_stack_components_sum_to_total_cycles(simulated):
    _, config, result = simulated
    stack = build_cpi_stack(result, config.dispatch_width)
    total = (
        stack.base
        + stack.bpred
        + stack.icache
        + stack.long_dcache
        + stack.other
    )
    assert abs(total - result.cycles) <= TOLERANCE


def test_component_cpis_sum_to_measured_cpi(simulated):
    _, config, result = simulated
    stack = build_cpi_stack(result, config.dispatch_width)
    assert abs(sum(stack.component_cpi().values()) - stack.cpi) <= TOLERANCE
    assert abs(sum(stack.fractions().values()) - 1.0) <= TOLERANCE


def test_every_penalty_is_resolution_plus_frontend_depth(simulated):
    _, config, result = simulated
    report = measure_penalties(result)
    assert report.count > 0
    for item in report.decompositions:
        assert item.refill == config.frontend_depth
        assert item.penalty == item.resolution + config.frontend_depth


def test_event_log_agrees_with_the_identity(simulated):
    _, config, result = simulated
    for event in result.events:
        if isinstance(event, BranchMispredictEvent):
            assert event.penalty == event.resolution + event.refill_cycles
            assert event.refill_cycles == config.frontend_depth


def test_mean_penalty_is_mean_resolution_plus_depth(simulated):
    _, config, result = simulated
    report = measure_penalties(result)
    assert (
        abs(report.mean_penalty - (report.mean_resolution + config.frontend_depth))
        <= TOLERANCE
    )


def test_tracer_observes_the_identity_per_event():
    """Every traced span independently reproduces the penalty identity.

    The tracer records dispatch/resolve/refill per mispredict as the
    pipeline runs; resolve − dispatch + frontend_depth must equal the
    penalty the event log recorded — for every event, not on average.
    """
    from repro.obs import runtime as obs_runtime
    from repro.obs.tracer import KIND_BPRED
    from repro.trace.synthetic import generate_trace

    config = CoreConfig()
    trace = generate_trace(SPEC_PROFILES["gzip"], 8_000, seed=2006)
    obs_runtime.enable_tracing()
    try:
        result = simulate(trace, config)
        tracer = obs_runtime.drain_trace()
    finally:
        obs_runtime.reset()
    events = {
        event.seq: event
        for event in result.events
        if isinstance(event, BranchMispredictEvent)
    }
    spans = tracer.spans_of_kind(KIND_BPRED)
    assert len(spans) == len(events) > 0
    for span in spans:
        event = events[span.seq]
        assert span.resolve_cycle - span.dispatch_cycle == event.resolution
        assert (
            span.resolve_cycle - span.dispatch_cycle + config.frontend_depth
            == event.penalty
        )
        assert span.duration == event.penalty


def test_fast_estimate_obeys_the_same_identity(simulated):
    trace, config, _ = simulated
    fast = FastIntervalSimulator(config).estimate(trace)
    expected = (
        sum(fast.resolutions)
        + len(fast.resolutions) * config.frontend_depth
    )
    assert fast.mispredict_cycles == expected
