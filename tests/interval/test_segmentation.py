"""Unit tests for interval segmentation."""

import pytest

from repro.interval.segmentation import Interval, segment_intervals
from repro.pipeline.events import (
    BranchMispredictEvent,
    ICacheMissEvent,
    LongDMissEvent,
    MissEventKind,
)
from repro.pipeline.result import SimulationResult


def mispredict(seq, cycle=0):
    return BranchMispredictEvent(
        seq=seq, cycle=cycle, resolve_cycle=cycle + 10, refill_cycles=5,
        window_occupancy=8,
    )


def icache(seq):
    return ICacheMissEvent(seq=seq, cycle=0, latency=10)


def long_miss(seq):
    return LongDMissEvent(seq=seq, cycle=0, complete_cycle=250)


def result_with(events, instructions=100):
    return SimulationResult(
        instructions=instructions, cycles=1000, events=list(events)
    )


class TestSegmentation:
    def test_no_events_single_tail_interval(self):
        breakdown = segment_intervals(result_with([], instructions=50))
        assert len(breakdown.intervals) == 1
        interval = breakdown.intervals[0]
        assert interval.event is None
        assert interval.length == 50

    def test_single_event_splits_stream(self):
        breakdown = segment_intervals(result_with([mispredict(30)]))
        assert len(breakdown.intervals) == 2
        first, tail = breakdown.intervals
        assert first.start_seq == 0
        assert first.end_seq == 30
        assert first.length == 31
        assert first.kind is MissEventKind.BRANCH_MISPREDICT
        assert tail.start_seq == 31
        assert tail.event is None

    def test_intervals_partition_the_stream(self):
        events = [mispredict(10), icache(40), long_miss(70)]
        breakdown = segment_intervals(result_with(events))
        covered = []
        for interval in breakdown.intervals:
            covered.extend(range(interval.start_seq, interval.end_seq + 1))
        assert covered == list(range(100))

    def test_event_on_last_instruction_no_tail(self):
        breakdown = segment_intervals(result_with([mispredict(99)]))
        assert len(breakdown.intervals) == 1

    def test_same_seq_events_merge_by_priority(self):
        events = [icache(20), mispredict(20)]
        breakdown = segment_intervals(result_with(events))
        assert breakdown.intervals[0].kind is MissEventKind.BRANCH_MISPREDICT
        assert breakdown.event_count == 1

    def test_long_miss_beats_icache_in_merge(self):
        events = [icache(20), long_miss(20)]
        breakdown = segment_intervals(result_with(events))
        assert breakdown.intervals[0].kind is MissEventKind.LONG_DCACHE_MISS

    def test_gap_property(self):
        breakdown = segment_intervals(result_with([mispredict(10), mispredict(25)]))
        first, second, _tail = breakdown.intervals
        assert first.gap == 10  # instructions before the event
        assert second.gap == 14

    def test_interval_length_positive(self):
        events = [mispredict(0), mispredict(1)]
        breakdown = segment_intervals(result_with(events))
        for interval in breakdown.intervals:
            assert interval.length >= 1


class TestBreakdownStats:
    def test_counts_by_kind(self):
        events = [mispredict(10), mispredict(30), icache(50), long_miss(80)]
        breakdown = segment_intervals(result_with(events))
        counts = breakdown.counts_by_kind()
        assert counts[MissEventKind.BRANCH_MISPREDICT] == 2
        assert counts[MissEventKind.ICACHE_MISS] == 1
        assert counts[MissEventKind.LONG_DCACHE_MISS] == 1

    def test_by_kind_filter(self):
        events = [mispredict(10), icache(50)]
        breakdown = segment_intervals(result_with(events))
        assert len(breakdown.by_kind(MissEventKind.BRANCH_MISPREDICT)) == 1

    def test_mean_interval_length_excludes_tail(self):
        events = [mispredict(9), mispredict(19)]
        breakdown = segment_intervals(result_with(events, instructions=100))
        assert breakdown.mean_interval_length == pytest.approx(10.0)

    def test_length_histogram(self):
        events = [mispredict(9), mispredict(19), icache(29)]
        breakdown = segment_intervals(result_with(events))
        hist = breakdown.length_histogram()
        assert hist.total == 3
        assert hist.count(10) == 3

    def test_length_histogram_filtered_by_kind(self):
        events = [mispredict(9), icache(29)]
        breakdown = segment_intervals(result_with(events))
        hist = breakdown.length_histogram(MissEventKind.ICACHE_MISS)
        assert hist.total == 1

    def test_burstiness_uniform_vs_clustered(self):
        uniform = segment_intervals(
            result_with([mispredict(s) for s in range(9, 100, 10)])
        )
        clustered = segment_intervals(
            result_with(
                [mispredict(s) for s in (1, 2, 3, 4, 50, 51, 52, 53, 99)]
            )
        )
        assert clustered.burstiness() > uniform.burstiness()

    def test_interval_dataclass_properties(self):
        interval = Interval(start_seq=5, end_seq=9, event=mispredict(9))
        assert interval.length == 5
        assert interval.gap == 4
        assert interval.kind is MissEventKind.BRANCH_MISPREDICT
