"""Unit tests for the ILP / window-drain model."""

import pytest

from repro.interval.ilp import (
    backward_slice_latency,
    fit_ilp_profile,
    fu_latency,
    full_latency,
    unit_latency,
    window_criticality,
)
from repro.isa.opcodes import OpClass
from repro.pipeline.config import CoreConfig
from repro.trace.profiles import WorkloadProfile
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace


def serial_trace(n):
    return Trace(
        [TraceRecord(OpClass.IALU, deps=(1,) if i else ()) for i in range(n)]
    )


def parallel_trace(n):
    return Trace([TraceRecord(OpClass.IALU) for _ in range(n)])


class TestWindowCriticality:
    def test_serial_window_is_window_deep(self):
        assert window_criticality(serial_trace(256), 32) == pytest.approx(32.0)

    def test_parallel_window_is_depth_one(self):
        assert window_criticality(parallel_trace(256), 32) == pytest.approx(1.0)

    def test_deps_crossing_window_boundary_ignored(self):
        # distance-32 deps never land inside a 16-wide window
        records = [
            TraceRecord(OpClass.IALU, deps=(32,) if i >= 32 else ())
            for i in range(256)
        ]
        assert window_criticality(Trace(records), 16) == pytest.approx(1.0)

    def test_latency_function_scales(self):
        trace = serial_trace(128)
        unit = window_criticality(trace, 16)
        tripled = window_criticality(trace, 16, latency_of=lambda s: 3)
        assert tripled == pytest.approx(3 * unit)

    def test_monotone_in_window_size(self, small_trace):
        ks = [window_criticality(small_trace, w) for w in (8, 32, 128)]
        assert ks == sorted(ks)

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            window_criticality(serial_trace(10), 0)

    def test_empty_trace(self):
        assert window_criticality(Trace(), 16) == 0.0


class TestPowerLawFit:
    def test_serial_trace_beta_near_one(self):
        fit = fit_ilp_profile(serial_trace(2048))
        assert fit.beta == pytest.approx(1.0, abs=0.05)
        assert fit.alpha == pytest.approx(1.0, rel=0.1)

    def test_parallel_trace_beta_near_zero(self):
        fit = fit_ilp_profile(parallel_trace(2048))
        assert fit.beta == pytest.approx(0.0, abs=0.05)

    def test_synthetic_trace_good_fit(self):
        trace = generate_trace(WorkloadProfile(), 20_000, seed=9)
        fit = fit_ilp_profile(trace)
        assert fit.r_squared > 0.95
        assert 0.0 < fit.beta <= 1.1

    def test_predict_drain_monotone(self):
        trace = generate_trace(WorkloadProfile(), 10_000, seed=9)
        fit = fit_ilp_profile(trace)
        drains = [fit.predict_drain(n) for n in (8, 32, 128)]
        assert drains == sorted(drains)

    def test_predict_drain_zero_occupancy(self):
        fit = fit_ilp_profile(serial_trace(256))
        assert fit.predict_drain(0) == 0.0

    def test_predict_ipc_inverse_of_drain(self):
        fit = fit_ilp_profile(serial_trace(256))
        assert fit.predict_ipc(64) == pytest.approx(
            64 / fit.predict_drain(64)
        )

    def test_needs_two_windows(self):
        with pytest.raises(ValueError):
            fit_ilp_profile(serial_trace(64), windows=(16,))


class TestLatencyFunctions:
    def test_unit_latency(self):
        trace = serial_trace(4)
        assert unit_latency(trace)(0) == 1

    def test_fu_latency_uses_specs(self):
        config = CoreConfig()
        trace = Trace([TraceRecord(OpClass.IMUL)])
        latency = fu_latency(trace, config.fu_specs)
        assert latency(0) == config.fu_specs[OpClass.IMUL].latency

    def test_full_latency_adds_cache(self):
        config = CoreConfig()
        records = [
            TraceRecord(OpClass.LOAD, mem_addr=0),
            TraceRecord(OpClass.LOAD, mem_addr=0, dl1_miss=True),
            TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True),
        ]
        trace = Trace(records)
        latency = full_latency(trace, config.fu_specs, config)
        base = config.fu_specs[OpClass.LOAD].latency
        assert latency(0) == base + config.l1_latency
        assert latency(1) == base + config.l2_latency
        assert latency(2) == base + config.memory_latency


class TestBackwardSlice:
    def test_chain_depth(self):
        trace = serial_trace(64)
        depth = backward_slice_latency(trace, 63, 32, unit_latency(trace))
        assert depth == 32  # window-bounded

    def test_full_window_chain(self):
        trace = serial_trace(64)
        depth = backward_slice_latency(trace, 63, 0, unit_latency(trace))
        assert depth == 64

    def test_independent_branch_depth_one(self):
        trace = parallel_trace(32)
        assert backward_slice_latency(trace, 31, 0, unit_latency(trace)) == 1

    def test_satisfied_predicate_trims_slice(self):
        trace = serial_trace(64)
        depth = backward_slice_latency(
            trace, 63, 0, unit_latency(trace), satisfied=lambda s: s < 60
        )
        assert depth == 4

    def test_bad_bounds_raise(self):
        trace = serial_trace(16)
        with pytest.raises(ValueError):
            backward_slice_latency(trace, 20, 0, unit_latency(trace))
        with pytest.raises(ValueError):
            backward_slice_latency(trace, 5, 10, unit_latency(trace))

    def test_slice_respects_latencies(self):
        config = CoreConfig()
        records = [
            TraceRecord(OpClass.IDIV),
            TraceRecord(OpClass.BRANCH, deps=(1,)),
        ]
        trace = Trace(records)
        fu = fu_latency(trace, config.fu_specs)
        depth = backward_slice_latency(trace, 1, 0, fu)
        assert depth == config.fu_specs[OpClass.IDIV].latency + 1
