"""Unit tests for window-occupancy reconstruction."""

import pytest

from repro.interval.occupancy import (
    occupancy_at_dispatch,
    occupancy_trace,
    summarize_occupancy,
)
from repro.isa.opcodes import OpClass
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


def ialu(deps=()):
    return TraceRecord(OpClass.IALU, deps=deps)


class TestTrace:
    def test_occupancy_never_negative_or_above_rob(self, small_result,
                                                   base_config):
        for _cycle, occupancy in occupancy_trace(small_result):
            assert 0 <= occupancy <= base_config.rob_size

    def test_ends_empty(self, small_result):
        points = occupancy_trace(small_result)
        assert points[-1][1] == 0

    def test_requires_timeline(self):
        result = simulate(
            Trace([ialu()]), CoreConfig(record_timeline=False)
        )
        with pytest.raises(ValueError, match="timeline"):
            occupancy_trace(result)

    def test_serial_chain_low_occupancy_bound(self):
        # A serial chain fills the window: occupancy rises to the ROB.
        records = [ialu((1,) if i else ()) for i in range(600)]
        config = CoreConfig(rob_size=64)
        result = simulate(Trace(records), config)
        peak = max(occ for _, occ in occupancy_trace(result))
        assert peak == 64


class TestSummary:
    def test_summary_consistency(self, small_result, base_config):
        summary = summarize_occupancy(small_result, base_config.rob_size)
        assert 0 <= summary.mean <= base_config.rob_size
        assert summary.p50 <= summary.p90 <= summary.peak
        assert 0.0 <= summary.full_fraction <= 1.0
        assert summary.peak == small_result.rob_peak_occupancy

    def test_rows_render(self, small_result, base_config):
        rows = summarize_occupancy(small_result, base_config.rob_size).rows()
        assert len(rows) == 5

    def test_capacity_validation(self, small_result):
        with pytest.raises(ValueError):
            summarize_occupancy(small_result, 0)

    def test_long_miss_fills_window(self):
        records = [TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True)]
        records.extend(ialu() for _ in range(500))
        config = CoreConfig(rob_size=32)
        result = simulate(Trace(records), config)
        summary = summarize_occupancy(result, 32)
        # window sits full for most of the 250-cycle stall
        assert summary.full_fraction > 0.5


class TestAtDispatch:
    def test_matches_event_occupancy(self):
        """The reconstruction agrees with the core's own recording at
        mispredicted branches."""
        records = [ialu((1,) if i else ()) for i in range(100)]
        records.append(TraceRecord(OpClass.BRANCH, mispredict=True))
        records.extend(ialu() for _ in range(20))
        result = simulate(Trace(records), CoreConfig())
        reconstructed = occupancy_at_dispatch(result)
        event = result.mispredict_events[0]
        assert reconstructed[event.seq] == event.window_occupancy

    def test_first_instruction_sees_empty_window(self, small_result):
        assert occupancy_at_dispatch(small_result)[0] == 0

    def test_bounded_by_rob(self, small_result, base_config):
        for occupancy in occupancy_at_dispatch(small_result):
            assert 0 <= occupancy <= base_config.rob_size
