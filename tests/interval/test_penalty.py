"""Unit tests for penalty measurement and aggregation."""

import pytest

from repro.interval.penalty import (
    bucket_resolution_by_gap,
    measure_penalties,
    mean_resolution_by_occupancy,
)
from repro.isa.opcodes import OpClass
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


def make_trace_with_mispredicts(gaps):
    """IALU runs separated by mispredicted branches at the given gaps."""
    records = []
    for gap in gaps:
        records.extend(TraceRecord(OpClass.IALU, deps=(1,) if records else ())
                       for _ in range(gap))
        records.append(TraceRecord(OpClass.BRANCH, mispredict=True, deps=(1,)))
    records.extend(TraceRecord(OpClass.IALU) for _ in range(10))
    return Trace(records)


@pytest.fixture(scope="module")
def measured(small_trace, base_config, small_result):
    return measure_penalties(small_result)


class TestMeasurement:
    def test_one_decomposition_per_mispredict(self, measured, small_result):
        assert measured.count == len(small_result.mispredict_events)

    def test_penalty_sums_components(self, measured):
        for item in measured.decompositions:
            assert item.penalty == item.resolution + item.refill

    def test_resolution_non_negative(self, measured):
        for item in measured.decompositions:
            assert item.resolution >= 1

    def test_refill_is_frontend_depth(self, measured, base_config):
        for item in measured.decompositions:
            assert item.refill == base_config.frontend_depth

    def test_mean_penalty_exceeds_refill(self, measured, base_config):
        assert measured.mean_penalty > base_config.frontend_depth
        assert measured.penalty_over_refill > 1.0

    def test_gap_matches_segmentation(self, measured):
        for item in measured.decompositions:
            assert item.gap >= 0

    def test_percentile_penalty_ordering(self, measured):
        p50 = measured.percentile_penalty(0.5)
        p90 = measured.percentile_penalty(0.9)
        assert p50 <= p90

    def test_empty_result_report(self):
        trace = Trace([TraceRecord(OpClass.IALU) for _ in range(10)])
        result = simulate(trace, CoreConfig())
        report = measure_penalties(result)
        assert report.count == 0
        assert report.mean_penalty == 0.0


class TestGapBuckets:
    def test_bucket_rows_cover_all_events(self, measured):
        rows = bucket_resolution_by_gap(measured)
        assert sum(count for _, count, _ in rows) == measured.count

    def test_bucket_labels(self, measured):
        rows = bucket_resolution_by_gap(measured, edges=(4, 8))
        labels = [label for label, _, _ in rows]
        assert labels == ["0-4", "5-8", ">8"]

    def test_short_gaps_resolve_faster(self):
        trace = make_trace_with_mispredicts([2] * 60 + [120] * 60)
        result = simulate(trace, CoreConfig())
        report = measure_penalties(result)
        rows = bucket_resolution_by_gap(report, edges=(8, 64))
        short_mean = rows[0][2]
        long_mean = rows[2][2]
        assert rows[0][1] > 0 and rows[2][1] > 0
        assert long_mean > short_mean

    def test_occupancy_buckets_cover_all(self, measured):
        rows = mean_resolution_by_occupancy(measured)
        assert sum(count for _, count, _ in rows) == measured.count
