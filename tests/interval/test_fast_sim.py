"""Unit tests for interval simulation (fast_sim)."""

import pytest

from repro.interval.fast_sim import FastIntervalSimulator, compare_with_detailed
from repro.interval.penalty import measure_penalties
from repro.isa.opcodes import OpClass
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.profiles import WorkloadProfile
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace


@pytest.fixture(scope="module")
def estimate(small_trace, base_config):
    return FastIntervalSimulator(base_config).estimate(small_trace)


class TestEstimateStructure:
    def test_components_sum(self, estimate):
        assert estimate.cycles == pytest.approx(
            estimate.base_cycles
            + estimate.mispredict_cycles
            + estimate.icache_cycles
            + estimate.long_dmiss_cycles
        )

    def test_event_counts_match_trace(self, estimate, small_trace):
        assert estimate.mispredict_count == len(
            small_trace.mispredicted_indices()
        )
        assert len(estimate.resolutions) == estimate.mispredict_count

    def test_base_is_width_bound(self, estimate, small_trace, base_config):
        assert estimate.base_cycles == pytest.approx(
            len(small_trace) / base_config.dispatch_width
        )

    def test_cpi_ipc_inverse(self, estimate):
        assert estimate.cpi * estimate.ipc == pytest.approx(1.0)

    def test_resolutions_positive(self, estimate):
        assert all(r >= 1 for r in estimate.resolutions)

    def test_empty_trace(self, base_config):
        estimate = FastIntervalSimulator(base_config).estimate(Trace())
        assert estimate.cycles == 0.0
        assert estimate.cpi == 0.0


class TestAccuracy:
    def test_cpi_within_fifteen_percent(self, small_trace, base_config):
        detailed = simulate(small_trace, base_config)
        fast = FastIntervalSimulator(base_config).estimate(small_trace)
        assert abs(fast.error_vs(detailed)) < 0.15

    def test_penalty_close_to_measured(self, small_trace, base_config):
        detailed = simulate(small_trace, base_config)
        fast = FastIntervalSimulator(base_config).estimate(small_trace)
        measured = measure_penalties(detailed).mean_penalty
        assert fast.mean_penalty == pytest.approx(measured, rel=0.3)

    def test_tracks_ilp_changes(self, base_config):
        estimates = []
        for distance in (2.0, 8.0):
            profile = WorkloadProfile(
                mean_dependence_distance=distance,
                dl2_miss_rate=0.0,
                il1_mpki=0.0,
            )
            trace = generate_trace(profile, 8000, seed=3)
            estimates.append(
                FastIntervalSimulator(base_config).estimate(trace)
            )
        assert estimates[0].mean_penalty > estimates[1].mean_penalty

    def test_compare_with_detailed_keys(self, base_config):
        trace = generate_trace(WorkloadProfile(), 4000, seed=7)
        comparison = compare_with_detailed(trace, base_config)
        assert comparison["detailed_cycles"] > 0
        assert comparison["fast_cycles"] > 0
        assert comparison["speedup"] > 1.0


class TestEventHandling:
    def test_bpred_shadows_colocated_icache(self, base_config):
        records = [TraceRecord(OpClass.IALU) for _ in range(10)]
        records.append(
            TraceRecord(OpClass.BRANCH, mispredict=True, il1_miss=True)
        )
        records.extend(TraceRecord(OpClass.IALU) for _ in range(10))
        estimate = FastIntervalSimulator(base_config).estimate(Trace(records))
        assert estimate.mispredict_count == 1
        assert estimate.icache_count == 0

    def test_dependent_long_misses_serialize(self, base_config):
        serial = [
            TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True),
            TraceRecord(OpClass.LOAD, mem_addr=8, dl2_miss=True, deps=(1,)),
        ]
        parallel = [
            TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True),
            TraceRecord(OpClass.LOAD, mem_addr=8, dl2_miss=True),
        ]
        sim = FastIntervalSimulator(base_config)
        assert sim.estimate(Trace(serial)).long_dmiss_cycles == pytest.approx(
            2 * base_config.memory_latency
        )
        assert sim.estimate(Trace(parallel)).long_dmiss_cycles == pytest.approx(
            base_config.memory_latency
        )

    def test_icache_cost(self, base_config):
        records = [TraceRecord(OpClass.IALU, il1_miss=True)]
        records.extend(TraceRecord(OpClass.IALU) for _ in range(7))
        estimate = FastIntervalSimulator(base_config).estimate(Trace(records))
        assert estimate.icache_cycles == pytest.approx(base_config.l2_latency)


class TestReachabilityCache:
    def _chain_trace(self, n=40):
        """Loads where each depends on the previous; all long misses."""
        records = [TraceRecord(OpClass.LOAD, mem_addr=8 * i, dl2_miss=True,
                               deps=(1,) if i else ())
                   for i in range(n)]
        return Trace(records)

    def test_cached_answers_match_bfs(self, base_config):
        trace = generate_trace(
            WorkloadProfile(name="reach", dl2_miss_rate=0.1), 600, seed=4
        )
        sim = FastIntervalSimulator(base_config)
        for consumer in range(50, 600, 97):
            for producer in range(max(0, consumer - 150), consumer):
                assert sim._depends_on(trace, consumer, producer) == \
                    FastIntervalSimulator._bfs_depends_on(
                        trace, consumer, producer
                    )

    def test_cache_reused_across_estimates(self, base_config):
        trace = self._chain_trace()
        sim = FastIntervalSimulator(base_config)
        sim.estimate(trace)
        cached = sim._reach_cache.get(trace)
        assert cached is not None and cached[1]
        first = dict(cached[1])
        sim.estimate(trace)  # sweep-style reuse: no recomputation needed
        assert sim._reach_cache.get(trace)[1] == first

    def test_cache_invalidated_by_trace_mutation(self, base_config):
        trace = self._chain_trace()
        sim = FastIntervalSimulator(base_config)
        sim.estimate(trace)
        version_before = trace.version
        trace.append(TraceRecord(OpClass.LOAD, mem_addr=0, dl2_miss=True,
                                 deps=(1,)))
        assert trace.version != version_before
        sim.estimate(trace)  # must not reuse stale reach sets
        assert sim._reach_cache.get(trace)[0] == trace.version

    def test_estimates_identical_with_cold_and_warm_cache(self, base_config):
        trace = generate_trace(
            WorkloadProfile(name="reach2", dl2_miss_rate=0.08), 800, seed=9
        )
        warm_sim = FastIntervalSimulator(base_config)
        cold = warm_sim.estimate(trace)
        warm = warm_sim.estimate(trace)
        assert cold.long_dmiss_cycles == warm.long_dmiss_cycles
        assert cold.cycles == warm.cycles
