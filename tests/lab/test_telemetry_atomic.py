"""Manifest writes must be atomic: readers never see a torn file."""

from __future__ import annotations

import json
import os

import pytest

from repro.lab.jobs import JobResult, JobStatus
from repro.lab.store import ResultStore
from repro.lab.telemetry import RunTelemetry


def _telemetry(run_id="runatomic001") -> RunTelemetry:
    telemetry = RunTelemetry(run_id=run_id)
    telemetry.record(
        JobResult(key="k" * 16, label="sim:ooo:gzip", status=JobStatus.OK)
    )
    telemetry.finish()
    return telemetry


def test_manifest_lands_complete(tmp_path):
    store = ResultStore(root=tmp_path)
    path = _telemetry().write_manifest(store)
    manifest = json.loads(path.read_text())
    assert manifest["run_id"] == "runatomic001"
    assert manifest["jobs"][0]["label"] == "sim:ooo:gzip"


def test_failed_write_leaves_no_torn_manifest(tmp_path, monkeypatch):
    store = ResultStore(root=tmp_path)
    telemetry = _telemetry()
    good = telemetry.write_manifest(store)
    before = good.read_bytes()

    def explode(*args, **kwargs):
        raise OSError("disk full")

    # Break the write below the serializer: the tmp file is created,
    # then the swap into place fails mid-flight.
    monkeypatch.setattr("repro.resilience.atomic.os.replace", explode)
    with pytest.raises(OSError):
        telemetry.write_manifest(store)
    # The prior manifest is untouched and no temp debris remains.
    assert good.read_bytes() == before
    leftovers = [p for p in os.listdir(store.runs_dir)
                 if p.startswith(".tmp")]
    assert leftovers == []


def test_rewrite_replaces_in_place(tmp_path):
    store = ResultStore(root=tmp_path)
    telemetry = _telemetry()
    first = telemetry.write_manifest(store)
    telemetry.record(
        JobResult(key="j" * 16, label="sim:ooo:mcf", status=JobStatus.OK)
    )
    second = telemetry.write_manifest(store)
    assert first == second
    manifest = json.loads(second.read_text())
    assert len(manifest["jobs"]) == 2
