"""Unit tests for the content-addressed result store and config hashing."""

import itertools
import json
import time

import pytest

from repro.isa.opcodes import OpClass
from repro.lab.store import (
    CODE_SALT,
    ResultStore,
    canonical_config,
    config_digest,
    job_key,
)
from repro.pipeline.config import DEFAULT_FU_SPECS, CoreConfig, FUSpec


class TestConfigDigest:
    def test_stable_across_equal_configs(self):
        assert config_digest(CoreConfig()) == config_digest(CoreConfig())

    def test_field_order_does_not_change_key(self):
        # Same logical fu_specs built in reversed insertion order must
        # hash identically: the canonical form sorts everything.
        forward = dict(DEFAULT_FU_SPECS)
        backward = dict(reversed(list(DEFAULT_FU_SPECS.items())))
        assert list(forward) != list(backward)  # orders really differ
        a = CoreConfig(fu_specs=forward)
        b = CoreConfig(fu_specs=backward)
        assert config_digest(a) == config_digest(b)

    def test_differing_configs_never_collide(self):
        # Regression for the old hand-rolled string key: a grid of
        # config variants (including fields the old key omitted, like
        # record_timeline) must produce pairwise-distinct digests.
        variants = [CoreConfig()]
        for overrides in (
            {"dispatch_width": 2},
            {"issue_width": 2},
            {"commit_width": 2},
            {"rob_size": 256},
            {"frontend_depth": 20},
            {"l1_latency": 3},
            {"l2_latency": 12},
            {"memory_latency": 300},
            {"dispatch_wrong_path": True},
            {"record_timeline": False},
            {"issue_policy": "random"},
            {"seed": 7},
        ):
            variants.append(CoreConfig().with_overrides(**overrides))
        for factor in (1.5, 2.0, 3.0):
            variants.append(CoreConfig().with_scaled_fu_latencies(factor))
        specs = dict(DEFAULT_FU_SPECS)
        specs[OpClass.IALU] = FUSpec(count=2, latency=1)
        variants.append(CoreConfig(fu_specs=specs))
        digests = [config_digest(v) for v in variants]
        assert len(set(digests)) == len(digests)

    def test_every_dataclass_field_is_hashed(self):
        canon = canonical_config(CoreConfig())
        import dataclasses

        names = {f.name for f in dataclasses.fields(CoreConfig)}
        assert set(canon) == names

    def test_digest_is_hex_sha256(self):
        digest = config_digest(CoreConfig())
        assert len(digest) == 64
        int(digest, 16)  # parses as hex


class TestJobKey:
    def test_distinguishes_workload_length_seed_kind(self):
        base = dict(
            kind="sim-ooo", workload="gzip", length=500, seed=1,
            config=CoreConfig(),
        )
        keys = {job_key(**base)}
        for change in (
            {"workload": "mcf"},
            {"length": 600},
            {"seed": 2},
            {"kind": "sim-inorder"},
            {"config": CoreConfig(rob_size=64)},
        ):
            keys.add(job_key(**{**base, **change}))
        assert len(keys) == 6

    def test_salt_invalidates_key(self):
        a = job_key("sim-ooo", "gzip", 500, 1, CoreConfig())
        b = job_key("sim-ooo", "gzip", 500, 1, CoreConfig(),
                    salt="other-version")
        assert a != b

    def test_extra_participates(self):
        a = job_key("experiment", "suite", 500, 1, CoreConfig(),
                    extra={"experiment_id": "f2"})
        b = job_key("experiment", "suite", 500, 1, CoreConfig(),
                    extra={"experiment_id": "f3"})
        assert a != b


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(root=tmp_path / "cache")
        store.put("k" * 64, {"x": 1})
        assert store.get("k" * 64) == {"x": 1}
        assert store.stats.puts == 1
        assert store.stats.hits == 1

    def test_miss_accounting(self, tmp_path):
        store = ResultStore(root=tmp_path / "cache")
        assert store.get("absent" + "0" * 58) is None
        assert store.stats.misses == 1

    def test_objects_are_salted(self, tmp_path):
        store = ResultStore(root=tmp_path / "cache")
        path = store.put("a" * 64, {"x": 1})
        with open(path, "r", encoding="utf-8") as handle:
            obj = json.load(handle)
        assert obj["salt"] == CODE_SALT

    def test_corrupt_object_counts_as_miss(self, tmp_path):
        store = ResultStore(root=tmp_path / "cache")
        path = store.put("a" * 64, {"x": 1})
        path.write_text("{not json", encoding="utf-8")
        assert store.get("a" * 64) is None
        assert store.stats.misses == 1

    def test_gc_clear(self, tmp_path):
        store = ResultStore(root=tmp_path / "cache")
        for i in range(4):
            store.put(f"{i:064d}", {"i": i})
        assert store.count() == 4
        assert store.gc(clear=True) == 4
        assert store.count() == 0

    def test_gc_max_entries_keeps_newest(self, tmp_path):
        store = ResultStore(root=tmp_path / "cache")
        paths = [store.put(f"{i:064d}", {"i": i}) for i in range(4)]
        # Age the first two objects so mtime ordering is unambiguous.
        old = time.time() - 1000
        for path in paths[:2]:
            import os

            os.utime(path, (old, old))
        assert store.gc(max_entries=2) == 2
        assert store.get(f"{3:064d}") == {"i": 3}
        assert store.get(f"{0:064d}") is None

    def test_max_entries_eviction_accounting(self, tmp_path):
        store = ResultStore(root=tmp_path / "cache", max_entries=2)
        for i, stamp in zip(range(4), itertools.count()):
            path = store.put(f"{i:064d}", {"i": i})
            import os

            t = time.time() - 100 + stamp
            os.utime(path, (t, t))
        assert store.count() <= 2
        assert store.stats.evictions >= 2

    def test_gc_max_age(self, tmp_path):
        import os

        store = ResultStore(root=tmp_path / "cache")
        fresh = store.put("a" * 64, {"x": 1})
        stale = store.put("b" * 64, {"x": 2})
        old = time.time() - 7200
        os.utime(stale, (old, old))
        assert store.gc(max_age_s=3600) == 1
        assert store.get("a" * 64) == {"x": 1}
        assert store.get("b" * 64) is None
        assert fresh.is_file()

    def test_describe(self, tmp_path):
        store = ResultStore(root=tmp_path / "cache")
        store.put("a" * 64, {"x": 1})
        info = store.describe()
        assert info["objects"] == 1
        assert info["size_bytes"] > 0
        assert info["salt"] == CODE_SALT


class TestConcurrentReaders:
    """A store scan must survive another process quarantining objects
    mid-scan: the glob sees a file, the stat/read does not. (Regression:
    ``size_bytes``/``gc``/``manifests`` used to raise FileNotFoundError
    when an object vanished between the directory listing and its
    ``stat``.)"""

    @staticmethod
    def _racy_stat(monkeypatch, doomed):
        """Make the first stat of ``doomed`` look like a concurrent
        quarantine: the file is moved away just before the stat runs."""
        from pathlib import Path

        import os

        real_stat = Path.stat

        def stat(self, **kwargs):
            if self == doomed and os.path.exists(doomed):
                quarantine = doomed.parent.parent.parent / "quarantine"
                quarantine.mkdir(parents=True, exist_ok=True)
                os.replace(doomed, quarantine / doomed.name)
            return real_stat(self, **kwargs)

        monkeypatch.setattr(Path, "stat", stat)

    def test_size_bytes_tolerates_vanishing_object(self, tmp_path, monkeypatch):
        store = ResultStore(root=tmp_path / "cache")
        for i in range(3):
            store.put(f"{i:064d}", {"i": i})
        doomed = store._object_path(f"{1:064d}")
        self._racy_stat(monkeypatch, doomed)
        total = store.size_bytes()  # must not raise
        assert total > 0
        monkeypatch.undo()
        assert store.count() == 2  # the quarantined object is gone

    def test_gc_tolerates_vanishing_object(self, tmp_path, monkeypatch):
        store = ResultStore(root=tmp_path / "cache")
        for i in range(4):
            store.put(f"{i:064d}", {"i": i})
        doomed = store._object_path(f"{2:064d}")
        self._racy_stat(monkeypatch, doomed)
        removed = store.gc(max_entries=1)  # must not raise
        monkeypatch.undo()
        assert store.count() <= 1
        assert removed >= 1

    def test_manifests_tolerates_vanishing_manifest(self, tmp_path, monkeypatch):
        from pathlib import Path

        store = ResultStore(root=tmp_path / "cache")
        store.runs_dir.mkdir(parents=True)
        for name in ("run-a.json", "run-b.json"):
            (store.runs_dir / name).write_text("{}", encoding="utf-8")
        import os

        doomed = store.runs_dir / "run-a.json"
        real_stat = Path.stat

        def stat(self, **kwargs):
            if self == doomed and os.path.exists(doomed):
                doomed.unlink()
            return real_stat(self, **kwargs)

        monkeypatch.setattr(Path, "stat", stat)
        listed = store.manifests()  # must not raise
        monkeypatch.undo()
        assert [p.name for p in listed] == ["run-b.json"]

    def test_get_after_external_quarantine_is_a_miss(self, tmp_path):
        from repro.lab.store import quarantine_file

        store = ResultStore(root=tmp_path / "cache")
        path = store.put("a" * 64, {"x": 1})
        quarantine_file(store.root, path, "external fsck")
        assert store.get("a" * 64) is None
        assert store.stats.misses == 1
