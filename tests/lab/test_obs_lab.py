"""Metrics and traces must survive the trip through the worker pool."""

from __future__ import annotations

import json
import os

import pytest

from repro.lab.jobs import SimJob
from repro.lab.pool import run_jobs
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import render_snapshot

LENGTH = 1_500


def _jobs():
    return [
        SimJob(workload="gzip", length=LENGTH, seed=7),
        SimJob(workload="mcf", length=LENGTH, seed=7),
    ]


def _run(tmp_path, name, **kwargs):
    return run_jobs(
        _jobs(), workers=2, store_root=tmp_path / name, **kwargs
    )


class TestMetricsMerging:
    def test_each_fresh_job_carries_a_snapshot(self, tmp_path):
        results, telemetry = _run(tmp_path, "a", collect_metrics=True)
        assert all(r.metrics is not None for r in results)
        assert telemetry.with_metrics == 2
        merged = telemetry.merged_metrics()
        assert merged["counters"]["core.instructions_total"] == 2 * LENGTH

    def test_merged_snapshot_is_seed_deterministic(self, tmp_path):
        _, t1 = _run(tmp_path, "a", collect_metrics=True)
        _, t2 = _run(tmp_path, "b", collect_metrics=True)
        assert render_snapshot(t1.merged_metrics()) == render_snapshot(
            t2.merged_metrics()
        )

    def test_manifest_records_the_merged_snapshot(self, tmp_path):
        from repro.lab.store import ResultStore

        _, telemetry = _run(tmp_path, "a", collect_metrics=True)
        store = ResultStore(root=tmp_path / "a")
        manifest = json.loads(
            (store.runs_dir / f"{telemetry.run_id}.json").read_text()
        )
        assert manifest["metrics"] == telemetry.merged_metrics()
        assert manifest["counters"]["with_metrics"] == 2

    def test_cache_hits_carry_no_metrics(self, tmp_path):
        _run(tmp_path, "a", collect_metrics=True)
        results, telemetry = _run(tmp_path, "a", collect_metrics=True)
        assert all(r.cache_hit for r in results)
        assert telemetry.merged_metrics() is None

    def test_no_ambient_leakage_after_the_run(self, tmp_path):
        _run(tmp_path, "a", collect_metrics=True, trace=True)
        assert not obs_runtime.metrics_enabled()
        assert not obs_runtime.tracing_enabled()
        assert obs_runtime.trace_dir() is None

    def test_previously_set_env_survives_the_run(self, tmp_path):
        os.environ[obs_runtime.ENV_METRICS] = "1"
        try:
            _run(tmp_path, "a", collect_metrics=True)
            assert os.environ.get(obs_runtime.ENV_METRICS) == "1"
        finally:
            obs_runtime.reset()

    def test_off_by_default(self, tmp_path):
        results, telemetry = _run(tmp_path, "a")
        assert all(r.metrics is None for r in results)
        assert telemetry.merged_metrics() is None


class TestPerJobTraces:
    def test_trace_files_land_under_the_run_directory(self, tmp_path):
        from repro.lab.store import ResultStore

        results, telemetry = _run(tmp_path, "a", trace=True)
        store = ResultStore(root=tmp_path / "a")
        trace_root = store.runs_dir / f"{telemetry.run_id}-traces"
        for result in results:
            assert result.trace_file is not None
            path = trace_root / os.path.basename(result.trace_file)
            assert path.exists()
            records = [
                json.loads(line) for line in path.read_text().splitlines()
            ]
            assert any(r["type"] == "span" for r in records)

    def test_serial_mode_produces_the_same_artifacts(self, tmp_path):
        results_serial, t_serial = run_jobs(
            _jobs(), workers=1, store_root=tmp_path / "serial",
            collect_metrics=True, trace=True,
        )
        _, t_pool = _run(tmp_path, "pool", collect_metrics=True, trace=True)
        assert all(r.trace_file for r in results_serial)
        assert render_snapshot(t_serial.merged_metrics()) == render_snapshot(
            t_pool.merged_metrics()
        )

    def test_no_trace_dir_without_store(self, tmp_path):
        results, _ = run_jobs(
            _jobs(), workers=1, use_cache=False, trace=True
        )
        assert all(r.trace_file is None for r in results)
        assert all(r.metrics is not None for r in results)
