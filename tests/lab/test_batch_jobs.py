"""Batched/sharded simulation jobs: keys, execution, codec, caching."""

import json

import pytest

from repro.lab.codec import (
    batch_from_payload,
    batch_to_payload,
    payload_from_value,
    shard_from_payload,
    shard_to_payload,
    value_from_payload,
)
from repro.lab.jobs import BatchSimJob, ShardSimJob, SweepJob, execute_job
from repro.lab.store import ResultStore
from repro.perf.checkpoint import simulate_shard
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.synthetic import generate_trace
from repro.util.rng import derive_seed
from repro.workloads.spec_profiles import ALL_PROFILES

WORKLOAD = sorted(ALL_PROFILES)[0]


def reference_trace(length=400, seed=2006):
    return generate_trace(
        ALL_PROFILES[WORKLOAD], length, derive_seed(seed, WORKLOAD)
    )


class TestBatchSimJob:
    def test_requires_workload_and_configs(self):
        with pytest.raises(ValueError):
            BatchSimJob(configs=(CoreConfig(),))
        with pytest.raises(ValueError):
            BatchSimJob(workload=WORKLOAD)

    def test_default_label_counts_configs(self):
        job = BatchSimJob(
            workload=WORKLOAD, configs=(CoreConfig(), CoreConfig(rob_size=32))
        )
        assert job.label == f"batch:{WORKLOAD}:2cfg"

    def test_key_covers_every_config(self):
        configs = (CoreConfig(), CoreConfig(rob_size=32))
        base = BatchSimJob(workload=WORKLOAD, configs=configs)
        reordered = BatchSimJob(workload=WORKLOAD, configs=configs[::-1])
        edited = BatchSimJob(
            workload=WORKLOAD,
            configs=(configs[0], CoreConfig(rob_size=48)),
        )
        assert len({base.key(), reordered.key(), edited.key()}) == 3

    def test_execute_matches_scalar_simulation(self):
        configs = (CoreConfig(rob_size=32), CoreConfig(rob_size=128))
        job = BatchSimJob(workload=WORKLOAD, length=400, configs=configs)
        results = job.execute()
        trace = reference_trace()
        for config, result in zip(configs, results):
            assert vars(result) == vars(simulate(trace, config))


class TestShardSimJob:
    def test_validates_span(self):
        with pytest.raises(ValueError):
            ShardSimJob(workload=WORKLOAD, start=100, stop=100)
        with pytest.raises(ValueError):
            ShardSimJob(workload=WORKLOAD, start=-1, stop=10)

    def test_key_separates_spans(self):
        first = ShardSimJob(workload=WORKLOAD, start=0, stop=200)
        second = ShardSimJob(workload=WORKLOAD, start=200, stop=400)
        assert first.key() != second.key()

    def test_execute_matches_direct_shard(self):
        job = ShardSimJob(workload=WORKLOAD, length=400, start=100, stop=300)
        piece = job.execute()
        direct = simulate_shard(reference_trace(), CoreConfig(), 100, 300)
        assert piece.start == direct.start
        assert piece.stop == direct.stop
        assert piece.resume_cycle == direct.resume_cycle
        assert piece.clean == direct.clean
        assert vars(piece.result) == vars(direct.result)


class TestExpandBatched:
    def test_chunks_in_declaration_order(self):
        sweep = SweepJob(
            parameter="rob_size",
            values=(16, 32, 64, 128, 256),
            workload=WORKLOAD,
        )
        jobs = sweep.expand_batched(batch_size=2)
        sizes = [[c.rob_size for c in job.configs] for job in jobs]
        assert sizes == [[16, 32], [64, 128], [256]]

    def test_rejects_inorder_core(self):
        sweep = SweepJob(
            parameter="rob_size", values=(32,), workload=WORKLOAD, core="inorder"
        )
        with pytest.raises(ValueError):
            sweep.expand_batched()

    def test_rejects_bad_batch_size(self):
        sweep = SweepJob(
            parameter="rob_size", values=(32,), workload=WORKLOAD
        )
        with pytest.raises(ValueError):
            sweep.expand_batched(batch_size=0)

    def test_batched_points_equal_scalar_points(self):
        sweep = SweepJob(
            parameter="rob_size",
            values=(32, 64, 128),
            workload=WORKLOAD,
            length=400,
        )
        scalar = [job.execute() for job in sweep.expand()]
        batched = []
        for job in sweep.expand_batched(batch_size=2):
            batched.extend(job.execute())
        for a, b in zip(batched, scalar):
            assert vars(a) == vars(b)


class TestCodec:
    def test_batch_payload_round_trips_through_json(self):
        trace = reference_trace(length=200)
        results = [
            simulate(trace, CoreConfig(rob_size=r)) for r in (32, 128)
        ]
        payload = json.loads(json.dumps(batch_to_payload(results)))
        decoded = batch_from_payload(payload)
        for a, b in zip(decoded, results):
            assert vars(a) == vars(b)

    def test_shard_payload_round_trips_through_json(self):
        piece = simulate_shard(reference_trace(length=300), CoreConfig(), 50, 250)
        payload = json.loads(json.dumps(shard_to_payload(piece)))
        decoded = shard_from_payload(payload)
        assert decoded.start == piece.start
        assert decoded.stop == piece.stop
        assert decoded.resume_cycle == piece.resume_cycle
        assert decoded.clean == piece.clean
        assert vars(decoded.result) == vars(piece.result)

    def test_dispatch_by_value_type(self):
        trace = reference_trace(length=200)
        results = [simulate(trace, CoreConfig())]
        assert payload_from_value(results)["type"] == "simulation_batch"
        piece = simulate_shard(trace, CoreConfig(), 0, 100)
        assert payload_from_value(piece)["type"] == "simulation_shard"

    def test_value_from_payload_inverts_dispatch(self):
        trace = reference_trace(length=200)
        results = [simulate(trace, CoreConfig())]
        decoded = value_from_payload(payload_from_value(results))
        assert vars(decoded[0]) == vars(results[0])

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError):
            batch_from_payload({"type": "simulation_shard"})
        with pytest.raises(ValueError):
            shard_from_payload({"type": "simulation_batch"})


class TestBatchCaching:
    def test_batch_job_store_round_trip(self, tmp_path):
        job = BatchSimJob(
            workload=WORKLOAD,
            length=300,
            configs=(CoreConfig(rob_size=32), CoreConfig(rob_size=64)),
        )
        cold = execute_job(job, str(tmp_path), use_cache=True)
        assert not cold.cache_hit
        warm = execute_job(job, str(tmp_path), use_cache=True)
        assert warm.cache_hit
        assert ResultStore(root=tmp_path).count() == 1
        for a, b in zip(cold.value(job), warm.value(job)):
            assert vars(a) == vars(b)
