"""Tests for the worker pool, failure isolation, and run manifests."""

import json

import pytest

from repro.lab.jobs import JobStatus, SimJob, SweepJob
from repro.lab.pool import resolve_workers, run_experiments, run_jobs
from repro.lab.store import ResultStore


def _sweep_jobs(length=400):
    return SweepJob(
        parameter="rob_size",
        values=(32, 64, 128),
        workload="gzip",
        length=length,
    ).expand()


class TestResolveWorkers:
    def test_explicit(self):
        assert resolve_workers(3) == 3

    def test_floor_is_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1

    def test_default_is_cpu_count(self):
        assert resolve_workers(None) >= 1


class TestSerialExecution:
    def test_results_in_job_order(self, tmp_path):
        jobs = _sweep_jobs()
        results, telemetry = run_jobs(jobs, workers=1, store_root=tmp_path)
        assert [r.label for r in results] == [j.label for j in jobs]
        assert all(r.ok for r in results)
        assert telemetry.total == 3 and telemetry.failed == 0

    def test_sweep_with_injected_failure_completes(self, tmp_path):
        # Acceptance: one failing point degrades to a recorded failure;
        # every other point still returns a result, and the manifest
        # records what broke.
        jobs = _sweep_jobs()
        jobs[1] = SimJob(workload="nosuch", length=400, label="bad-point")
        results, telemetry = run_jobs(jobs, workers=1, store_root=tmp_path)
        assert results[0].ok and results[2].ok
        assert results[1].status == JobStatus.FAILED
        assert "unknown workload" in results[1].error
        # decoded survivors still carry real simulations
        assert results[0].value(jobs[0]).instructions == 400
        # ... and the run manifest records the failure.
        manifests = ResultStore(root=tmp_path).manifests()
        assert manifests
        with open(manifests[0], "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["counters"]["failed"] == 1
        failed_rows = [
            row for row in manifest["jobs"] if row["status"] == "failed"
        ]
        assert len(failed_rows) == 1
        assert failed_rows[0]["label"] == "bad-point"
        assert "unknown workload" in failed_rows[0]["error"]

    def test_warm_rerun_hits_cache(self, tmp_path):
        jobs = _sweep_jobs()
        run_jobs(jobs, workers=1, store_root=tmp_path)
        results, telemetry = run_jobs(jobs, workers=1, store_root=tmp_path)
        assert all(r.status == JobStatus.CACHED for r in results)
        assert telemetry.cached == 3

    def test_no_cache_leaves_no_store(self, tmp_path):
        run_jobs(_sweep_jobs(), workers=1, store_root=tmp_path,
                 use_cache=False)
        assert ResultStore(root=tmp_path).count() == 0

    def test_env_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        run_jobs(_sweep_jobs(), workers=1, store_root=tmp_path)
        assert ResultStore(root=tmp_path).count() == 0


class TestParallelExecution:
    def test_parallel_matches_serial(self, tmp_path):
        jobs = _sweep_jobs()
        serial, _ = run_jobs(jobs, workers=1, store_root=tmp_path / "a")
        parallel, telemetry = run_jobs(
            jobs, workers=2, store_root=tmp_path / "b"
        )
        assert telemetry.workers == 2
        for s, p, job in zip(serial, parallel, jobs):
            assert s.ok and p.ok
            assert s.value(job).cycles == p.value(job).cycles
            assert s.key == p.key

    def test_parallel_isolates_failures(self, tmp_path):
        jobs = _sweep_jobs()
        jobs.append(SimJob(workload="nosuch", length=400))
        results, telemetry = run_jobs(jobs, workers=2, store_root=tmp_path)
        assert [r.ok for r in results] == [True, True, True, False]
        assert telemetry.failed == 1

    def test_parallel_timeout_degrades_to_failure(self, tmp_path):
        jobs = [
            SimJob(workload="gzip", length=300, timeout_s=30.0),
            SimJob(workload="twolf", length=60_000, seed=99,
                   timeout_s=0.001),
        ]
        results, _ = run_jobs(jobs, workers=2, store_root=tmp_path)
        assert results[0].ok
        assert results[1].status == JobStatus.FAILED
        assert "Timeout" in results[1].error


class TestRunExperiments:
    def test_runs_and_decodes(self, tmp_path):
        results, telemetry = run_experiments(
            ["t1"], workers=1, store_root=tmp_path
        )
        assert results[0].experiment_id == "t1"
        assert telemetry.failed == 0

    def test_failed_experiment_yields_none(self, tmp_path):
        results, telemetry = run_experiments(
            ["t1", "zz9"], workers=1, store_root=tmp_path
        )
        assert results[0] is not None
        assert results[1] is None
        assert telemetry.failed == 1
        assert "unknown experiment" in telemetry.failures()[0].error

    def test_warm_rerun_is_cached(self, tmp_path):
        run_experiments(["t1"], workers=1, store_root=tmp_path)
        _, telemetry = run_experiments(["t1"], workers=1,
                                       store_root=tmp_path)
        assert telemetry.cached == 1


class TestTelemetry:
    def test_summary_mentions_counts(self, tmp_path):
        _, telemetry = run_jobs(_sweep_jobs(), workers=1,
                                store_root=tmp_path)
        text = telemetry.summary()
        assert "3 jobs" in text
        assert "workers=1" in text

    def test_manifest_written_per_run(self, tmp_path):
        run_jobs(_sweep_jobs(), workers=1, store_root=tmp_path)
        run_jobs(_sweep_jobs(), workers=1, store_root=tmp_path)
        assert len(ResultStore(root=tmp_path).manifests()) == 2
