"""Byte-level determinism: same config + seed ⇒ identical results.

The lab's content-addressed store and the analysis pack both assume a
simulation is a pure function of (trace, config). Serialize two
back-to-back runs through lab.codec and compare the exact bytes.
"""

from __future__ import annotations

import json

import pytest

from repro.lab.codec import result_to_payload
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.pipeline.inorder import simulate_inorder
from repro.trace.synthetic import generate_trace
from repro.workloads.spec_profiles import SPEC_PROFILES


def canonical_bytes(result) -> bytes:
    return json.dumps(
        result_to_payload(result), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


@pytest.mark.parametrize("workload", ["gzip", "mcf"])
def test_back_to_back_simulations_are_byte_identical(workload):
    config = CoreConfig()
    first = simulate(
        generate_trace(SPEC_PROFILES[workload], 6_000, seed=2006), config
    )
    second = simulate(
        generate_trace(SPEC_PROFILES[workload], 6_000, seed=2006), config
    )
    assert canonical_bytes(first) == canonical_bytes(second)


def test_inorder_model_is_deterministic_too():
    config = CoreConfig()
    trace = generate_trace(SPEC_PROFILES["twolf"], 6_000, seed=7)
    first = simulate_inorder(trace, config)
    second = simulate_inorder(trace, config)
    assert first == second


def test_different_seed_changes_the_bytes():
    config = CoreConfig()
    a = simulate(generate_trace(SPEC_PROFILES["gzip"], 6_000, seed=1), config)
    b = simulate(generate_trace(SPEC_PROFILES["gzip"], 6_000, seed=2), config)
    assert canonical_bytes(a) != canonical_bytes(b)


def test_different_config_changes_the_bytes():
    trace = generate_trace(SPEC_PROFILES["gzip"], 6_000, seed=1)
    a = simulate(trace, CoreConfig())
    b = simulate(trace, CoreConfig(rob_size=32))
    assert canonical_bytes(a) != canonical_bytes(b)
