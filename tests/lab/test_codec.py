"""Round-trip tests for the store's JSON codecs."""

import pytest

from repro.harness.experiment import ExperimentResult
from repro.lab.codec import (
    experiment_from_payload,
    experiment_to_payload,
    payload_from_value,
    result_from_payload,
    result_to_payload,
    value_from_payload,
)
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.synthetic import generate_trace
from repro.workloads.spec_profiles import SPEC_PROFILES


@pytest.fixture(scope="module")
def sim_result():
    trace = generate_trace(SPEC_PROFILES["gzip"], 2_000, seed=9)
    return simulate(trace, CoreConfig())


class TestSimulationResultCodec:
    def test_roundtrip_is_faithful(self, sim_result):
        decoded = result_from_payload(result_to_payload(sim_result))
        assert decoded.instructions == sim_result.instructions
        assert decoded.cycles == sim_result.cycles
        assert decoded.events == sim_result.events
        assert decoded.dispatch_cycle == sim_result.dispatch_cycle
        assert decoded.issue_cycle == sim_result.issue_cycle
        assert decoded.complete_cycle == sim_result.complete_cycle
        assert decoded.commit_cycle == sim_result.commit_cycle
        assert decoded.fu_issue_counts == sim_result.fu_issue_counts
        assert decoded.rob_peak_occupancy == sim_result.rob_peak_occupancy
        assert decoded.squashed_ghosts == sim_result.squashed_ghosts

    def test_roundtrip_survives_json(self, sim_result):
        import json

        blob = json.dumps(result_to_payload(sim_result))
        decoded = result_from_payload(json.loads(blob))
        assert decoded.events == sim_result.events
        assert decoded.ipc == sim_result.ipc

    def test_interval_analysis_agrees_on_decoded_result(self, sim_result):
        from repro.interval.penalty import measure_penalties

        decoded = result_from_payload(result_to_payload(sim_result))
        a = measure_penalties(sim_result)
        b = measure_penalties(decoded)
        assert a.count == b.count
        assert a.mean_penalty == b.mean_penalty
        assert a.mean_resolution == b.mean_resolution

    def test_rejects_wrong_type(self):
        with pytest.raises(ValueError):
            result_from_payload({"type": "experiment_result"})


class TestExperimentResultCodec:
    def test_roundtrip(self):
        result = ExperimentResult(
            experiment_id="f2",
            title="demo",
            headers=["a", "b"],
            rows=[["x", 1.5], ["y", 2.5]],
            series={"b": [1.5, 2.5]},
            notes="note",
        )
        decoded = experiment_from_payload(experiment_to_payload(result))
        assert decoded.experiment_id == result.experiment_id
        assert decoded.headers == list(result.headers)
        assert decoded.rows == [list(r) for r in result.rows]
        assert decoded.series == result.series
        assert decoded.notes == result.notes
        assert decoded.render() == result.render()

    def test_rejects_wrong_type(self):
        with pytest.raises(ValueError):
            experiment_from_payload({"type": "simulation_result"})


class TestGenericCodec:
    def test_dispatches_by_value_type(self, sim_result):
        payload = payload_from_value(sim_result)
        assert payload["type"] == "simulation_result"
        assert value_from_payload(payload).cycles == sim_result.cycles

    def test_unknown_value_raises(self):
        with pytest.raises(TypeError):
            payload_from_value(object())

    def test_unknown_payload_raises(self):
        with pytest.raises(ValueError):
            value_from_payload({"type": "mystery"})
