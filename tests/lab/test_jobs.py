"""Unit tests for job specs and the single-job execution engine."""

from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.harness.experiment import ExperimentResult
from repro.lab.jobs import (
    ExperimentJob,
    JobSpec,
    JobStatus,
    SimJob,
    SweepJob,
    execute_job,
)
from repro.lab.store import ResultStore
from repro.pipeline.config import CoreConfig
from repro.pipeline.result import SimulationResult


@dataclass(frozen=True)
class FlakyJob(JobSpec):
    """Fails ``fail_times`` times, then succeeds (counter on disk)."""

    marker: str = ""
    fail_times: int = 2

    def key(self) -> str:
        return "f" * 64

    def execute(self):
        path = Path(self.marker)
        count = int(path.read_text()) if path.exists() else 0
        path.write_text(str(count + 1))
        if count < self.fail_times:
            raise RuntimeError(f"flaky failure #{count + 1}")
        return ExperimentResult(
            experiment_id="flaky", title="t", headers=["h"], rows=[[1]]
        )


class TestSimJob:
    def test_validates_core(self):
        with pytest.raises(ValueError):
            SimJob(workload="gzip", core="quantum")

    def test_requires_workload(self):
        with pytest.raises(ValueError):
            SimJob()

    def test_default_label(self):
        job = SimJob(workload="gzip")
        assert job.label == "sim:ooo:gzip"

    def test_execute_matches_runner(self):
        # The job must compute exactly what the harness runner computes
        # for the same (workload, length, seed, config) identity.
        from repro.harness.runner import clear_caches, simulate_workload

        clear_caches()
        job = SimJob(workload="gzip", length=500, seed=7)
        direct = job.execute()
        assert isinstance(direct, SimulationResult)
        via_runner = simulate_workload("gzip", length=500, seed=7)
        assert direct.cycles == via_runner.cycles
        assert direct.events == via_runner.events

    def test_inorder_core(self):
        job = SimJob(workload="gzip", length=500, core="inorder")
        result = job.execute()
        assert result.instructions == 500

    def test_key_separates_cores(self):
        ooo = SimJob(workload="gzip", length=500)
        ino = SimJob(workload="gzip", length=500, core="inorder")
        assert ooo.key() != ino.key()


class TestExperimentJob:
    def test_requires_id(self):
        with pytest.raises(ValueError):
            ExperimentJob()

    def test_key_separates_experiments(self):
        assert (
            ExperimentJob(experiment_id="t1").key()
            != ExperimentJob(experiment_id="f2").key()
        )

    def test_execute_decodes(self):
        job = ExperimentJob(experiment_id="t1")
        result = execute_job(job, None, use_cache=False)
        assert result.ok
        decoded = result.value(job)
        assert decoded.experiment_id == "t1"


class TestSweepJob:
    def test_expands_to_config_points(self):
        sweep = SweepJob(
            parameter="rob_size",
            values=(32, 64, 128),
            workload="gzip",
            length=500,
        )
        jobs = sweep.expand()
        assert [j.config.rob_size for j in jobs] == [32, 64, 128]
        assert len({j.key() for j in jobs}) == 3
        assert all(j.workload == "gzip" for j in jobs)

    def test_points_inherit_failure_policy(self):
        sweep = SweepJob(
            parameter="rob_size",
            values=(32,),
            workload="gzip",
            timeout_s=5.0,
            retries=2,
        )
        job = sweep.expand()[0]
        assert job.timeout_s == 5.0
        assert job.retries == 2


class TestExecuteJob:
    def test_failure_is_captured_not_raised(self):
        result = execute_job(
            SimJob(workload="nosuch", length=100), None, use_cache=False
        )
        assert result.status == JobStatus.FAILED
        assert "unknown workload" in result.error
        assert result.payload is None

    def test_retry_with_backoff_until_success(self, tmp_path):
        job = FlakyJob(
            marker=str(tmp_path / "count"),
            fail_times=2,
            retries=2,
            backoff_s=0.001,
        )
        result = execute_job(job, None, use_cache=False)
        assert result.status == JobStatus.OK
        assert result.attempts == 3

    def test_retries_exhausted_records_last_error(self, tmp_path):
        job = FlakyJob(
            marker=str(tmp_path / "count"),
            fail_times=10,
            retries=1,
            backoff_s=0.001,
        )
        result = execute_job(job, None, use_cache=False)
        assert result.status == JobStatus.FAILED
        assert "flaky failure #2" in result.error
        assert result.attempts == 2

    def test_store_roundtrip_and_cache_hit(self, tmp_path):
        job = SimJob(workload="gzip", length=400)
        cold = execute_job(job, str(tmp_path), use_cache=True)
        assert cold.status == JobStatus.OK and not cold.cache_hit
        warm = execute_job(job, str(tmp_path), use_cache=True)
        assert warm.status == JobStatus.CACHED and warm.cache_hit
        assert warm.value(job).cycles == cold.value(job).cycles
        assert ResultStore(root=tmp_path).count() == 1

    def test_use_cache_false_skips_store(self, tmp_path):
        job = SimJob(workload="gzip", length=400)
        execute_job(job, str(tmp_path), use_cache=False)
        assert ResultStore(root=tmp_path).count() == 0
