"""Unit tests for the prefetchers."""

import pytest

from repro.memory.cache import Cache
from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig, MissClass
from repro.memory.prefetch import (
    NextLinePrefetcher,
    PrefetchingHierarchyAdapter,
    StridePrefetcher,
)


def small_cache():
    return Cache(size_bytes=4096, ways=4, line_bytes=64)


class TestNextLine:
    def test_prefetches_next_line(self):
        cache = small_cache()
        prefetcher = NextLinePrefetcher(cache, degree=1)
        cache.access(0x1000)
        prefetcher.on_demand_access(0x1000, hit=False)
        assert cache.lookup(0x1040)

    def test_degree_controls_depth(self):
        cache = small_cache()
        prefetcher = NextLinePrefetcher(cache, degree=3)
        cache.access(0x1000)
        issued = prefetcher.on_demand_access(0x1000, hit=False)
        assert issued == [0x1040, 0x1080, 0x10C0]

    def test_no_duplicate_prefetch_of_resident_line(self):
        cache = small_cache()
        prefetcher = NextLinePrefetcher(cache)
        cache.access(0x1040)
        cache.access(0x1000)
        assert prefetcher.on_demand_access(0x1000, hit=False) == []

    def test_usefulness_tracked(self):
        cache = small_cache()
        prefetcher = NextLinePrefetcher(cache)
        cache.access(0x1000)
        prefetcher.on_demand_access(0x1000, hit=False)
        prefetcher.on_demand_access(0x1040, hit=True)  # the prefetched line
        assert prefetcher.stats.useful == 1
        # the access to 0x1040 itself issued a prefetch of 0x1080
        assert prefetcher.stats.issued == 2
        assert prefetcher.stats.accuracy == 0.5

    def test_sequential_stream_perfect_accuracy(self):
        cache = small_cache()
        prefetcher = NextLinePrefetcher(cache)
        for i in range(32):
            address = 0x2000 + 64 * i
            cache.access(address)
            prefetcher.on_demand_access(address, hit=False)
        assert prefetcher.stats.accuracy > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(small_cache(), degree=0)


class TestStride:
    def test_arms_after_two_equal_strides(self):
        cache = small_cache()
        prefetcher = StridePrefetcher(cache, degree=1)
        pc = 0x400
        issued = []
        for i in range(4):
            address = 0x8000 + 256 * i
            issued = prefetcher.on_demand_access(pc, address, hit=False)
        assert issued  # armed by now
        assert cache.lookup(0x8000 + 256 * 4)

    def test_irregular_stream_never_arms(self):
        cache = small_cache()
        prefetcher = StridePrefetcher(cache)
        pc = 0x400
        for address in (0x1000, 0x5000, 0x2000, 0x9000, 0x3000):
            prefetcher.on_demand_access(pc, address, hit=False)
        assert prefetcher.stats.issued == 0

    def test_distinct_pcs_distinct_entries(self):
        cache = small_cache()
        prefetcher = StridePrefetcher(cache, degree=1)
        for i in range(4):
            prefetcher.on_demand_access(0x400, 0x8000 + 64 * i, hit=False)
            prefetcher.on_demand_access(0x404, 0x20000 + 128 * i, hit=False)
        assert prefetcher.stats.issued > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            StridePrefetcher(small_cache(), entries=100)
        with pytest.raises(ValueError):
            StridePrefetcher(small_cache(), degree=0)


class TestAdapter:
    def make(self, **kwargs):
        hierarchy = CacheHierarchy(
            HierarchyConfig(l1i_size=2048, l1i_ways=2, l1d_size=2048,
                            l1d_ways=2, l2_size=16384, l2_ways=4)
        )
        return (
            PrefetchingHierarchyAdapter(hierarchy, **kwargs),
            hierarchy,
        )

    def test_passthrough_without_prefetchers(self):
        adapter, hierarchy = self.make()
        outcome = adapter.access_data(0x9000)
        assert outcome.miss_class is MissClass.LONG
        assert hierarchy.l1d.stats.accesses == 1

    def test_stride_prefetching_raises_hit_rate(self):
        adapter, hierarchy = self.make()
        adapter.data_prefetcher = StridePrefetcher(hierarchy.l1d, degree=4)
        baseline_adapter, baseline = self.make()
        pc = 0x100
        for i in range(512):
            address = 0x40000 + 64 * i
            adapter.access_data(address, pc=pc)
            baseline_adapter.access_data(address, pc=pc)
        assert (
            hierarchy.l1d.stats.miss_rate < baseline.l1d.stats.miss_rate
        )

    def test_nextline_prefetching_cuts_instruction_misses(self):
        adapter, hierarchy = self.make()
        adapter.instruction_prefetcher = NextLinePrefetcher(
            hierarchy.l1i, degree=2
        )
        baseline_adapter, baseline = self.make()
        for i in range(256):
            pc = 0x1000 + 64 * i
            adapter.access_instruction(pc)
            baseline_adapter.access_instruction(pc)
        assert (
            hierarchy.l1i.stats.miss_rate < baseline.l1i.stats.miss_rate
        )

    def test_exposes_hierarchy_surface(self):
        adapter, hierarchy = self.make()
        assert adapter.l1i is hierarchy.l1i
        assert adapter.l2 is hierarchy.l2
        assert adapter.config is hierarchy.config
        adapter.access_data(0)
        assert "l1d" in adapter.miss_rates()
