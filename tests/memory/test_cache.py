"""Unit tests for the set-associative cache."""

import pytest

from repro.memory.cache import Cache


def small_cache(**kwargs):
    defaults = dict(size_bytes=1024, ways=2, line_bytes=64, name="test")
    defaults.update(kwargs)
    return Cache(**defaults)


class TestGeometry:
    def test_set_count(self):
        cache = small_cache()
        assert cache.sets == 1024 // (2 * 64)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=1000, ways=2, line_bytes=64)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=1024, ways=2, line_bytes=48)

    def test_compose_decompose_round_trip(self):
        cache = small_cache()
        for address in (0x0, 0x40, 0x1000, 0xABC0):
            set_index, tag = cache._decompose(address)
            line_address = cache._compose(set_index, tag)
            assert line_address == address - address % 64


class TestAccessBehaviour:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x100).hit
        assert cache.access(0x100).hit

    def test_same_line_hits(self):
        cache = small_cache()
        cache.access(0x100)
        assert cache.access(0x13F).hit  # same 64B line
        assert not cache.access(0x140).hit  # next line

    def test_stats_consistency(self):
        cache = small_cache()
        for address in (0, 64, 0, 128, 0, 64):
            cache.access(address)
        stats = cache.stats
        assert stats.accesses == 6
        assert stats.hits + stats.misses == stats.accesses
        assert stats.miss_rate == pytest.approx(stats.misses / 6)
        assert stats.hit_rate == pytest.approx(1 - stats.miss_rate)

    def test_lru_eviction_order(self):
        # one set, two ways: A, B fill; touch A; C evicts B.
        cache = Cache(size_bytes=128, ways=2, line_bytes=64)
        assert cache.sets == 1
        cache.access(0x000)  # A
        cache.access(0x040)  # B
        cache.access(0x000)  # touch A
        result = cache.access(0x080)  # C evicts B
        assert result.evicted_address == 0x040
        assert cache.access(0x000).hit
        assert not cache.access(0x040).hit

    def test_working_set_within_capacity_all_hits(self):
        cache = small_cache()
        lines = [i * 64 for i in range(cache.sets * cache.ways)]
        for address in lines:
            cache.access(address)
        for address in lines:
            assert cache.access(address).hit

    def test_occupancy_bounded(self):
        cache = small_cache()
        for i in range(1000):
            cache.access(i * 64)
        assert cache.occupancy <= cache.sets * cache.ways


class TestWriteBack:
    def test_dirty_eviction_reports_writeback(self):
        cache = Cache(size_bytes=128, ways=2, line_bytes=64)
        cache.access(0x000, is_write=True)
        cache.access(0x040)
        result = cache.access(0x080)  # evicts dirty 0x000
        assert result.writeback
        assert result.evicted_address == 0x000
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = Cache(size_bytes=128, ways=2, line_bytes=64)
        cache.access(0x000)
        cache.access(0x040)
        assert not cache.access(0x080).writeback

    def test_write_hit_marks_dirty(self):
        cache = Cache(size_bytes=128, ways=2, line_bytes=64)
        cache.access(0x000)  # clean fill
        cache.access(0x000, is_write=True)  # dirty it
        cache.access(0x040)
        assert cache.access(0x080).writeback


class TestMaintenance:
    def test_invalidate(self):
        cache = small_cache()
        cache.access(0x100)
        assert cache.invalidate(0x100)
        assert not cache.access(0x100).hit

    def test_invalidate_absent_returns_false(self):
        assert not small_cache().invalidate(0x100)

    def test_flush_empties_cache(self):
        cache = small_cache()
        for i in range(8):
            cache.access(i * 64)
        cache.flush()
        assert cache.occupancy == 0
        assert not cache.access(0).hit

    def test_lookup_has_no_side_effects(self):
        cache = small_cache()
        cache.access(0x100)
        before = cache.stats.accesses
        assert cache.lookup(0x100)
        assert not cache.lookup(0x999000)
        assert cache.stats.accesses == before

    def test_resident_lines_match_contents(self):
        cache = small_cache()
        addresses = [0x0, 0x40, 0x1000]
        for address in addresses:
            cache.access(address)
        resident = set(cache.resident_lines())
        for address in addresses:
            assert address - address % 64 in resident


class TestPolicies:
    def test_fifo_policy_behaviour(self):
        cache = Cache(size_bytes=128, ways=2, line_bytes=64, policy="fifo")
        cache.access(0x000)
        cache.access(0x040)
        cache.access(0x000)  # hit; FIFO ignores
        result = cache.access(0x080)
        assert result.evicted_address == 0x000  # oldest fill, despite reuse

    def test_random_policy_deterministic(self):
        a = Cache(size_bytes=128, ways=2, line_bytes=64, policy="random", seed=7)
        b = Cache(size_bytes=128, ways=2, line_bytes=64, policy="random", seed=7)
        sequence = [i * 64 for i in range(50)]
        evictions_a = [a.access(addr).evicted_address for addr in sequence]
        evictions_b = [b.access(addr).evicted_address for addr in sequence]
        assert evictions_a == evictions_b
