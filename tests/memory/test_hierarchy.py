"""Unit tests for the cache hierarchy."""

import pytest

from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig, MissClass


def tiny_hierarchy(**overrides):
    config = HierarchyConfig(
        l1i_size=1024,
        l1i_ways=2,
        l1d_size=1024,
        l1d_ways=2,
        l2_size=8192,
        l2_ways=4,
        **overrides,
    )
    return CacheHierarchy(config)


class TestConfigValidation:
    def test_default_valid(self):
        HierarchyConfig()

    def test_latency_ordering_enforced(self):
        with pytest.raises(ValueError, match="latencies"):
            HierarchyConfig(l1_latency=20, l2_latency=10)
        with pytest.raises(ValueError):
            HierarchyConfig(l2_latency=300, memory_latency=250)


class TestDataPath:
    def test_cold_access_is_long_miss(self):
        hierarchy = tiny_hierarchy()
        outcome = hierarchy.access_data(0x10000)
        assert outcome.miss_class is MissClass.LONG
        assert outcome.latency == hierarchy.config.memory_latency

    def test_warm_access_is_l1_hit(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_data(0x10000)
        outcome = hierarchy.access_data(0x10000)
        assert outcome.miss_class is MissClass.L1_HIT
        assert outcome.latency == hierarchy.config.l1_latency

    def test_l1_evicted_but_l2_resident_is_short_miss(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_data(0x10000)
        # Walk a footprint larger than L1 but within L2 to evict 0x10000
        # from L1 while it stays in L2.
        for i in range(1, 64):
            hierarchy.access_data(0x10000 + i * 64)
        outcome = hierarchy.access_data(0x10000)
        assert outcome.miss_class is MissClass.SHORT
        assert outcome.latency == hierarchy.config.l2_latency

    def test_memory_read_counted(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_data(0x10000)
        assert hierarchy.memory.reads == 1

    def test_writeback_path_reaches_l2(self):
        hierarchy = tiny_hierarchy()
        # dirty a line, then evict it from L1 by filling its set
        hierarchy.access_data(0x10000, is_write=True)
        target_set = 0x10000 >> 6 & (hierarchy.l1d.sets - 1)
        fills = 0
        addr = 0x20000
        while fills < hierarchy.l1d.ways:
            if (addr >> 6) & (hierarchy.l1d.sets - 1) == target_set:
                hierarchy.access_data(addr)
                fills += 1
            addr += 64
        # the dirty line must now be present (dirty) in L2
        assert hierarchy.l2.lookup(0x10000)


class TestInstructionPath:
    def test_cold_fetch_long(self):
        hierarchy = tiny_hierarchy()
        outcome = hierarchy.access_instruction(0x1000)
        assert outcome.miss_class is MissClass.LONG

    def test_warm_fetch_hits(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_instruction(0x1000)
        assert (
            hierarchy.access_instruction(0x1000).miss_class is MissClass.L1_HIT
        )

    def test_l1i_and_l1d_are_split(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_instruction(0x1000)
        # data access to the same address must not hit (split L1s)
        assert hierarchy.access_data(0x1000).miss_class is not MissClass.L1_HIT

    def test_l2_shared_between_i_and_d(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_instruction(0x3000)  # fills L2
        outcome = hierarchy.access_data(0x3000)
        assert outcome.miss_class is MissClass.SHORT  # L1D miss, L2 hit


class TestMissRates:
    def test_miss_rates_keys(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_data(0)
        rates = hierarchy.miss_rates()
        assert set(rates) == {"l1i", "l1d", "l2"}

    def test_streaming_pattern_miss_rate(self):
        hierarchy = tiny_hierarchy()
        # 8-byte stride: one miss per 64B line -> 1/8 miss rate
        for i in range(4096):
            hierarchy.access_data(0x100000 + 8 * i)
        assert hierarchy.l1d.stats.miss_rate == pytest.approx(1 / 8, abs=0.01)
