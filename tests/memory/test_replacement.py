"""Unit tests for replacement policies."""

import pytest

from repro.memory.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PLRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_evicts_least_recently_used(self):
        policy = LRUPolicy(sets=1, ways=4)
        for way in range(4):
            policy.on_fill(0, way)
        policy.on_access(0, 0)  # refresh way 0
        assert policy.victim_way(0) == 1

    def test_initial_victim_is_way_zero(self):
        policy = LRUPolicy(sets=1, ways=4)
        assert policy.victim_way(0) == 0

    def test_sets_independent(self):
        policy = LRUPolicy(sets=2, ways=2)
        policy.on_fill(0, 1)
        assert policy.victim_way(1) == 0

    def test_repeated_access_stays_mru(self):
        policy = LRUPolicy(sets=1, ways=2)
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        for _ in range(5):
            policy.on_access(0, 0)
        assert policy.victim_way(0) == 1


class TestFIFO:
    def test_evicts_oldest_fill(self):
        policy = FIFOPolicy(sets=1, ways=3)
        policy.on_fill(0, 2)
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        assert policy.victim_way(0) == 2

    def test_hits_do_not_reorder(self):
        policy = FIFOPolicy(sets=1, ways=2)
        policy.on_fill(0, 0)
        policy.on_fill(0, 1)
        policy.on_access(0, 0)  # does not refresh
        assert policy.victim_way(0) == 0


class TestRandom:
    def test_victims_in_range(self):
        policy = RandomPolicy(sets=1, ways=4, seed=1)
        for _ in range(100):
            assert 0 <= policy.victim_way(0) < 4

    def test_deterministic_with_seed(self):
        a = RandomPolicy(sets=1, ways=8, seed=5)
        b = RandomPolicy(sets=1, ways=8, seed=5)
        assert [a.victim_way(0) for _ in range(20)] == [
            b.victim_way(0) for _ in range(20)
        ]

    def test_covers_all_ways(self):
        policy = RandomPolicy(sets=1, ways=4, seed=3)
        assert {policy.victim_way(0) for _ in range(200)} == {0, 1, 2, 3}


class TestPLRU:
    def test_requires_power_of_two_ways(self):
        with pytest.raises(ValueError):
            PLRUPolicy(sets=1, ways=3)

    def test_victim_avoids_recent_access(self):
        policy = PLRUPolicy(sets=1, ways=4)
        policy.on_access(0, 2)
        assert policy.victim_way(0) != 2

    def test_fills_then_victim_is_untouched_way(self):
        policy = PLRUPolicy(sets=1, ways=2)
        policy.on_fill(0, 0)
        assert policy.victim_way(0) == 1
        policy.on_fill(0, 1)
        assert policy.victim_way(0) == 0

    def test_single_way(self):
        policy = PLRUPolicy(sets=1, ways=1)
        policy.on_access(0, 0)
        assert policy.victim_way(0) == 0

    def test_plru_approximates_lru_on_sequential(self):
        policy = PLRUPolicy(sets=1, ways=4)
        for way in (0, 1, 2, 3):
            policy.on_fill(0, way)
        # way 0 is the stalest; tree PLRU should pick it
        assert policy.victim_way(0) == 0


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy),
        ("fifo", FIFOPolicy),
        ("random", RandomPolicy),
        ("plru", PLRUPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name, 4, 4), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU", 2, 2), LRUPolicy)

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            make_policy("mru", 2, 2)

    def test_bad_geometry_raises(self):
        with pytest.raises(ValueError):
            LRUPolicy(sets=0, ways=2)
