"""Unit tests for the main memory model."""

import pytest

from repro.memory.main_memory import MainMemory


class TestMainMemory:
    def test_read_returns_latency(self):
        memory = MainMemory(latency=200)
        assert memory.read(0x1000) == 200

    def test_write_returns_latency(self):
        memory = MainMemory(latency=200)
        assert memory.write(0x1000) == 200

    def test_access_counting(self):
        memory = MainMemory()
        memory.read(0)
        memory.read(4)
        memory.write(8)
        assert memory.reads == 2
        assert memory.writes == 1
        assert memory.accesses == 3

    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError):
            MainMemory(latency=0)
