"""Cross-model consistency: every estimator, one set of traces.

The library contains four ways to get a cycle count — the cycle-level
out-of-order core, the in-order core, one-pass interval simulation, and
the first-order interval model — plus trace transforms that produce
counterfactual workloads. These tests pin down the orderings and error
bounds that must hold among them on shared traces.
"""

import pytest

from repro.interval.fast_sim import FastIntervalSimulator
from repro.interval.model import IntervalModel
from repro.interval.penalty import measure_penalties
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.pipeline.inorder import simulate_inorder
from repro.trace.synthetic import generate_trace
from repro.trace.transforms import (
    with_perfect_branches,
    with_perfect_dcache,
    with_perfect_frontend,
    with_perfect_icache,
)
from repro.workloads.spec_profiles import SPEC_PROFILES

NAMES = ("gzip", "parser", "twolf")
N = 15_000


@pytest.fixture(scope="module")
def bundles():
    """(trace, detailed, inorder, fast, model_prediction) per workload."""
    config = CoreConfig()
    out = {}
    for name in NAMES:
        trace = generate_trace(SPEC_PROFILES[name], N, seed=777)
        detailed = simulate(trace, config)
        in_order = simulate_inorder(trace, config)
        fast = FastIntervalSimulator(config).estimate(trace)
        model = IntervalModel(config).predict(trace)
        out[name] = (trace, detailed, in_order, fast, model)
    return config, out


class TestOrderings:
    def test_inorder_never_beats_ooo(self, bundles):
        _, out = bundles
        for name, (_t, detailed, in_order, _f, _m) in out.items():
            assert in_order.cycles >= detailed.cycles, name

    def test_width_bound_holds_for_all(self, bundles):
        config, out = bundles
        lower = N / config.dispatch_width
        for name, (_t, detailed, in_order, fast, model) in out.items():
            assert detailed.cycles >= lower
            assert in_order.cycles >= lower
            assert fast.cycles >= lower
            assert model.cycles >= lower

    def test_analytical_estimators_bracket_detailed(self, bundles):
        _, out = bundles
        for name, (_t, detailed, _i, fast, model) in out.items():
            assert abs(fast.error_vs(detailed)) < 0.20, name
            assert abs(model.error_vs(detailed)) < 0.30, name

    def test_event_counts_agree_everywhere(self, bundles):
        _, out = bundles
        for name, (trace, detailed, in_order, fast, model) in out.items():
            expected = len(trace.mispredicted_indices())
            assert len(detailed.mispredict_events) == expected
            assert len(in_order.mispredict_events) == expected
            assert fast.mispredict_count == expected
            assert model.mispredict_count == expected


class TestCounterfactualOrderings:
    def test_each_perfect_transform_helps_every_simulator(self, bundles):
        config, out = bundles
        for name, (trace, detailed, in_order, _f, _m) in out.items():
            for transform in (
                with_perfect_branches,
                with_perfect_icache,
                with_perfect_dcache,
            ):
                ideal_trace = transform(trace)
                assert simulate(ideal_trace, config).cycles <= detailed.cycles
                assert (
                    simulate_inorder(ideal_trace, config).cycles
                    <= in_order.cycles
                )

    def test_perfect_frontend_dominates_single_transforms(self, bundles):
        config, out = bundles
        for name, (trace, _d, _i, _f, _m) in out.items():
            both = simulate(with_perfect_frontend(trace), config)
            only_branches = simulate(with_perfect_branches(trace), config)
            only_icache = simulate(with_perfect_icache(trace), config)
            assert both.cycles <= only_branches.cycles
            assert both.cycles <= only_icache.cycles

    def test_perfect_branches_removes_bpred_component(self, bundles):
        config, out = bundles
        for name, (trace, _d, _i, _f, _m) in out.items():
            ideal = simulate(with_perfect_branches(trace), config)
            assert measure_penalties(ideal).count == 0


class TestPenaltyAgreement:
    def test_fast_penalty_tracks_measured(self, bundles):
        _, out = bundles
        for name, (_t, detailed, _i, fast, _m) in out.items():
            measured = measure_penalties(detailed).mean_penalty
            assert fast.mean_penalty == pytest.approx(measured, rel=0.35), name

    def test_inorder_penalty_below_ooo(self, bundles):
        _, out = bundles
        for name, (_t, detailed, in_order, _f, _m) in out.items():
            ooo = measure_penalties(detailed).mean_penalty
            ino = measure_penalties(in_order).mean_penalty
            assert ino < ooo, name
