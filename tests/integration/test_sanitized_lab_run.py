"""Sanitized sweep over the full experiment set (slow tier).

Runs every registered experiment through the lab pool with
``REPRO_SANITIZE=1`` against a throwaway store, then asserts the run
manifest records the sanitizer coverage and zero invariant violations
— the ISSUE's end-to-end acceptance gate.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import sanitizer
from repro.harness.experiments import EXPERIMENTS
from repro.lab.pool import run_experiments

pytestmark = pytest.mark.slow


@pytest.fixture(autouse=True)
def clean_sanitizer_state(monkeypatch):
    sanitizer.reset()
    monkeypatch.setenv(sanitizer.ENV_VAR, "1")
    yield
    sanitizer.reset()


def test_full_experiment_set_runs_clean_under_the_sanitizer(tmp_path):
    ids = list(EXPERIMENTS)
    results, telemetry = run_experiments(
        ids, workers=2, store_root=tmp_path / "store"
    )

    assert len(results) == len(ids)
    assert not telemetry.failures(), telemetry.summary()
    assert telemetry.sanitizer_violations == 0, telemetry.summary()

    # Simulation-bearing experiments must actually have been checked;
    # pure table experiments legitimately report no sanitizer window.
    sanitized = [r for r in telemetry.records if r.sanitizer is not None]
    assert sanitized, "no job attached a sanitizer report"
    for record in sanitized:
        assert record.sanitizer["ok"] is True
        assert record.sanitizer["checks_run"] > 0
        assert record.sanitizer["violations"] == []

    # The persisted manifest carries the same accounting. (The runs dir
    # also holds the canonical <run_id>.merged.json, which deliberately
    # excludes volatile counters — skip it.)
    manifests = sorted(
        path for path in (tmp_path / "store" / "runs").glob("*.json")
        if not path.name.endswith(".merged.json")
    )
    assert manifests
    manifest = json.loads(manifests[-1].read_text(encoding="utf-8"))
    assert manifest["counters"]["sanitized"] == len(sanitized)
    assert manifest["counters"]["sanitizer_violations"] == 0
