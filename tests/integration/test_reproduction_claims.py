"""The paper's headline claims, checked end-to-end on the suite.

These tests ARE the reproduction: each asserts one of the paper's
qualitative results on freshly simulated workloads (smaller than the
benchmark harness for test-suite speed, but the shapes must hold).
"""

import pytest

from repro.interval.contributors import decompose_contributors
from repro.interval.penalty import bucket_resolution_by_gap, measure_penalties
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.synthetic import generate_trace
from repro.workloads.spec_profiles import SPEC_PROFILES

N = 25_000
NAMES = ("gzip", "mcf", "crafty", "parser", "twolf")


@pytest.fixture(scope="module")
def suite_runs():
    config = CoreConfig()
    runs = {}
    for name in NAMES:
        trace = generate_trace(SPEC_PROFILES[name], N, seed=1620789)
        runs[name] = (trace, simulate(trace, config))
    return config, runs


class TestClaim1PenaltyExceedsFrontend:
    """'The branch misprediction penalty can be substantially larger
    than the frontend pipeline length.'"""

    def test_every_workload_exceeds_refill(self, suite_runs):
        config, runs = suite_runs
        for name, (_, result) in runs.items():
            report = measure_penalties(result)
            assert report.mean_penalty > 2 * config.frontend_depth, name

    def test_penalty_equals_resolution_plus_refill(self, suite_runs):
        config, runs = suite_runs
        for _, (_, result) in runs.items():
            for event in result.mispredict_events:
                assert event.penalty == event.resolution + config.frontend_depth


class TestClaim2Burstiness:
    """'(ii) the number of instructions since the last miss event.'"""

    def test_resolution_correlates_with_gap(self, suite_runs):
        _, runs = suite_runs
        # mcf is excluded: branches dispatched in the shadow of a
        # still-outstanding long D-cache miss resolve late regardless of
        # the gap (the last event is logged at the load's dispatch, not
        # its completion), which inverts the correlation for workloads
        # dominated by long misses.
        small_gap = []
        large_gap = []
        for name, (_, result) in runs.items():
            if name == "mcf":
                continue
            report = measure_penalties(result)
            for label, count, mean in bucket_resolution_by_gap(
                report, edges=(16, 128)
            ):
                if count == 0:
                    continue
                if label == "0-16":
                    small_gap.append((mean, count))
                elif label == ">128":
                    large_gap.append((mean, count))

        def weighted(pairs):
            total = sum(c for _, c in pairs)
            return sum(m * c for m, c in pairs) / total

        assert weighted(large_gap) > weighted(small_gap)


class TestClaim3InherentILP:
    """'(iii) the inherent ILP of the program.'"""

    def test_low_ilp_workload_pays_more(self):
        config = CoreConfig()
        base = SPEC_PROFILES["parser"].with_overrides(
            dl1_miss_rate=0.0, dl2_miss_rate=0.0, il1_mpki=0.0
        )
        resolutions = {}
        for distance in (2.0, 8.0):
            trace = generate_trace(
                base.with_overrides(mean_dependence_distance=distance),
                N,
                seed=5,
            )
            result = simulate(trace, config)
            resolutions[distance] = measure_penalties(result).mean_resolution
        assert resolutions[2.0] > resolutions[8.0]


class TestClaim4FULatencies:
    """'(iv) the functional unit latencies.'"""

    def test_scaled_latencies_raise_penalty(self, suite_runs):
        config, runs = suite_runs
        trace, baseline = runs["parser"]
        scaled_config = config.with_scaled_fu_latencies(3.0)
        scaled = simulate(trace, scaled_config)
        assert (
            measure_penalties(scaled).mean_resolution
            > measure_penalties(baseline).mean_resolution
        )


class TestClaim5ShortMisses:
    """'(v) the number of short (L1) D-cache misses.'"""

    def test_short_misses_inflate_resolution(self):
        config = CoreConfig()
        base = SPEC_PROFILES["parser"].with_overrides(
            dl2_miss_rate=0.0, il1_mpki=0.0
        )
        without = generate_trace(
            base.with_overrides(dl1_miss_rate=0.0), N, seed=9
        )
        with_misses = generate_trace(
            base.with_overrides(dl1_miss_rate=0.15), N, seed=9
        )
        res_without = measure_penalties(
            simulate(without, config)
        ).mean_resolution
        res_with = measure_penalties(
            simulate(with_misses, config)
        ).mean_resolution
        assert res_with > res_without

    def test_short_misses_are_not_miss_events(self, suite_runs):
        _, runs = suite_runs
        for _, (trace, result) in runs.items():
            short = sum(
                1 for r in trace.records if r.is_load and r.dl1_miss
            )
            # no event type corresponds to short misses
            assert len(result.events) < short + len(
                trace.mispredicted_indices()
            ) + sum(1 for r in trace.records if r.il1_miss) + sum(
                1 for r in trace.records if r.is_load and r.dl2_miss
            )


class TestFiveWayDecomposition:
    def test_decomposition_coherent_across_suite(self, suite_runs):
        config, runs = suite_runs
        for name, (trace, result) in runs.items():
            breakdown = decompose_contributors(
                trace, result, config, max_events=60
            )
            assert breakdown.count > 0, name
            total = (
                breakdown.refill
                + breakdown.ilp_chain
                + breakdown.fu_latency_extra
                + breakdown.short_miss_extra
                + breakdown.residual
            )
            assert total == pytest.approx(breakdown.mean_penalty, abs=1e-6)
            # the slice must explain the bulk of the resolution time
            assert breakdown.explained > 0.5 * breakdown.mean_resolution

    def test_mcf_dominated_by_short_misses_and_ilp(self, suite_runs):
        config, runs = suite_runs
        trace, result = runs["mcf"]
        breakdown = decompose_contributors(trace, result, config, max_events=60)
        assert breakdown.short_miss_extra > 0
        assert breakdown.ilp_chain > 0
