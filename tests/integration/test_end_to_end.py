"""Integration tests spanning multiple subsystems."""

import pytest

from repro.frontend.base import BranchUnit
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.perfect import PerfectPredictor
from repro.frontend.tournament import TournamentPredictor
from repro.interval.penalty import measure_penalties
from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig
from repro.pipeline.annotate import StructuralAnnotator
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.io import load_trace, save_trace
from repro.workloads.kernels import branchy_search, kernel_trace, pointer_chase


def structural_annotator(config, predictor=None):
    unit = BranchUnit(
        direction=predictor or TournamentPredictor(), btb=BranchTargetBuffer()
    )
    hierarchy = CacheHierarchy(HierarchyConfig())
    return StructuralAnnotator(config, unit, hierarchy), unit, hierarchy


class TestKernelToSimulatorPipeline:
    """assemble -> functionally execute -> time on the core."""

    def test_branchy_search_mispredicts_structurally(self):
        config = CoreConfig()
        trace = branchy_search(elements=512).run()
        annotator, unit, _ = structural_annotator(config)
        result = simulate(trace, config, annotator=annotator)
        # data-dependent branches: real mispredictions must appear
        assert len(result.mispredict_events) > 50
        assert unit.direction.stats.accuracy < 0.9
        report = measure_penalties(result)
        assert report.mean_penalty > config.frontend_depth

    def test_perfect_prediction_removes_branch_events(self):
        config = CoreConfig()
        trace = branchy_search(elements=256).run()
        annotator, _, _ = structural_annotator(
            config, predictor=PerfectPredictor()
        )
        result = simulate(trace, config, annotator=annotator)
        # BTB may still miss targets on first sight; direction is perfect
        predicted = simulate(trace, config)  # oracle: no annotations at all
        assert len(result.mispredict_events) <= len(trace.branch_indices())
        assert predicted.cycles <= result.cycles

    def test_perfect_frontend_is_upper_bound(self):
        config = CoreConfig()
        trace = branchy_search(elements=256).run()
        structural, _, _ = structural_annotator(config)
        real = simulate(trace, config, annotator=structural)
        ideal = simulate(trace, config)  # unannotated -> no miss events
        assert ideal.cycles < real.cycles
        assert ideal.ipc > real.ipc

    def test_pointer_chase_latency_bound_structurally(self):
        config = CoreConfig()
        # large list: 8192 nodes x 16B = 128KB data, 2x the 64KB L1
        trace = pointer_chase(nodes=8192, laps=1).run()
        annotator, _, hierarchy = structural_annotator(config)
        result = simulate(trace, config, annotator=annotator)
        assert hierarchy.l1d.stats.miss_rate > 0.1
        assert result.ipc < 1.0  # serialized misses dominate


class TestTraceFileWorkflow:
    def test_save_simulate_load_simulate_identical(self, tmp_path, small_trace):
        config = CoreConfig()
        direct = simulate(small_trace, config)
        path = tmp_path / "trace.bin"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        replayed = simulate(loaded, config)
        assert replayed.cycles == direct.cycles
        assert len(replayed.events) == len(direct.events)


class TestStructuralVsOracleConsistency:
    def test_oracle_replay_of_structural_outcomes(self):
        """Annotating a trace with structurally observed outcomes and
        replaying it through the oracle path reproduces the timing."""
        from repro.trace.record import TraceRecord
        from repro.trace.stream import Trace

        config = CoreConfig()
        trace = kernel_trace("branchy_search")
        annotator, _, _ = structural_annotator(config)
        structural = simulate(trace, config, annotator=annotator)
        mispredicted = {e.seq for e in structural.mispredict_events}
        il1 = {e.seq for e in structural.icache_events}
        short = set()
        long_miss = set()
        for event in structural.long_dmiss_events:
            long_miss.add(event.seq)
        annotated_records = []
        for i, record in enumerate(trace.records):
            annotated_records.append(
                TraceRecord(
                    op_class=record.op_class,
                    pc=record.pc,
                    deps=record.deps,
                    mem_addr=record.mem_addr,
                    taken=record.taken,
                    target=record.target,
                    mispredict=i in mispredicted,
                    il1_miss=i in il1,
                    dl1_miss=i in short,
                    dl2_miss=i in long_miss,
                )
            )
        replay = simulate(Trace(annotated_records), config)
        assert len(replay.mispredict_events) == len(
            structural.mispredict_events
        )
        # timing differs only through short-miss latencies we dropped
        assert replay.cycles == pytest.approx(structural.cycles, rel=0.25)
