"""Unit tests for the deterministic RNG."""

import pytest

from repro.util.rng import SplitMix, derive_seed


class TestSplitMix:
    def test_deterministic_sequence(self):
        a = SplitMix(42)
        b = SplitMix(42)
        assert [a.next_u64() for _ in range(10)] == [
            b.next_u64() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        assert SplitMix(1).next_u64() != SplitMix(2).next_u64()

    def test_outputs_fit_64_bits(self):
        rng = SplitMix(7)
        for _ in range(100):
            assert 0 <= rng.next_u64() < 1 << 64

    def test_random_unit_interval(self):
        rng = SplitMix(3)
        for _ in range(1000):
            assert 0.0 <= rng.random() < 1.0

    def test_random_mean_near_half(self):
        rng = SplitMix(5)
        values = [rng.random() for _ in range(20_000)]
        assert abs(sum(values) / len(values) - 0.5) < 0.01

    def test_randint_bounds(self):
        rng = SplitMix(9)
        for _ in range(1000):
            assert 3 <= rng.randint(3, 7) <= 7

    def test_randint_single_value(self):
        rng = SplitMix(9)
        assert rng.randint(5, 5) == 5

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            SplitMix(1).randint(5, 4)

    def test_randint_covers_range(self):
        rng = SplitMix(11)
        seen = {rng.randint(0, 3) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_bernoulli_extremes(self):
        rng = SplitMix(1)
        assert not rng.bernoulli(0.0)
        assert rng.bernoulli(1.0)

    def test_bernoulli_rate(self):
        rng = SplitMix(13)
        hits = sum(rng.bernoulli(0.3) for _ in range(20_000))
        assert abs(hits / 20_000 - 0.3) < 0.02

    def test_geometric_mean(self):
        rng = SplitMix(17)
        p = 0.25
        values = [rng.geometric(p) for _ in range(20_000)]
        expected = (1 - p) / p
        assert abs(sum(values) / len(values) - expected) < 0.15

    def test_geometric_invalid_p(self):
        rng = SplitMix(1)
        with pytest.raises(ValueError):
            rng.geometric(0.0)
        with pytest.raises(ValueError):
            rng.geometric(1.5)

    def test_geometric_cap(self):
        rng = SplitMix(1)
        assert rng.geometric(1e-12, cap=10) <= 10

    def test_choice(self):
        rng = SplitMix(19)
        items = ["a", "b", "c"]
        for _ in range(50):
            assert rng.choice(items) in items

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            SplitMix(1).choice([])

    def test_weighted_choice_respects_weights(self):
        rng = SplitMix(23)
        counts = {"x": 0, "y": 0}
        for _ in range(10_000):
            counts[rng.weighted_choice(["x", "y"], [9.0, 1.0])] += 1
        assert counts["x"] > 8 * counts["y"] * 0.8

    def test_weighted_choice_zero_weight_never_chosen(self):
        rng = SplitMix(29)
        for _ in range(1000):
            assert rng.weighted_choice(["a", "b"], [0.0, 1.0]) == "b"

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            SplitMix(1).weighted_choice(["a"], [1.0, 2.0])

    def test_weighted_choice_nonpositive_total(self):
        with pytest.raises(ValueError):
            SplitMix(1).weighted_choice(["a"], [0.0])

    def test_shuffle_is_permutation(self):
        rng = SplitMix(31)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_split_independence(self):
        rng = SplitMix(37)
        a = rng.split("a")
        b = rng.split("b")
        assert a.next_u64() != b.next_u64()

    def test_split_deterministic(self):
        assert (
            SplitMix(41).split("x").next_u64()
            == SplitMix(41).split("x").next_u64()
        )


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_base_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_int_and_str_labels(self):
        assert derive_seed(1, 5) != derive_seed(1, "5x")

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")
