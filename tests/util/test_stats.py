"""Unit tests for statistics helpers."""

import math

import pytest

from repro.util.stats import (
    Histogram,
    OnlineStats,
    RunningMean,
    bucketize,
    geometric_mean,
    harmonic_mean,
    percentile,
    weighted_mean,
)


class TestRunningMean:
    def test_empty_is_zero(self):
        assert RunningMean().mean == 0.0

    def test_simple_mean(self):
        rm = RunningMean()
        for v in (1.0, 2.0, 3.0):
            rm.add(v)
        assert rm.mean == pytest.approx(2.0)

    def test_weighted(self):
        rm = RunningMean()
        rm.add(1.0, weight=3.0)
        rm.add(5.0, weight=1.0)
        assert rm.mean == pytest.approx(2.0)


class TestOnlineStats:
    def test_mean_and_variance(self):
        stats = OnlineStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(32.0 / 7.0)

    def test_min_max(self):
        stats = OnlineStats()
        stats.extend([3.0, -1.0, 7.0])
        assert stats.minimum == -1.0
        assert stats.maximum == 7.0

    def test_single_value_no_variance(self):
        stats = OnlineStats()
        stats.add(5.0)
        assert stats.variance == 0.0
        assert stats.stddev == 0.0

    def test_empty_mean_zero(self):
        assert OnlineStats().mean == 0.0

    def test_summary_keys(self):
        stats = OnlineStats()
        stats.add(1.0)
        assert set(stats.summary()) == {"count", "mean", "stddev", "min", "max"}


class TestHistogram:
    def test_add_and_count(self):
        hist = Histogram()
        hist.add(3)
        hist.add(3)
        hist.add(5)
        assert hist.count(3) == 2
        assert hist.count(5) == 1
        assert hist.count(99) == 0
        assert hist.total == 3

    def test_add_with_count(self):
        hist = Histogram()
        hist.add(2, count=10)
        assert hist.count(2) == 10

    def test_add_nonpositive_count_raises(self):
        with pytest.raises(ValueError):
            Histogram().add(1, count=0)

    def test_mean(self):
        hist = Histogram()
        hist.add(1, 2)
        hist.add(4, 2)
        assert hist.mean == pytest.approx(2.5)

    def test_mean_empty(self):
        assert Histogram().mean == 0.0

    def test_items_sorted(self):
        hist = Histogram()
        for v in (5, 1, 3):
            hist.add(v)
        assert [v for v, _ in hist.items()] == [1, 3, 5]

    def test_percentile(self):
        hist = Histogram()
        for v in range(1, 101):
            hist.add(v)
        assert hist.percentile(0.5) == 50
        assert hist.percentile(1.0) == 100
        assert hist.percentile(0.01) == 1

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(0.5)

    def test_percentile_out_of_range_raises(self):
        hist = Histogram()
        hist.add(1)
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_cdf_reaches_one(self):
        hist = Histogram()
        for v in (1, 2, 2, 3):
            hist.add(v)
        cdf = hist.cdf()
        assert cdf[-1][1] == pytest.approx(1.0)
        fractions = [frac for _, frac in cdf]
        assert fractions == sorted(fractions)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 9.0

    def test_single_element(self):
        assert percentile([7.0], 0.3) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)

    def test_harmonic_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([2.0, -1.0])

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 3.0]) == pytest.approx(2.5)

    def test_weighted_mean_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_weighted_mean_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])

    def test_means_ordering(self):
        """HM <= GM <= AM for positive values."""
        values = [1.0, 2.0, 3.0, 10.0]
        am = sum(values) / len(values)
        assert harmonic_mean(values) <= geometric_mean(values) <= am


class TestBucketize:
    def test_bucket_assignment(self):
        edges = (4, 8, 16)
        assert bucketize(0, edges) == 0
        assert bucketize(4, edges) == 0
        assert bucketize(5, edges) == 1
        assert bucketize(16, edges) == 2
        assert bucketize(17, edges) == 3

    def test_overflow_bucket(self):
        assert bucketize(1e9, (1, 2)) == 2

    def test_math_consistency(self):
        # every value lands in exactly one bucket
        edges = (10, 20, 30)
        for v in range(0, 50):
            b = bucketize(v, edges)
            assert 0 <= b <= len(edges)
            if b < len(edges):
                assert v <= edges[b]
            if b > 0:
                assert v > edges[b - 1]

    def test_float_edges(self):
        assert bucketize(0.5, (0.4, 0.9)) == 1
        assert math.isclose(0.4, 0.4) and bucketize(0.4, (0.4,)) == 0
