"""Unit tests for table rendering."""

import pytest

from repro.util.tabulate import format_markdown_table, format_table


class TestFormatTable:
    def test_basic_render(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "b" in lines[0]

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456]], float_fmt=".2f")
        assert "1.23" in text
        assert "1.2345" not in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        text = format_table(["col"], [["a"], ["longer"]])
        rows = text.splitlines()[2:]
        assert len(rows[0]) == len(rows[1])

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_mixed_types(self):
        text = format_table(["a", "b", "c"], [["str", 3, 2.5]])
        assert "str" in text and "3" in text and "2.500" in text


class TestMarkdownTable:
    def test_structure(self):
        text = format_markdown_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_float_format(self):
        text = format_markdown_table(["x"], [[0.5]], float_fmt=".1f")
        assert "| 0.5 |" in text

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])
