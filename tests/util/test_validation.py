"""Unit tests for validation helpers."""

import pytest

from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
)


class TestValidation:
    def test_positive_accepts(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_positive_rejects(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", value)

    def test_non_negative_accepts_zero(self):
        check_non_negative("x", 0)

    def test_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_in_range_inclusive(self):
        check_in_range("x", 0.0, 0.0, 1.0)
        check_in_range("x", 1.0, 0.0, 1.0)

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_in_range_rejects(self, value):
        with pytest.raises(ValueError):
            check_in_range("x", value, 0.0, 1.0)

    @pytest.mark.parametrize("value", [1, 2, 4, 1024])
    def test_power_of_two_accepts(self, value):
        check_power_of_two("x", value)

    @pytest.mark.parametrize("value", [0, 3, 6, -4])
    def test_power_of_two_rejects(self, value):
        with pytest.raises(ValueError):
            check_power_of_two("x", value)

    def test_message_includes_name_and_value(self):
        with pytest.raises(ValueError, match="rob_size.*-3"):
            check_positive("rob_size", -3)
