"""Unit tests for the bounded LRU cache."""

import pytest

from repro.util.lru import LRUCache


class TestLRUCache:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_basic_mapping(self):
        cache = LRUCache(4)
        cache["a"] = 1
        assert "a" in cache
        assert cache["a"] == 1
        assert len(cache) == 1

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        cache["a"]  # refresh a
        cache["c"] = 3  # evicts b
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.get("a") == 1
        cache["c"] = 3  # evicts b, not a
        assert "a" in cache and "b" not in cache

    def test_hit_miss_accounting(self):
        cache = LRUCache(2)
        assert cache.get("missing") is None
        cache["a"] = 1
        cache.get("a")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["a"] = 2
        assert len(cache) == 1
        assert cache["a"] == 2
        assert cache.evictions == 0

    def test_clear(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache.clear()
        assert len(cache) == 0
        assert "a" not in cache

    def test_never_exceeds_capacity(self):
        cache = LRUCache(5)
        for i in range(50):
            cache[i] = i
        assert len(cache) == 5
        assert cache.evictions == 45

    def test_getitem_counts_hits_and_misses(self):
        cache = LRUCache(2)
        cache["a"] = 1
        assert cache["a"] == 1
        with pytest.raises(KeyError):
            cache["missing"]
        assert cache.hits == 1
        assert cache.misses == 1

    def test_stats_payload(self):
        cache = LRUCache(2, max_bytes=100, sizeof=len)
        cache["a"] = "xxxx"
        cache.get("a")
        cache.get("nope")
        stats = cache.stats()
        assert stats == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
            "bytes": 4,
            "capacity": 2,
            "max_bytes": 100,
        }


class TestMaxBytes:
    def test_rejects_nonpositive_max_bytes(self):
        with pytest.raises(ValueError):
            LRUCache(2, max_bytes=0)

    def test_evicts_by_bytes_before_capacity(self):
        cache = LRUCache(100, max_bytes=10, sizeof=len)
        cache["a"] = "xxxx"  # 4 bytes
        cache["b"] = "xxxx"  # 8 bytes
        cache["c"] = "xxxx"  # 12 bytes -> evict a
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.bytes == 8
        assert cache.evictions == 1

    def test_eviction_order_is_lru_in_bytes_mode(self):
        cache = LRUCache(100, max_bytes=10, sizeof=len)
        cache["a"] = "xxxx"
        cache["b"] = "xxxx"
        cache.get("a")  # refresh a: b is now LRU
        cache["c"] = "xxxx"
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_oversized_value_never_sticks(self):
        cache = LRUCache(100, max_bytes=10, sizeof=len)
        cache["a"] = "xx"
        cache["big"] = "y" * 50  # alone exceeds the bound
        assert "big" not in cache
        assert cache.bytes <= 10

    def test_overwrite_replaces_size(self):
        cache = LRUCache(100, max_bytes=10, sizeof=len)
        cache["a"] = "x" * 8
        cache["a"] = "x" * 2
        assert cache.bytes == 2
        cache["b"] = "x" * 8
        assert "a" in cache and "b" in cache

    def test_pop_releases_bytes(self):
        cache = LRUCache(100, max_bytes=10, sizeof=len)
        cache["a"] = "xxxx"
        assert cache.pop("a") == "xxxx"
        assert cache.pop("a", "gone") == "gone"
        assert cache.bytes == 0
        assert len(cache) == 0

    def test_clear_resets_bytes(self):
        cache = LRUCache(100, max_bytes=10, sizeof=len)
        cache["a"] = "xxxx"
        cache.clear()
        assert cache.bytes == 0
        cache["b"] = "x" * 10  # a full-width insert fits again
        assert "b" in cache

    def test_item_bound_still_enforced_with_bytes(self):
        cache = LRUCache(2, max_bytes=1000, sizeof=len)
        for key in "abcd":
            cache[key] = "x"
        assert len(cache) == 2
