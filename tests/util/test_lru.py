"""Unit tests for the bounded LRU cache."""

import pytest

from repro.util.lru import LRUCache


class TestLRUCache:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_basic_mapping(self):
        cache = LRUCache(4)
        cache["a"] = 1
        assert "a" in cache
        assert cache["a"] == 1
        assert len(cache) == 1

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        cache["a"]  # refresh a
        cache["c"] = 3  # evicts b
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.get("a") == 1
        cache["c"] = 3  # evicts b, not a
        assert "a" in cache and "b" not in cache

    def test_hit_miss_accounting(self):
        cache = LRUCache(2)
        assert cache.get("missing") is None
        cache["a"] = 1
        cache.get("a")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["a"] = 2
        assert len(cache) == 1
        assert cache["a"] == 2
        assert cache.evictions == 0

    def test_clear(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache.clear()
        assert len(cache) == 0
        assert "a" not in cache

    def test_never_exceeds_capacity(self):
        cache = LRUCache(5)
        for i in range(50):
            cache[i] = i
        assert len(cache) == 5
        assert cache.evictions == 45
