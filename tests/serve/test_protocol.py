"""Unit tests for the serve wire protocol and request validation."""

import pytest

from repro.lab.store import job_key
from repro.serve import protocol
from repro.serve.protocol import ProtocolError


class TestFraming:
    def test_roundtrip(self):
        obj = {"op": "ping", "id": "r1"}
        assert protocol.decode_line(protocol.encode_line(obj).strip()) == obj

    def test_encode_is_one_line(self):
        raw = protocol.encode_line({"op": "ping", "note": "a\nb"})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1

    def test_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"{not json")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"[1, 2]")

    def test_rejects_oversized_line(self):
        raw = b"x" * (protocol.MAX_LINE_BYTES + 1)
        with pytest.raises(ProtocolError):
            protocol.decode_line(raw)


class TestRequestValidation:
    def test_unknown_op(self):
        with pytest.raises(ProtocolError):
            protocol.request_op({"op": "explode"})

    def test_simulate_maps_to_content_address(self):
        obj = {
            "op": "simulate", "workload": "gzip", "length": 5000,
            "seed": 7, "core": "ooo", "config": {"rob_size": 64},
        }
        spec = protocol.sim_job_from(obj)
        expected = job_key(
            kind="sim-ooo", workload="gzip", length=5000, seed=7,
            config=spec.config,
        )
        assert spec.key() == expected
        assert spec.config.rob_size == 64

    def test_identical_requests_share_a_key(self):
        obj = {"op": "simulate", "workload": "gzip"}
        assert (
            protocol.sim_job_from(dict(obj)).key()
            == protocol.sim_job_from(dict(obj)).key()
        )

    def test_simulate_requires_workload(self):
        with pytest.raises(ProtocolError):
            protocol.sim_job_from({"op": "simulate"})

    def test_simulate_bounds_length(self):
        with pytest.raises(ProtocolError):
            protocol.sim_job_from(
                {"op": "simulate", "workload": "gzip",
                 "length": protocol.MAX_LENGTH + 1}
            )
        with pytest.raises(ProtocolError):
            protocol.sim_job_from(
                {"op": "simulate", "workload": "gzip", "length": 0}
            )

    def test_simulate_rejects_bad_core_and_config(self):
        with pytest.raises(ProtocolError):
            protocol.sim_job_from(
                {"op": "simulate", "workload": "gzip", "core": "vliw"}
            )
        with pytest.raises(ProtocolError):
            protocol.sim_job_from(
                {"op": "simulate", "workload": "gzip",
                 "config": {"no_such_field": 1}}
            )

    def test_sweep_expands_points(self):
        specs = protocol.sweep_jobs_from(
            {"op": "sweep", "workload": "mcf", "parameter": "rob_size",
             "values": [32, 64, 128], "length": 2000}
        )
        assert [s.config.rob_size for s in specs] == [32, 64, 128]
        assert len({s.key() for s in specs}) == 3

    def test_sweep_bounds_fanout(self):
        with pytest.raises(ProtocolError):
            protocol.sweep_jobs_from(
                {"op": "sweep", "workload": "mcf", "parameter": "rob_size",
                 "values": list(range(protocol.MAX_SWEEP_POINTS + 1))}
            )


class TestResponses:
    def test_ok_response_echoes_id(self):
        response = protocol.ok_response("r9", "pong", {"shard": 1})
        assert response["id"] == "r9"
        assert response["ok"] is True

    def test_error_response_carries_retryability(self):
        response = protocol.error_response(
            "r1", protocol.ERR_SHARD_CRASHED, "boom", retryable=True
        )
        assert response["ok"] is False
        assert response["error"]["retryable"] is True
        assert response["error"]["type"] == protocol.ERR_SHARD_CRASHED

    def test_summarize_payload(self):
        summary = protocol.summarize_payload(
            {"type": "simulation_result", "instructions": 100,
             "cycles": 50, "events": [1, 2]}
        )
        assert summary == {
            "type": "simulation_result", "instructions": 100,
            "cycles": 50, "ipc": 2.0, "events": 2,
        }
