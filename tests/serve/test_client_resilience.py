"""Client resilience: full-exchange timeouts, retries, the breaker.

The fake servers here are deliberately hostile in ways a real asyncio
service never is on purpose — stalling mid-frame, dribbling one byte
at a time, shedding forever — because the client's job is to come
back with an answer or a typed error on *its* schedule regardless.
"""

import json
import socket
import threading
import time

import pytest

from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.serve.client import (
    ServeClient,
    ServeClientError,
    ServeClientTimeout,
    retryable_error,
)

OVERLOADED = {
    "ok": False,
    "error": {
        "type": "overloaded", "message": "shed", "retryable": True,
        "retry_after_ms": 40,
    },
}
CRASHED = {
    "ok": False,
    "error": {"type": "shard-crashed", "message": "boom", "retryable": True},
}
BAD = {
    "ok": False,
    "error": {"type": "bad-request", "message": "no", "retryable": False},
}
PONG = {"ok": True, "result": "pong", "meta": {}}


def dribble(interval_s=0.25, count=40):
    """A script step that leaks one byte at a time, never a full frame."""

    def step(conn):
        try:
            for _ in range(count):
                conn.sendall(b"x")
                time.sleep(interval_s)
        except OSError:
            pass

    return step


def stall(seconds=30.0):
    """A script step that goes silent instead of answering."""

    def step(conn):
        time.sleep(seconds)

    return step


class ScriptedServer:
    """A fake serve endpoint driven by a per-request response script.

    Each accepted request line consumes one script step: a dict is
    JSON-encoded and sent as the response frame; a callable gets the
    raw connection (stalling/dribbling behaviours); None closes the
    connection without replying.
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests = []
        self.sock = socket.socket()
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        try:
            self.sock.close()
        except OSError:
            pass
        self._thread.join(timeout=2.0)

    def _run(self):
        while self.script:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            try:
                self._serve_connection(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _serve_connection(self, conn):
        reader = conn.makefile("rb")
        while self.script:
            line = reader.readline()
            if not line:
                return
            self.requests.append(json.loads(line))
            step = self.script.pop(0)
            if step is None:
                return
            if isinstance(step, dict):
                try:
                    conn.sendall(
                        json.dumps(step).encode("utf-8") + b"\n"
                    )
                except OSError:
                    return
            else:
                step(conn)
                return


class TestFullExchangeTimeout:
    def test_dribbling_server_cannot_stall_the_client(self):
        """THE regression: a server leaking one byte per 0.25s makes
        progress on every recv, so a per-operation timeout of 1s would
        never fire — the old client hung for as long as the server
        cared to dribble. The exchange deadline is absolute."""
        with ScriptedServer([dribble(interval_s=0.25)]) as server:
            client = ServeClient("127.0.0.1", server.port, timeout_s=1.0)
            with client:
                start = time.monotonic()
                with pytest.raises(ServeClientTimeout):
                    client.request({"op": "ping"})
                elapsed = time.monotonic() - start
        assert elapsed < 4.0, f"client stalled for {elapsed:.1f}s"

    def test_silent_server_times_out_promptly(self):
        with ScriptedServer([stall()]) as server:
            client = ServeClient("127.0.0.1", server.port, timeout_s=0.5)
            with client:
                start = time.monotonic()
                with pytest.raises(ServeClientTimeout):
                    client.request({"op": "ping"})
                assert time.monotonic() - start < 3.0

    def test_timeout_poisons_the_connection(self):
        """After a timeout the socket is mid-frame; reusing it would
        hand the next request a stale response. The client must drop
        it and reconnect."""
        with ScriptedServer([stall(0.5), PONG]) as server:
            client = ServeClient("127.0.0.1", server.port, timeout_s=0.3)
            with client:
                with pytest.raises(ServeClientTimeout):
                    client.request({"op": "ping"})
                assert client._sock is None
                time.sleep(0.4)  # let the stalled step finish and close
                assert client.ping()  # fresh connection, clean frame


class TestRetries:
    def test_retryable_errors_consume_retries_until_success(self):
        sleeps = []
        with ScriptedServer([OVERLOADED, CRASHED, PONG]) as server:
            client = ServeClient(
                "127.0.0.1", server.port, retries=3, sleep=sleeps.append
            )
            with client:
                response = client.request({"op": "ping"})
        assert response == PONG
        assert client.retries_performed == 2
        assert len(sleeps) == 2
        # The overloaded rejection's retry_after_ms hint (40ms) floors
        # the first delay: the server knows its backlog, the client
        # respects it even when its own backoff curve says less.
        assert sleeps[0] >= 0.040

    def test_zero_retries_surfaces_the_error_response(self):
        with ScriptedServer([OVERLOADED]) as server:
            client = ServeClient("127.0.0.1", server.port)  # retries=0
            with client:
                response = client.request({"op": "ping"})
        assert retryable_error(response)
        assert response["error"]["retry_after_ms"] == 40

    def test_non_retryable_errors_return_immediately(self):
        with ScriptedServer([BAD, PONG]) as server:
            client = ServeClient(
                "127.0.0.1", server.port, retries=5, sleep=lambda _s: None
            )
            with client:
                response = client.request({"op": "ping"})
        assert response == BAD
        assert client.retries_performed == 0

    def test_transport_errors_are_retried_on_a_fresh_connection(self):
        # Step None: server hangs up without replying; the retry
        # reconnects and the next script step answers.
        with ScriptedServer([None, PONG]) as server:
            client = ServeClient(
                "127.0.0.1", server.port, retries=2, sleep=lambda _s: None
            )
            with client:
                response = client.request({"op": "ping"})
        assert response == PONG
        assert client.retries_performed == 1

    def test_backoff_is_seeded_deterministic(self):
        a = ServeClient(retries=3, seed=7)
        b = ServeClient(retries=3, seed=7)
        c = ServeClient(retries=3, seed=8)
        delays_a = [a._backoff_s("simulate", i) for i in range(3)]
        delays_b = [b._backoff_s("simulate", i) for i in range(3)]
        delays_c = [c._backoff_s("simulate", i) for i in range(3)]
        assert delays_a == delays_b
        assert delays_a != delays_c
        assert delays_a[0] < delays_a[2]  # exponential growth wins out


class TestDeadlines:
    def test_deadline_bounds_the_whole_round_trip(self):
        with ScriptedServer([stall(5.0)]) as server:
            client = ServeClient("127.0.0.1", server.port, timeout_s=30.0)
            with client:
                start = time.monotonic()
                with pytest.raises(ServeClientTimeout):
                    client.request({"op": "ping"}, deadline_ms=300)
                assert time.monotonic() - start < 3.0

    def test_deadline_rides_the_wire_and_shrinks_per_attempt(self):
        sleeps = []
        with ScriptedServer([OVERLOADED, PONG]) as server:
            client = ServeClient(
                "127.0.0.1", server.port, retries=2, sleep=sleeps.append
            )
            with client:
                response = client.request({"op": "ping"}, deadline_ms=5_000)
        assert response == PONG
        budgets = [r["deadline_ms"] for r in server.requests]
        assert len(budgets) == 2
        assert all(1 <= b <= 5_000 for b in budgets)
        # The second attempt forwards what's *left*, not a fresh budget.
        assert budgets[1] <= budgets[0]

    def test_deadline_cuts_retries_short(self):
        """A retry whose backoff would overrun the deadline is not
        taken: the last error response comes back instead."""
        clock = FakeClock()
        with ScriptedServer([OVERLOADED] * 4) as server:
            client = ServeClient(
                "127.0.0.1", server.port, retries=10,
                sleep=clock.advance, clock=clock,
            )
            with client:
                response = client.request({"op": "ping"}, deadline_ms=90)
        # 40ms hint per retry: at most a couple fit inside 90ms.
        assert retryable_error(response)
        assert client.retries_performed <= 2


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        for _ in range(2):
            breaker.before_call("simulate")
            breaker.record_failure("simulate")
        assert breaker.state("simulate") == CLOSED
        breaker.before_call("simulate")
        breaker.record_failure("simulate")
        assert breaker.state("simulate") == OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.before_call("simulate")
        assert excinfo.value.retry_in_s > 0

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.before_call("simulate")
        breaker.record_failure("simulate")
        breaker.before_call("simulate")
        breaker.record_success("simulate")
        breaker.before_call("simulate")
        breaker.record_failure("simulate")
        assert breaker.state("simulate") == CLOSED

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        breaker.before_call("simulate")
        breaker.record_failure("simulate")
        assert breaker.state("simulate") == OPEN
        clock.advance(60.0)  # past any jittered cooldown (cap 30s)
        assert breaker.state("simulate") == HALF_OPEN
        breaker.before_call("simulate")  # the probe
        breaker.record_success("simulate")
        assert breaker.state("simulate") == CLOSED

    def test_half_open_probe_failure_reopens_longer(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        breaker.before_call("simulate")
        breaker.record_failure("simulate")
        first_cooldown = breaker.describe()["simulate"]["cooldown_s"]
        clock.advance(60.0)
        breaker.before_call("simulate")
        breaker.record_failure("simulate")
        assert breaker.state("simulate") == OPEN
        second_cooldown = breaker.describe()["simulate"]["cooldown_s"]
        # Doubled base, jitter in [0.5, 1.5): strictly longer floor.
        assert second_cooldown > first_cooldown / 1.5

    def test_half_open_admits_bounded_probes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, half_open_probes=1, clock=clock
        )
        breaker.before_call("simulate")
        breaker.record_failure("simulate")
        clock.advance(60.0)
        breaker.before_call("simulate")  # probe slot taken
        with pytest.raises(CircuitOpenError):
            breaker.before_call("simulate")

    def test_endpoints_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        breaker.before_call("sweep")
        breaker.record_failure("sweep")
        assert breaker.state("sweep") == OPEN
        breaker.before_call("simulate")  # unaffected

    def test_cooldowns_are_seeded_deterministic(self):
        def open_once(seed):
            breaker = CircuitBreaker(
                failure_threshold=1, seed=seed, clock=FakeClock()
            )
            breaker.before_call("simulate")
            breaker.record_failure("simulate")
            return breaker.describe()["simulate"]["cooldown_s"]

        assert open_once(7) == open_once(7)
        assert open_once(7) != open_once(8)


class TestClientWithBreaker:
    def test_breaker_stops_hammering_a_shedding_server(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        with ScriptedServer([OVERLOADED] * 8) as server:
            client = ServeClient(
                "127.0.0.1", server.port, breaker=breaker
            )
            with client:
                for _ in range(2):
                    assert retryable_error(client.request({"op": "ping"}))
                with pytest.raises(CircuitOpenError):
                    client.request({"op": "ping"})
        # The third request never reached the server.
        assert len(server.requests) == 2

    def test_breaker_cooldown_is_slept_out_when_retries_remain(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        with ScriptedServer([CRASHED, PONG]) as server:
            client = ServeClient(
                "127.0.0.1", server.port, retries=3, breaker=breaker,
                sleep=clock.advance,
            )
            with client:
                response = client.request({"op": "ping"})
        assert response == PONG
        assert breaker.state("ping") == CLOSED
