"""Admission control and brownout: budgets, hints, the ladder, wiring."""

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.resilience import faults
from repro.serve import protocol
from repro.serve.admission import (
    BROWNOUT_LEVELS,
    AdmissionController,
    AdmissionPolicy,
    BrownoutController,
)
from repro.serve.service import ExperimentService


def make_controller(**overrides):
    policy = AdmissionPolicy(**overrides)
    return AdmissionController(policy, MetricsRegistry(), n_shards=2), policy


class TestAdmissionController:
    def test_admits_within_budgets_and_reserves_bytes(self):
        ctl, _ = make_controller()
        assert ctl.try_admit(0, depth=0, cost_bytes=100) is None
        assert ctl.queued_bytes[0] == 100
        ctl.release(0, 100)
        assert ctl.queued_bytes[0] == 0

    def test_sheds_on_queue_depth(self):
        ctl, policy = make_controller(max_depth=4)
        decision = ctl.try_admit(1, depth=4, cost_bytes=10)
        assert decision is not None
        assert decision.reason == "queue-depth"
        assert decision.shard == 1
        assert decision.retry_after_ms >= policy.retry_after_base_ms
        with pytest.raises(protocol.OverloadedError) as excinfo:
            decision.raise_overloaded()
        assert excinfo.value.retryable is True
        assert excinfo.value.retry_after_ms == decision.retry_after_ms

    def test_sheds_on_byte_budget(self):
        ctl, _ = make_controller(max_bytes=1000)
        assert ctl.try_admit(0, depth=0, cost_bytes=900) is None
        decision = ctl.try_admit(0, depth=1, cost_bytes=200)
        assert decision is not None and decision.reason == "queue-bytes"
        # The rejected request's bytes were never reserved.
        assert ctl.queued_bytes[0] == 900

    def test_release_never_goes_negative(self):
        ctl, _ = make_controller()
        ctl.release(0, 500)
        assert ctl.queued_bytes[0] == 0

    def test_ewma_folds_service_time(self):
        ctl, _ = make_controller(ewma_alpha=0.5)
        ctl.try_admit(0, 0, 10)
        ctl.release(0, 10, service_time_ms=100.0)
        assert ctl.ewma_ms[0] == pytest.approx(100.0)  # first sample
        ctl.try_admit(0, 0, 10)
        ctl.release(0, 10, service_time_ms=200.0)
        assert ctl.ewma_ms[0] == pytest.approx(150.0)

    def test_retry_hint_is_deterministic_and_staggered(self):
        a, _ = make_controller(max_depth=1)
        b, _ = make_controller(max_depth=1)
        hints_a = [
            a.try_admit(0, depth=5, cost_bytes=1).retry_after_ms
            for _ in range(4)
        ]
        hints_b = [
            b.try_admit(0, depth=5, cost_bytes=1).retry_after_ms
            for _ in range(4)
        ]
        # Same seed + same shed sequence => identical hints (no wall
        # clock anywhere); consecutive sheds get different jitter.
        assert hints_a == hints_b
        policy = a.policy
        assert all(
            policy.retry_after_base_ms <= h <= policy.retry_after_cap_ms
            for h in hints_a
        )

    def test_retry_hint_scales_with_backlog_drain(self):
        ctl, _ = make_controller(max_depth=1)
        ctl.ewma_ms[0] = 100.0  # 100 ms per job
        shallow = ctl.retry_after_ms(0, depth=1)
        ctl.sheds += 1  # advance the jitter stream either way
        deep = ctl.retry_after_ms(0, depth=30)
        assert deep > shallow

    def test_pressure_is_worst_of_three_signals(self):
        ctl, _ = make_controller(
            max_depth=10, max_bytes=1000, drain_target_ms=1000.0
        )
        assert ctl.pressure(0, depth=0) == 0.0
        ctl.queued_bytes[0] = 900
        assert ctl.pressure(0, depth=1) == pytest.approx(0.9)
        ctl.ewma_ms[0] = 500.0  # drain = 500ms * 4 = 2.0 of target
        assert ctl.pressure(0, depth=4) == pytest.approx(2.0)

    def test_injected_fault_forces_a_shed(self):
        ctl, _ = make_controller()
        faults.enable("serve.admit:raise@1")
        try:
            decision = ctl.try_admit(0, depth=0, cost_bytes=1)
            assert decision is not None
            assert decision.reason == "injected-fault"
            # Counted like any organic shed.
            assert ctl.sheds == 1
        finally:
            faults.reset()


class TestBrownoutController:
    def make(self, **overrides):
        policy = AdmissionPolicy(
            brownout_raise_after=2, brownout_lower_after=3, **overrides
        )
        return BrownoutController(policy, MetricsRegistry())

    def test_ladder_raises_with_hysteresis(self):
        ctl = self.make()
        assert ctl.observe(0.9) == 0  # one spike is not sustained
        assert ctl.observe(0.9) == 1
        assert ctl.label == "no-tracing"
        assert ctl.observe(0.9) == 1
        assert ctl.observe(0.9) == 2  # lean-cache
        assert ctl.observe(0.9) == 2
        assert ctl.observe(0.9) == 3  # shed-sweeps (top of the ladder)
        assert ctl.observe(0.9) == 3  # cannot exceed the ladder

    def test_middle_pressure_holds_level(self):
        ctl = self.make()
        ctl.observe(0.9)
        ctl.observe(0.9)
        assert ctl.level == 1
        for _ in range(10):
            assert ctl.observe(0.5) == 1  # between low and high: hold

    def test_recovery_needs_longer_calm(self):
        ctl = self.make()
        ctl.observe(0.9)
        ctl.observe(0.9)
        assert ctl.level == 1
        assert ctl.observe(0.1) == 1
        assert ctl.observe(0.1) == 1
        assert ctl.observe(0.1) == 0  # third calm sample lowers

    def test_levels_gate_the_right_luxuries(self):
        ctl = self.make()
        assert ctl.tracing_allowed() is True
        assert ctl.tier0_admit_bytes() is None
        assert ctl.shed_sweeps() is False
        ctl._set_level(1)
        assert ctl.tracing_allowed() is False
        assert ctl.tier0_admit_bytes() is None
        ctl._set_level(2)
        assert ctl.tier0_admit_bytes() == ctl.policy.tier0_lean_bytes
        assert ctl.shed_sweeps() is False
        ctl._set_level(3)
        assert ctl.shed_sweeps() is True
        assert ctl.label == BROWNOUT_LEVELS[3]

    def test_transitions_are_counted_and_gauged(self):
        metrics = MetricsRegistry()
        policy = AdmissionPolicy(brownout_raise_after=1, brownout_lower_after=1)
        ctl = BrownoutController(policy, metrics)
        ctl.observe(0.9)
        ctl.observe(0.1)
        snap = metrics.snapshot()
        assert snap["counters"]["serve.overload_transitions_total"] == 2
        assert snap["gauges"]["serve.brownout_level"] == 0


REQUEST = {"op": "simulate", "workload": "gzip", "length": 600}


class TestServiceIntegration:
    def test_forced_shed_is_a_typed_retryable_response(self, tmp_path):
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2,
            service_id="serve-admit-a",
        )
        svc.start()
        faults.enable("serve.admit:raise@1")
        try:
            response = asyncio.run(svc.handle(dict(REQUEST)))
            assert response["ok"] is False
            error = response["error"]
            assert error["type"] == protocol.ERR_OVERLOADED
            assert error["retryable"] is True
            assert error["retry_after_ms"] >= 1
            snap = svc.metrics.snapshot()["counters"]
            assert snap["serve.overload_sheds_total"] == 1
            # Shed before journal/submit: nothing reached a shard.
            assert all(not s.pending for s in svc.shards)
            assert snap["serve.pool_executions_total"] == 0
        finally:
            faults.reset()
            svc.close()

    def test_cached_requests_are_never_shed(self, tmp_path):
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2,
            service_id="serve-admit-b",
        )
        svc.start()
        try:
            warm = asyncio.run(svc.handle(dict(REQUEST)))
            assert warm["ok"]
            # Every admission decision from here on sheds — but a warm
            # request never reaches admission (it lives below the
            # cache), so the hit is served.
            faults.enable("serve.admit:raise@1x*")
            cached = asyncio.run(svc.handle(dict(REQUEST)))
            assert cached["ok"]
            assert cached["meta"]["source"] == "tier0"
        finally:
            faults.reset()
            svc.close()

    def test_brownout_shed_sweeps_rejects_sweep_keeps_simulate(
        self, tmp_path
    ):
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2,
            service_id="serve-admit-c",
        )
        svc.start()
        try:
            svc.brownout._set_level(3)
            sweep = asyncio.run(svc.handle({
                "op": "sweep", "workload": "gzip", "length": 600,
                "parameter": "rob", "values": [32, 64],
            }))
            assert sweep["ok"] is False
            assert sweep["error"]["type"] == protocol.ERR_OVERLOADED
            assert sweep["error"]["retryable"] is True
            simulate = asyncio.run(svc.handle(dict(REQUEST)))
            assert simulate["ok"]
            snap = svc.metrics.snapshot()["counters"]
            assert snap["serve.overload_shed_sweeps_total"] == 1
            assert snap["serve.overload_sheds_total"] == 1
        finally:
            svc.close()

    def test_brownout_disables_tracing_even_when_pinned(self, tmp_path):
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2,
            service_id="serve-admit-d", trace_requests=True,
        )
        svc.start()
        try:
            assert svc._tracing_on() is True
            svc.brownout._set_level(1)
            assert svc._tracing_on() is False
            traced = asyncio.run(svc.handle(dict(REQUEST)))
            assert traced["ok"]
            assert "trace_id" not in traced["meta"]
        finally:
            svc.close()

    def test_brownout_lean_cache_cap_applied_on_sampling(self, tmp_path):
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2,
            service_id="serve-admit-e",
        )
        svc.start()
        try:
            svc.brownout._set_level(2)
            svc._sample_queues()
            assert (
                svc.cache.tier0_admit_bytes
                == svc.admission_policy.tier0_lean_bytes
            )
            svc.brownout._set_level(0)
            svc._sample_queues()
            assert svc.cache.tier0_admit_bytes is None
        finally:
            svc.close()

    def test_status_and_stats_carry_overload_sections(self, tmp_path):
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2,
            service_id="serve-admit-f",
        )
        svc.start()
        try:
            status = svc.status_payload()
            assert status["admission"]["max_depth"] == 64
            assert status["brownout"]["label"] == "normal"
            stats = svc.stats_payload()
            assert "admission" in stats and "brownout" in stats
            gauges = svc.metrics.snapshot()["gauges"]
            for name in (
                "serve.queue_depth_current",
                "serve.brownout_level",
                "serve.shard0_queue_depth",
                "serve.shard1_queue_depth",
            ):
                assert name in gauges
        finally:
            svc.close()

    def test_telemetry_samples_carry_pressure_and_brownout(self, tmp_path):
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2,
            service_id="serve-admit-g",
        )
        svc.start()
        try:
            asyncio.run(svc.handle(dict(REQUEST)))
            sample = list(svc._telemetry)[-1]
            assert "pressure" in sample and "brownout" in sample
        finally:
            svc.close()


class TestTier0AdmissionCap:
    def test_cap_blocks_large_payloads_from_tier0_only(self, tmp_path):
        from repro.serve.cache import TieredCache, json_sizeof

        cache = TieredCache()
        big = {"x": "y" * 4096}
        small = {"x": 1}
        cache.tier0_admit_bytes = 64
        cache.store("a" * 64, big)
        cache.store("b" * 64, small)
        assert cache.tier0.get("a" * 64) is None
        assert cache.tier0.get("b" * 64) == small
        assert json_sizeof(big) > 64 >= json_sizeof(small)
        cache.tier0_admit_bytes = None
        cache.store("a" * 64, big)
        assert cache.tier0.get("a" * 64) == big
