"""Unit tests for the tiered serve cache and its backends."""

import json

from repro.lab.store import ResultStore
from repro.serve.cache import (
    DirectoryBackend,
    StoreBackend,
    TieredCache,
    json_sizeof,
)
from repro.util.lru import LRUCache

KEY_A = "a" * 64
KEY_B = "b" * 64


class TestDirectoryBackend:
    def test_put_get_roundtrip(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "l2")
        backend.put(KEY_A, {"x": 1})
        assert backend.get(KEY_A) == {"x": 1}
        assert backend.count() == 1

    def test_miss(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "l2")
        assert backend.get(KEY_A) is None
        assert backend.stats()["misses"] == 1

    def test_corrupt_object_is_quarantined_not_served(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "l2")
        backend.put(KEY_A, {"x": 1})
        path = backend._path(KEY_A)
        obj = json.loads(path.read_text(encoding="utf-8"))
        obj["payload"] = {"x": 999}  # payload no longer matches sha256
        path.write_text(json.dumps(obj), encoding="utf-8")
        assert backend.get(KEY_A) is None
        assert not path.exists()  # moved aside, never re-served
        assert backend.count() == 0

    def test_key_mismatch_rejected(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "l2")
        source = backend._path(KEY_A)
        backend.put(KEY_A, {"x": 1})
        target = backend._path(KEY_B)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(source.read_bytes())
        assert backend.get(KEY_B) is None


class TestTieredCache:
    def _cache(self, tmp_path, items=8):
        store = ResultStore(root=tmp_path / "cache")
        return TieredCache(
            LRUCache(items, max_bytes=1 << 20, sizeof=json_sizeof),
            [StoreBackend(store), DirectoryBackend(tmp_path / "l2")],
        ), store

    def test_miss_everywhere(self, tmp_path):
        cache, _ = self._cache(tmp_path)
        assert cache.lookup(KEY_A) == (None, None)

    def test_write_through_and_tier0_hit(self, tmp_path):
        cache, store = self._cache(tmp_path)
        cache.store(KEY_A, {"x": 1})
        payload, tier = cache.lookup(KEY_A)
        assert (payload, tier) == ({"x": 1}, "tier0")
        # write-through reached both disk tiers
        assert store.get(KEY_A) == {"x": 1}
        assert cache.backends[1].get(KEY_A) == {"x": 1}

    def test_store_tier_hit_promotes_to_tier0(self, tmp_path):
        cache, store = self._cache(tmp_path)
        store.put(KEY_A, {"x": 2})  # only on disk, not in tier0
        payload, tier = cache.lookup(KEY_A)
        assert (payload, tier) == ({"x": 2}, "store")
        payload, tier = cache.lookup(KEY_A)
        assert tier == "tier0"  # promoted

    def test_dir_tier_backstops_a_lost_store_object(self, tmp_path):
        cache, store = self._cache(tmp_path)
        cache.store(KEY_A, {"x": 3})
        cache.tier0.clear()
        store.gc(clear=True)  # primary store loses the object
        payload, tier = cache.lookup(KEY_A)
        assert (payload, tier) == ({"x": 3}, "dir")

    def test_tier0_eviction_falls_back_to_disk(self, tmp_path):
        cache, _ = self._cache(tmp_path, items=1)
        cache.store(KEY_A, {"x": 1})
        cache.store(KEY_B, {"x": 2})  # evicts KEY_A from tier0
        payload, tier = cache.lookup(KEY_A)
        assert payload == {"x": 1}
        assert tier == "store"

    def test_duplicate_tier_names_rejected(self, tmp_path):
        import pytest

        with pytest.raises(ValueError):
            TieredCache(
                LRUCache(4),
                [
                    DirectoryBackend(tmp_path / "a"),
                    DirectoryBackend(tmp_path / "b"),
                ],
            )

    def test_stats_shape(self, tmp_path):
        cache, _ = self._cache(tmp_path)
        cache.store(KEY_A, {"x": 1})
        cache.lookup(KEY_A)
        stats = cache.stats()
        assert set(stats) == {"tier0", "store", "dir"}
        assert stats["tier0"]["hits"] == 1
