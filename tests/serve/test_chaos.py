"""Chaos coverage: shard death mid-request, replay, retryable errors.

The issue's acceptance bar: killing one shard mid-flight never loses
accepted work — the journal replays it and the client observes an
answer or a retryable error, never a hang.
"""

import asyncio
import json
import os
import signal
import time

import pytest

from repro.lab.jobs import execute_job
from repro.lab.store import payload_digest
from repro.resilience import faults
from repro.serve.protocol import ERR_SHARD_CRASHED, sim_job_from
from repro.serve.service import ExperimentService

REQUEST = {"op": "simulate", "workload": "twolf", "length": 1500}


def _spec_key(service):
    from repro.serve.protocol import sim_job_from

    return sim_job_from(dict(REQUEST)).key()


async def _kill_worker_when_busy(shard, deadline_s=20.0):
    """SIGKILL the shard's worker once it is executing our job."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        pids = shard.worker_pids()
        if pids and shard.pending:
            await asyncio.sleep(0.3)  # let it get into the delay window
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            return True
        await asyncio.sleep(0.02)
    return False


class TestShardDeath:
    def test_sigkill_mid_request_replays_and_answers(self, tmp_path):
        """One SIGKILL: the journal resubmits and every waiter (the
        leader plus coalesced followers) still gets the answer."""
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2,
            service_id="serve-chaos-a",
        )
        svc.start()
        # Hold the first execution open long enough to kill the worker
        # mid-job; the replay (a fresh worker process) re-arms the
        # per-process fault counter and just runs slow again.
        faults.enable("job.execute:delay(0.8)x*")
        try:
            shard = svc.shards.route(_spec_key(svc))

            async def drive():
                waiters = [
                    asyncio.create_task(svc.handle(dict(REQUEST)))
                    for _ in range(3)
                ]
                killed = await _kill_worker_when_busy(shard)
                responses = await asyncio.wait_for(
                    asyncio.gather(*waiters), timeout=120
                )
                return killed, responses

            killed, responses = asyncio.run(drive())
            assert killed, "never saw a busy shard worker to kill"
            assert all(r["ok"] for r in responses)
            assert sum(1 for r in responses if r["meta"]["coalesced"]) == 2
            snap = svc.metrics.snapshot()["counters"]
            assert snap["serve.shard_restarts_total"] >= 1
            # The journal closed the loop: accepted -> replay -> done.
            state = shard.journal_state()
            key = _spec_key(svc)
            assert state.classify(key) == "complete"
            events = [r["event"] for r in state.records]
            assert "replay" in events
            # The replayed result is durably stored and warm-servable.
            warm = asyncio.run(svc.handle(dict(REQUEST)))
            assert warm["ok"] and warm["meta"]["source"] == "tier0"
        finally:
            faults.reset()
            svc.close()

    def test_repeated_crashes_surface_retryable_error_not_hang(
        self, tmp_path
    ):
        """Every worker process dies at its first job checkpoint
        (``pool.worker:kill`` re-arms per process), so the replay dies
        too: waiters must get a clean retryable error, promptly."""
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2,
            service_id="serve-chaos-b",
        )
        svc.start()
        faults.enable("pool.worker:kill@1")
        try:
            async def drive():
                waiters = [
                    asyncio.create_task(svc.handle(dict(REQUEST)))
                    for _ in range(4)
                ]
                return await asyncio.wait_for(
                    asyncio.gather(*waiters), timeout=120
                )

            responses = asyncio.run(drive())
            assert all(not r["ok"] for r in responses)
            for response in responses:
                assert response["error"]["type"] == ERR_SHARD_CRASHED
                assert response["error"]["retryable"] is True
            snap = svc.metrics.snapshot()["counters"]
            assert snap["serve.shard_restarts_total"] >= 2
            state = svc.shards.route(_spec_key(svc)).journal_state()
            assert state.classify(_spec_key(svc)) == "requeue"
        finally:
            faults.reset()
            svc.close()

    def test_healthy_shards_unaffected_by_a_dead_one(self, tmp_path):
        """Work owned by the surviving shard keeps flowing while the
        killed shard recovers."""
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2,
            service_id="serve-chaos-c",
        )
        svc.start()
        faults.enable("job.execute:delay(0.8)x*")
        try:
            key = _spec_key(svc)
            victim = svc.shards.route(key)
            other_requests = [
                {"op": "simulate", "workload": w, "length": 1200}
                for w in ("gzip", "mcf", "parser", "vpr")
            ]
            from repro.serve.protocol import sim_job_from

            survivors = [
                r for r in other_requests
                if svc.shards.route(sim_job_from(dict(r)).key())
                is not victim
            ]
            assert survivors, "need at least one key on the other shard"

            async def drive():
                doomed = asyncio.create_task(svc.handle(dict(REQUEST)))
                await _kill_worker_when_busy(victim)
                healthy = await asyncio.wait_for(
                    asyncio.gather(
                        *(svc.handle(dict(r)) for r in survivors)
                    ),
                    timeout=120,
                )
                return await asyncio.wait_for(doomed, timeout=120), healthy

            doomed, healthy = asyncio.run(drive())
            assert all(r["ok"] for r in healthy)
            assert doomed["ok"]  # replayed after restart
        finally:
            faults.reset()
            svc.close()


class TestMultiWorkerShards:
    def test_triage_attributes_only_the_dead_workers_claims(
        self, tmp_path
    ):
        """The attribution contract, pinned deterministically: with one
        dead worker and one live worker each claiming a pending key,
        recovery journals a ``worker-death`` note for the dead pid
        naming *only its* key — the live worker's key is never blamed
        on the corpse. (The end-to-end SIGKILL test below can't pin
        the exact note set because the executor's manager thread kills
        the surviving workers too, on its own schedule.)"""
        import json as jsonlib
        import subprocess
        import sys

        from repro.serve.shards import Shard

        shard = Shard(
            index=0, run_id="triage-unit", store_root=None,
            runs_dir=tmp_path / "runs",
            heartbeat_root=tmp_path / "hb",
        )
        shard.heartbeats.root.mkdir(parents=True, exist_ok=True)
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        live = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"]
        )
        try:
            keys = {"dead": "aa" * 32, "live": "bb" * 32, "stale": "cc" * 32}
            for pid, key in (
                (dead.pid, keys["dead"]), (live.pid, keys["live"]),
            ):
                (shard.heartbeats.root / f"{pid}.json").write_text(
                    jsonlib.dumps(
                        {"pid": pid, "beat_at": time.time(), "label": ""}
                    )
                )
                (shard.heartbeats.root / f"{pid}.claims.jsonl").write_text(
                    jsonlib.dumps({"pid": pid, "key": key, "at": 0.0})
                    + "\n"
                )
            # The dead worker also once claimed a key that has since
            # completed — stale claims must be dropped by the pending
            # intersection, not re-attributed.
            with open(
                shard.heartbeats.root / f"{dead.pid}.claims.jsonl", "a"
            ) as handle:
                handle.write(
                    jsonlib.dumps(
                        {"pid": dead.pid, "key": keys["stale"], "at": 1.0}
                    )
                    + "\n"
                )
            spec = sim_job_from(dict(REQUEST))
            shard.pending[keys["dead"]] = spec
            shard.pending[keys["live"]] = spec

            attribution = shard.recover(observed_generation=0)

            assert attribution == {dead.pid: [keys["dead"]]}
            notes = [
                r for r in shard.journal_state().records
                if r["event"] == "worker-death"
            ]
            assert len(notes) == 1
            assert notes[0]["pid"] == dead.pid
            assert notes[0]["keys"] == [keys["dead"]]
            assert notes[0]["generation"] == 0
            # The triaged corpse's claim file is cleared; the live
            # worker's claims survive untouched.
            assert not shard.heartbeats.claims_path(dead.pid).exists()
            assert shard.heartbeats.claimed_keys(live.pid) == [
                keys["live"]
            ]
            # A later observer presenting the stale generation is told
            # "already handled" — no second triage, no second restart.
            assert shard.recover(observed_generation=0) is None
            assert shard.restarts == 1
        finally:
            live.kill()
            live.wait()
            shard.close()

    def test_single_worker_death_keeps_attribution_disjoint(
        self, tmp_path
    ):
        """Two workers, two in-flight keys, one SIGKILL end to end:
        both requests still resolve, the generation guard restarts the
        broken pool exactly once even though both awaiting requests
        observe the same corpse, and no ``worker-death`` note ever
        blames a pid for a key it did not claim."""
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=1, shard_workers=2,
            service_id="serve-chaos-mw",
        )
        svc.start()
        faults.enable("job.execute:delay(0.8)x*")
        requests = [
            dict(REQUEST),
            {"op": "simulate", "workload": "gzip", "length": 1500},
        ]
        keys = [sim_job_from(dict(r)).key() for r in requests]
        shard = svc.shards.shards[0]
        try:
            async def claims_by_pid(deadline_s=20.0):
                """Wait until two distinct workers each claim a key."""
                give_up = time.monotonic() + deadline_s
                while time.monotonic() < give_up:
                    owners = {}
                    for pid in shard.worker_pids():
                        held = [
                            k for k in shard.heartbeats.claimed_keys(pid)
                            if k in shard.pending
                        ]
                        if held:
                            owners[pid] = held
                    claimed = {k for held in owners.values() for k in held}
                    if len(owners) == 2 and claimed == set(keys):
                        return owners
                    await asyncio.sleep(0.02)
                return None

            async def drive():
                waiters = [
                    asyncio.create_task(svc.handle(dict(r)))
                    for r in requests
                ]
                owners = await claims_by_pid()
                assert owners, "two workers never split the two keys"
                victim = next(
                    pid for pid, held in owners.items()
                    if keys[0] in held
                )
                os.kill(victim, signal.SIGKILL)
                responses = await asyncio.wait_for(
                    asyncio.gather(*waiters), timeout=120
                )
                return victim, owners, responses

            victim, owners, responses = asyncio.run(drive())
            assert all(r["ok"] for r in responses)
            # Exactly one restart: the second BrokenExecutor observer
            # saw the bumped generation and skipped the destructive
            # re-restart of the freshly rebuilt pool.
            snap = svc.metrics.snapshot()["counters"]
            assert snap["serve.shard_restarts_total"] == 1
            # Attribution stays disjoint and claim-grounded. Whether
            # the *survivor* also gets a note is up to the executor's
            # manager thread (it kills the rest of the pool on break),
            # but a note may only ever name keys its pid claimed.
            notes = [
                r for r in shard.journal_state().records
                if r["event"] == "worker-death"
            ]
            for note in notes:
                assert set(note["keys"]) <= set(owners.get(note["pid"], []))
                assert note["shard"] == 0
            blamed = [k for n in notes for k in n["keys"]]
            assert len(blamed) == len(set(blamed)), (
                "one key attributed to two corpses"
            )
            # Both keys replayed to completion despite the triage.
            state = shard.journal_state()
            assert all(state.classify(k) == "complete" for k in keys)
        finally:
            faults.reset()
            svc.close()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_done_landing_before_replay_serves_from_store(
        self, tmp_path, workers
    ):
        """The crash/replay race: a worker publishes its result and
        the ``done`` record lands, then the pool dies before the
        awaiting request collects the future. Recovery must notice the
        journal says ``complete`` and replay from the store instead of
        re-executing."""
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=1,
            shard_workers=workers,
            service_id=f"serve-chaos-done{workers}",
        )
        svc.start()
        spec = sim_job_from(dict(REQUEST))
        key = spec.key()
        shard = svc.shards.shards[0]
        try:
            # Stage the pre-crash world: payload durably published...
            result = execute_job(spec, store_root=str(tmp_path / "cache"))
            assert result.ok
            # ...the done record journaled, but the in-process pending
            # table still believes the key is in flight.
            shard.pending[key] = spec
            shard.journal.done(
                0, key, result.status, payload_digest(result.payload), 1
            )
            # Now every fresh worker dies at its first checkpoint, so
            # the (redundant) execution can never answer — only the
            # store-replay branch can.
            faults.enable("pool.worker:kill@1")
            payload, _span = asyncio.run(
                svc._run_on_shard(key, spec, dict(REQUEST), None)
            )
            assert payload == result.payload
            assert key not in shard.pending  # triage closed it out
            assert shard.journal_state().classify(key) == "complete"
        finally:
            faults.reset()
            svc.close()

    def test_double_publish_is_idempotent(self, tmp_path):
        """At-least-once means the same key can be published twice
        (original worker + replay). Content addressing makes the
        second put overwrite byte-identically — one object, same
        digest, still verifiable."""
        from repro.lab.store import ResultStore

        spec = sim_job_from(dict(REQUEST))
        first = execute_job(spec, store_root=str(tmp_path / "cache"))
        assert first.ok
        store = ResultStore(tmp_path / "cache")
        assert store.count() == 1
        # The replay's redundant publish of the same content address.
        store.put(spec.key(), first.payload, meta={"label": spec.label})
        assert store.count() == 1
        assert store.get(spec.key()) == first.payload
        assert payload_digest(store.get(spec.key())) == payload_digest(
            first.payload
        )

    def test_worker_count_never_changes_results(self, tmp_path):
        """workers=2 and workers=4 are byte-identical to workers=1:
        the pool width is a throughput knob, not a semantics knob."""
        requests = [
            {"op": "simulate", "workload": w, "length": 900}
            for w in ("gzip", "twolf", "mcf")
        ] + [
            {
                "op": "sweep", "workload": "vpr",
                "parameter": "rob_size", "values": [32, 64],
                "length": 400,
            }
        ]
        outputs = {}
        for workers in (1, 2, 4):
            svc = ExperimentService(
                store_root=tmp_path / f"cache{workers}", n_shards=2,
                shard_workers=workers,
                service_id=f"serve-width{workers}",
            )
            svc.start()
            try:
                async def drive():
                    return await asyncio.gather(
                        *(svc.handle(dict(r)) for r in requests)
                    )

                responses = asyncio.run(drive())
                assert all(r["ok"] for r in responses)
                outputs[workers] = json.dumps(
                    [r["result"] for r in responses], sort_keys=True
                )
            finally:
                svc.close()
        assert outputs[2] == outputs[1]
        assert outputs[4] == outputs[1]
