"""Chaos coverage: shard death mid-request, replay, retryable errors.

The issue's acceptance bar: killing one shard mid-flight never loses
accepted work — the journal replays it and the client observes an
answer or a retryable error, never a hang.
"""

import asyncio
import os
import signal
import time

import pytest

from repro.resilience import faults
from repro.serve.protocol import ERR_SHARD_CRASHED
from repro.serve.service import ExperimentService

REQUEST = {"op": "simulate", "workload": "twolf", "length": 1500}


def _spec_key(service):
    from repro.serve.protocol import sim_job_from

    return sim_job_from(dict(REQUEST)).key()


async def _kill_worker_when_busy(shard, deadline_s=20.0):
    """SIGKILL the shard's worker once it is executing our job."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        pids = shard.worker_pids()
        if pids and shard.pending:
            await asyncio.sleep(0.3)  # let it get into the delay window
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            return True
        await asyncio.sleep(0.02)
    return False


class TestShardDeath:
    def test_sigkill_mid_request_replays_and_answers(self, tmp_path):
        """One SIGKILL: the journal resubmits and every waiter (the
        leader plus coalesced followers) still gets the answer."""
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2,
            service_id="serve-chaos-a",
        )
        svc.start()
        # Hold the first execution open long enough to kill the worker
        # mid-job; the replay (a fresh worker process) re-arms the
        # per-process fault counter and just runs slow again.
        faults.enable("job.execute:delay(0.8)x*")
        try:
            shard = svc.shards.route(_spec_key(svc))

            async def drive():
                waiters = [
                    asyncio.create_task(svc.handle(dict(REQUEST)))
                    for _ in range(3)
                ]
                killed = await _kill_worker_when_busy(shard)
                responses = await asyncio.wait_for(
                    asyncio.gather(*waiters), timeout=120
                )
                return killed, responses

            killed, responses = asyncio.run(drive())
            assert killed, "never saw a busy shard worker to kill"
            assert all(r["ok"] for r in responses)
            assert sum(1 for r in responses if r["meta"]["coalesced"]) == 2
            snap = svc.metrics.snapshot()["counters"]
            assert snap["serve.shard_restarts_total"] >= 1
            # The journal closed the loop: accepted -> replay -> done.
            state = shard.journal_state()
            key = _spec_key(svc)
            assert state.classify(key) == "complete"
            events = [r["event"] for r in state.records]
            assert "replay" in events
            # The replayed result is durably stored and warm-servable.
            warm = asyncio.run(svc.handle(dict(REQUEST)))
            assert warm["ok"] and warm["meta"]["source"] == "tier0"
        finally:
            faults.reset()
            svc.close()

    def test_repeated_crashes_surface_retryable_error_not_hang(
        self, tmp_path
    ):
        """Every worker process dies at its first job checkpoint
        (``pool.worker:kill`` re-arms per process), so the replay dies
        too: waiters must get a clean retryable error, promptly."""
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2,
            service_id="serve-chaos-b",
        )
        svc.start()
        faults.enable("pool.worker:kill@1")
        try:
            async def drive():
                waiters = [
                    asyncio.create_task(svc.handle(dict(REQUEST)))
                    for _ in range(4)
                ]
                return await asyncio.wait_for(
                    asyncio.gather(*waiters), timeout=120
                )

            responses = asyncio.run(drive())
            assert all(not r["ok"] for r in responses)
            for response in responses:
                assert response["error"]["type"] == ERR_SHARD_CRASHED
                assert response["error"]["retryable"] is True
            snap = svc.metrics.snapshot()["counters"]
            assert snap["serve.shard_restarts_total"] >= 2
            state = svc.shards.route(_spec_key(svc)).journal_state()
            assert state.classify(_spec_key(svc)) == "requeue"
        finally:
            faults.reset()
            svc.close()

    def test_healthy_shards_unaffected_by_a_dead_one(self, tmp_path):
        """Work owned by the surviving shard keeps flowing while the
        killed shard recovers."""
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2,
            service_id="serve-chaos-c",
        )
        svc.start()
        faults.enable("job.execute:delay(0.8)x*")
        try:
            key = _spec_key(svc)
            victim = svc.shards.route(key)
            other_requests = [
                {"op": "simulate", "workload": w, "length": 1200}
                for w in ("gzip", "mcf", "parser", "vpr")
            ]
            from repro.serve.protocol import sim_job_from

            survivors = [
                r for r in other_requests
                if svc.shards.route(sim_job_from(dict(r)).key())
                is not victim
            ]
            assert survivors, "need at least one key on the other shard"

            async def drive():
                doomed = asyncio.create_task(svc.handle(dict(REQUEST)))
                await _kill_worker_when_busy(victim)
                healthy = await asyncio.wait_for(
                    asyncio.gather(
                        *(svc.handle(dict(r)) for r in survivors)
                    ),
                    timeout=120,
                )
                return await asyncio.wait_for(doomed, timeout=120), healthy

            doomed, healthy = asyncio.run(drive())
            assert all(r["ok"] for r in healthy)
            assert doomed["ok"]  # replayed after restart
        finally:
            faults.reset()
            svc.close()
