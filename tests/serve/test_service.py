"""Service-level tests: coalescing, cache tiers, sharding, TCP.

The acceptance bar from the issue: 50 concurrent identical requests
produce exactly one pool execution (proven by ``serve.coalesced_total``
and the pool-call counter), and a warm-cache request round-trips
without touching the pool at all.
"""

import asyncio
import json

import pytest

from repro.serve.client import ServeClient, ServeClientError, read_endpoint
from repro.serve.service import (
    BackgroundServer,
    ExperimentService,
    endpoint_path,
)
from repro.serve.shards import shard_index

WORKLOAD = {"op": "simulate", "workload": "gzip", "length": 1500}


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def service(tmp_path):
    svc = ExperimentService(store_root=tmp_path / "cache", n_shards=2)
    svc.start()
    yield svc
    svc.close()


def counters(svc):
    return svc.metrics.snapshot()["counters"]


class TestCoalescing:
    def test_50_identical_requests_one_pool_execution(self, service):
        async def drive():
            return await asyncio.gather(
                *(service.handle(dict(WORKLOAD)) for _ in range(50))
            )

        responses = run(drive())
        assert all(r["ok"] for r in responses)
        keys = {r["meta"]["key"] for r in responses}
        assert len(keys) == 1
        assert sum(1 for r in responses if r["meta"]["coalesced"]) == 49
        snap = counters(service)
        assert snap["serve.pool_executions_total"] == 1
        assert snap["serve.coalesced_total"] == 49
        assert snap["serve.requests_total"] == 50

    def test_distinct_requests_do_not_coalesce(self, service):
        async def drive():
            return await asyncio.gather(
                service.handle(dict(WORKLOAD)),
                service.handle({**WORKLOAD, "seed": 3}),
            )

        responses = run(drive())
        assert all(r["ok"] for r in responses)
        snap = counters(service)
        assert snap["serve.pool_executions_total"] == 2
        assert snap["serve.coalesced_total"] == 0

    def test_coalesced_failure_propagates_to_all_waiters(self, service):
        bad = {**WORKLOAD, "workload": "no-such-workload"}

        async def drive():
            return await asyncio.gather(
                *(service.handle(dict(bad)) for _ in range(5))
            )

        responses = run(drive())
        assert all(not r["ok"] for r in responses)
        assert all(
            r["error"]["type"] == "job-failed" for r in responses
        )


class TestCacheTiers:
    def test_warm_request_never_touches_the_pool(self, service):
        run(service.handle(dict(WORKLOAD)))  # cold: 1 pool execution
        warm = run(service.handle(dict(WORKLOAD)))
        assert warm["ok"] and warm["meta"]["source"] == "tier0"
        snap = counters(service)
        assert snap["serve.pool_executions_total"] == 1
        assert snap["serve.cache_hits_tier0_total"] == 1

    def test_restarted_service_hits_disk_tier(self, service, tmp_path):
        cold = run(service.handle(dict(WORKLOAD)))
        assert cold["meta"]["source"] == "pool"
        # A fresh service over the same store: tier0 is cold, disk warm.
        fresh = ExperimentService(store_root=tmp_path / "cache", n_shards=2)
        try:
            warm = run(fresh.handle(dict(WORKLOAD)))
            assert warm["ok"] and warm["meta"]["source"] == "store"
            assert counters(fresh)["serve.pool_executions_total"] == 0
        finally:
            fresh.close()

    def test_dir_tier_survives_store_loss(self, service):
        cold = run(service.handle(dict(WORKLOAD)))
        key = cold["meta"]["key"]
        service.cache.tier0.clear()
        service.store.gc(clear=True)
        warm = run(service.handle(dict(WORKLOAD)))
        assert warm["ok"] and warm["meta"]["source"] == "dir"
        assert warm["meta"]["key"] == key
        assert counters(service)["serve.pool_executions_total"] == 1


class TestShardingAndOps:
    def test_sweep_routes_points_across_shards(self, service):
        response = run(
            service.handle(
                {"op": "sweep", "workload": "mcf", "parameter": "rob_size",
                 "values": [32, 64, 128, 256], "length": 1200}
            )
        )
        assert response["ok"]
        points = response["result"]
        assert len(points) == 4
        owners = {shard_index(p["key"], 2) for p in points}
        submitted = sum(s["submitted"] for s in service.shards.describe())
        assert submitted == 4
        # Routing is deterministic arithmetic on the key.
        for point in points:
            assert 0 <= shard_index(point["key"], 2) < 2
        assert owners  # at least one shard used; split depends on keys

    def test_routing_respects_prefix_ranges(self):
        assert shard_index("00" + "0" * 62, 2) == 0
        assert shard_index("7f" + "0" * 62, 2) == 0
        assert shard_index("80" + "0" * 62, 2) == 1
        assert shard_index("ff" + "0" * 62, 2) == 1
        for n in (1, 2, 3, 5, 8):
            owners = [shard_index(f"{b:02x}" + "0" * 62, n) for b in range(256)]
            assert sorted(set(owners)) == list(range(n))
            assert owners == sorted(owners)  # contiguous ranges

    def test_status_and_ping_and_bad_request(self, service):
        assert run(service.handle({"op": "ping"}))["result"] == "pong"
        status = run(service.handle({"op": "status"}))["result"]
        assert status["tiers"] == ["tier0", "store", "dir"]
        assert len(status["shards"]) == 2
        bad = run(service.handle({"op": "simulate"}))  # no workload
        assert not bad["ok"]
        assert bad["error"]["type"] == "bad-request"
        assert not bad["error"]["retryable"]

    def test_manifest_written_on_close(self, tmp_path):
        svc = ExperimentService(store_root=tmp_path / "cache", n_shards=1)
        svc.start()
        run(svc.handle(dict(WORKLOAD)))
        svc.close()
        manifest = svc.store.runs_dir / f"{svc.service_id}.serve.json"
        payload = json.loads(manifest.read_text(encoding="utf-8"))
        assert payload["metrics"]["counters"]["serve.requests_total"] == 1

    def test_shard_journal_is_write_ahead(self, service):
        response = run(service.handle(dict(WORKLOAD)))
        key = response["meta"]["key"]
        shard = service.shards.route(key)
        state = shard.journal_state()
        assert state.classify(key) == "complete"
        events = [r["event"] for r in state.records]
        assert events.index("accepted") < events.index("started")
        accepted = next(
            r for r in state.records if r["event"] == "accepted"
        )
        assert accepted["request"]["workload"] == "gzip"


class TestTcpFrontDoor:
    def test_client_roundtrip_and_endpoint_file(self, tmp_path):
        svc = ExperimentService(store_root=tmp_path / "cache", n_shards=2)
        with BackgroundServer(svc) as server:
            record = read_endpoint(tmp_path / "cache")
            assert record["port"] == server.port
            with ServeClient("127.0.0.1", server.port) as client:
                assert client.ping()
                cold = client.simulate("gzip", length=1500)
                assert cold["ok"] and cold["meta"]["source"] == "pool"
                warm = client.simulate("gzip", length=1500)
                assert warm["meta"]["source"] == "tier0"
                status = client.status()
                assert status["result"]["metrics"]["counters"][
                    "serve.pool_executions_total"
                ] == 1
        # Shutdown removed the endpoint advertisement.
        assert not endpoint_path(tmp_path / "cache").exists()

    def test_malformed_line_gets_error_not_disconnect(self, tmp_path):
        import socket

        svc = ExperimentService(store_root=tmp_path / "cache", n_shards=1)
        with BackgroundServer(svc) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                handle = sock.makefile("rb")
                sock.sendall(b"{broken\n")
                error = json.loads(handle.readline())
                assert not error["ok"]
                assert error["error"]["type"] == "bad-request"
                sock.sendall(b'{"op": "ping", "id": "after"}\n')
                after = json.loads(handle.readline())
                assert after["ok"] and after["id"] == "after"

    def test_client_error_when_no_endpoint(self, tmp_path):
        with pytest.raises(ServeClientError):
            read_endpoint(tmp_path / "nothing-here")
