"""The serve observability plane: tracing, latency stacks, telemetry.

Acceptance bars from the issue, asserted end to end:

- every traced response's ``latency_stack_ns`` sums *exactly* to its
  ``wall_ns`` (integer identity, cold and warm paths alike);
- a 50-way coalesced burst produces exactly one ``pool_execute`` span
  with all 49 ``coalesce_wait`` spans parented to it;
- the ``stats`` op reports nonzero queue depth under a burst and is
  answered inline (it never records spans of its own);
- a shard dying mid-request closes its span as ``aborted`` — no span
  ever dangles in an export;
- a same-seed warm run exports a byte-identical Chrome trace when the
  span clock is injected.
"""

import asyncio
import json

import pytest

from repro.obs.export import write_chrome_trace_spans
from repro.obs.spans import merge_span_snapshots
from repro.resilience import faults
from repro.serve.client import ServeClient
from repro.serve.protocol import ERR_SHARD_CRASHED
from repro.serve.service import BackgroundServer, ExperimentService

WORKLOAD = {"op": "simulate", "workload": "gzip", "length": 1500}


def run(coro):
    return asyncio.run(coro)


class Tick:
    """Deterministic integer-ns clock for byte-identical exports."""

    def __init__(self, step: int = 1000):
        self.t = 0
        self.step = step

    def __call__(self) -> int:
        self.t += self.step
        return self.t


@pytest.fixture
def traced(tmp_path):
    svc = ExperimentService(
        store_root=tmp_path / "cache", n_shards=2, trace_requests=True
    )
    svc.start()
    yield svc
    svc.close()


def spans_named(svc, name):
    return [s for s in svc.spans.snapshot() if s["name"] == name]


class TestLatencyStacks:
    def test_stack_sums_exactly_to_wall_cold_and_warm(self, traced):
        cold = run(traced.handle(dict(WORKLOAD)))
        warm = run(traced.handle(dict(WORKLOAD)))
        for response in (cold, warm):
            assert response["ok"]
            meta = response["meta"]
            stack = meta["latency_stack_ns"]
            assert sum(stack.values()) == meta["wall_ns"]
        assert "pool_execute" in cold["meta"]["latency_stack_ns"]
        assert "pool_execute" not in warm["meta"]["latency_stack_ns"]
        assert warm["meta"]["latency_stack_ns"]["cache_tier0"] > 0

    def test_sweep_stack_holds_the_identity_too(self, traced):
        response = run(
            traced.handle(
                {
                    "op": "sweep",
                    "workload": "gzip",
                    "parameter": "rob_size",
                    "values": [32, 64, 128],
                    "length": 1200,
                }
            )
        )
        assert response["ok"]
        meta = response["meta"]
        assert sum(meta["latency_stack_ns"].values()) == meta["wall_ns"]

    def test_stack_histograms_feed_the_quantile_table(self, traced):
        run(traced.handle(dict(WORKLOAD)))
        stats = traced.stats_payload()
        quantiles = stats["latency_quantiles_ms"]
        assert "serve.latency_stack_pool_execute_milliseconds" in quantiles
        assert quantiles["serve.request_latency_milliseconds"]["p50"] > 0


class TestBurstTopology:
    def test_50_way_burst_one_execute_49_waits_parented_to_it(self, traced):
        async def drive():
            return await asyncio.gather(
                *(traced.handle(dict(WORKLOAD)) for _ in range(50))
            )

        responses = run(drive())
        assert all(r["ok"] for r in responses)
        executes = spans_named(traced, "pool_execute")
        waits = spans_named(traced, "coalesce_wait")
        assert len(executes) == 1
        assert len(waits) == 49
        leader = executes[0]["span_id"]
        assert all(w["parent_id"] == leader for w in waits)
        # All 50 requests are distinct traces joined by that one edge.
        trace_ids = {r["meta"]["trace_id"] for r in responses}
        assert len(trace_ids) == 50

    def test_worker_spans_ride_home_to_the_service(self, traced):
        run(traced.handle(dict(WORKLOAD)))
        processes = {s["process"] for s in traced.spans.snapshot()}
        assert processes == {"serve", "worker"}
        worker = spans_named(traced, "worker_execute")
        assert worker and worker[0]["parent_id"] is not None

    def test_client_supplied_context_is_adopted(self, traced):
        response = run(
            traced.handle(
                {**WORKLOAD, "trace_id": "t-caller-1", "parent_span": "s-up"}
            )
        )
        assert response["meta"]["trace_id"] == "t-caller-1"
        roots = [
            s for s in traced.spans.snapshot(trace_id="t-caller-1")
            if s["name"] == "request"
        ]
        assert roots[0]["parent_id"] == "s-up"

    def test_malformed_trace_token_is_a_clean_error(self, traced):
        response = run(traced.handle({**WORKLOAD, "trace_id": "bad token!"}))
        assert not response["ok"]
        assert response["error"]["type"] == "bad-request"


class TestTelemetryPlane:
    def test_stats_reports_nonzero_queue_depth_under_burst(self, traced):
        requests = [
            {"op": "simulate", "workload": w, "length": 1200}
            for w in ("gzip", "mcf", "parser", "vpr")
        ]

        async def drive():
            return await asyncio.gather(
                *(traced.handle(dict(r)) for r in requests)
            )

        responses = run(drive())
        assert all(r["ok"] for r in responses)
        stats = run(traced.handle({"op": "stats"}))
        assert stats["ok"]
        samples = stats["result"]["samples"]
        assert max(s["queue_depth"] for s in samples) >= 1
        assert max(s["inflight"] for s in samples) >= 1
        assert stats["result"]["gauges"]["serve.queue_depth"] >= 1
        assert stats["result"]["gauges"]["serve.inflight_requests"] >= 1

    def test_stats_and_trace_never_record_spans(self, traced):
        run(traced.handle(dict(WORKLOAD)))
        before = len(traced.spans)
        stats = run(traced.handle({"op": "stats"}))
        trace = run(traced.handle({"op": "trace"}))
        assert stats["ok"] and trace["ok"]
        assert len(traced.spans) == before
        assert "trace_id" not in stats["meta"]

    def test_trace_op_filters_to_one_tree(self, traced):
        a = run(traced.handle(dict(WORKLOAD)))
        b = run(traced.handle({**WORKLOAD, "seed": 3}))
        tid = a["meta"]["trace_id"]
        response = run(traced.handle({"op": "trace", "trace_id": tid}))
        spans = response["result"]["spans"]
        assert spans and all(s["trace_id"] == tid for s in spans)
        assert b["meta"]["trace_id"] != tid

    def test_stats_and_trace_over_tcp(self, tmp_path):
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=1, trace_requests=True
        )
        with BackgroundServer(svc) as server:
            with ServeClient("127.0.0.1", server.port) as client:
                cold = client.simulate("gzip", length=1500)
                assert cold["ok"]
                meta = cold["meta"]
                assert sum(meta["latency_stack_ns"].values()) == meta["wall_ns"]
                stats = client.stats()
                assert stats["ok"]
                assert stats["result"]["tracing"] is True
                tree = client.trace(trace_id=meta["trace_id"])
                assert tree["ok"]
                names = {s["name"] for s in tree["result"]["spans"]}
                assert "request" in names and "pool_execute" in names


class TestManifestMerge:
    def test_manifest_carries_merged_spans_and_telemetry(self, traced):
        run(traced.handle(dict(WORKLOAD)))
        path = traced.write_manifest()
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["telemetry"]
        assert payload["latency_quantiles_ms"]
        spans = payload["spans"]
        assert spans == merge_span_snapshots([spans])  # canonical order
        assert {s["name"] for s in spans} >= {"request", "pool_execute"}

    def test_per_shard_snapshot_merge_is_order_independent(self, traced):
        run(traced.handle(dict(WORKLOAD)))
        run(traced.handle({**WORKLOAD, "seed": 3}))
        snapshot = traced.spans.snapshot()
        # Split as if two shards reported independently, in any order.
        a, b = snapshot[::2], snapshot[1::2]
        assert merge_span_snapshots([a, b]) == merge_span_snapshots([b, a])
        assert len(merge_span_snapshots([a, b, snapshot])) == len(snapshot)


class TestFlameFolding:
    def test_cold_request_folds_into_rooted_paths(self, traced):
        from repro.obs.spans import collapse_stacks

        run(traced.handle(dict(WORKLOAD)))
        lines = collapse_stacks(traced.spans.snapshot())
        paths = [line.rsplit(" ", 1)[0] for line in lines]
        # Worker span ids are namespaced under their dispatch span, so
        # every parent edge resolves and every frame path is rooted at
        # the request span — no scrambled or cyclic chains.
        assert paths and all(p.startswith("request") for p in paths)
        assert any(
            p.startswith("request;pool_execute;worker_execute")
            for p in paths
        )


class TestAbortedSpans:
    def test_shard_death_closes_spans_as_aborted_never_dangling(
        self, tmp_path
    ):
        svc = ExperimentService(
            store_root=tmp_path / "cache", n_shards=2, trace_requests=True,
            service_id="serve-obs-abort",
        )
        svc.start()
        faults.enable("pool.worker:kill@1")
        try:
            async def drive():
                return await asyncio.wait_for(
                    asyncio.gather(
                        *(svc.handle(dict(WORKLOAD)) for _ in range(3))
                    ),
                    timeout=120,
                )

            responses = run(drive())
            assert all(not r["ok"] for r in responses)
            assert all(
                r["error"]["type"] == ERR_SHARD_CRASHED for r in responses
            )
            aborted = [
                s for s in svc.spans.snapshot() if s["status"] == "aborted"
            ]
            assert aborted
            assert any(s["name"] == "pool_execute" for s in aborted)
            assert all(
                s["args"]["abort_reason"] == "shard-crashed" for s in aborted
            )
            # Every span the collector holds is closed: nothing dangles.
            assert len(svc.spans) == len(svc.spans.snapshot())
            assert all(
                s["end_ns"] is not None for s in svc.spans.snapshot()
            )
        finally:
            faults.reset()
            svc.close()


class TestByteIdentity:
    def test_same_seed_warm_run_exports_byte_identical_trace(self, tmp_path):
        # Seed the store once (pool path, real clock — not exported).
        seeder = ExperimentService(store_root=tmp_path / "cache", n_shards=2)
        seeder.start()
        try:
            assert run(seeder.handle(dict(WORKLOAD)))["ok"]
        finally:
            seeder.close()

        def traced_run(out_path):
            svc = ExperimentService(
                store_root=tmp_path / "cache", n_shards=2,
                trace_requests=True, span_clock=Tick(),
            )
            try:
                first = run(svc.handle(dict(WORKLOAD)))
                second = run(svc.handle(dict(WORKLOAD)))
                assert first["ok"] and second["ok"]
                assert first["meta"]["source"] in ("store", "dir")
                assert second["meta"]["source"] == "tier0"
                spans = merge_span_snapshots([svc.spans.snapshot()])
                return write_chrome_trace_spans(spans, out_path)
            finally:
                svc.close()

        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        assert traced_run(out_a) == traced_run(out_b)
        assert out_a.read_bytes() == out_b.read_bytes()
        events = json.loads(out_a.read_text())["traceEvents"]
        assert any(e.get("ph") == "X" for e in events)
