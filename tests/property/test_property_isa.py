"""Property-based round-trip tests for the ISA."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble, disassemble
from repro.isa.encoding import decode_instruction, encode_instruction
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPCODE_INFO, Opcode
from repro.isa.registers import Register

INT_REGS = st.integers(min_value=0, max_value=31).map(Register)
FP_REGS = st.integers(min_value=32, max_value=63).map(Register)
IMMS = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
TARGETS = st.integers(min_value=0, max_value=1 << 20)


@st.composite
def instructions(draw):
    """Generate format-valid instructions across the whole opcode set."""
    opcode = draw(st.sampled_from(list(Opcode)))
    info = OPCODE_INFO[opcode]
    fmt = info.fmt
    reg = FP_REGS if opcode.value.startswith("f") else INT_REGS
    if fmt == "rrr":
        return Instruction(
            opcode=opcode, dest=draw(reg), sources=(draw(reg), draw(reg))
        )
    if fmt == "rri":
        return Instruction(
            opcode=opcode, dest=draw(INT_REGS), sources=(draw(INT_REGS),),
            imm=draw(IMMS),
        )
    if fmt == "ri":
        return Instruction(opcode=opcode, dest=draw(reg), imm=draw(IMMS))
    if fmt == "mem":
        if info.is_store:
            return Instruction(
                opcode=opcode, sources=(draw(INT_REGS), draw(reg)),
                imm=draw(IMMS),
            )
        return Instruction(
            opcode=opcode, dest=draw(reg), sources=(draw(INT_REGS),),
            imm=draw(IMMS),
        )
    if fmt == "brr":
        return Instruction(
            opcode=opcode, sources=(draw(INT_REGS), draw(INT_REGS)),
            target=draw(TARGETS),
        )
    if fmt == "br":
        return Instruction(
            opcode=opcode, sources=(draw(INT_REGS),), target=draw(TARGETS)
        )
    if fmt == "j":
        dest = Register(1) if opcode is Opcode.JAL else None
        return Instruction(opcode=opcode, dest=dest, target=draw(TARGETS))
    if fmt == "jr":
        return Instruction(opcode=opcode, sources=(draw(INT_REGS),))
    return Instruction(opcode=opcode)


class TestISAProperties:
    @given(inst=instructions())
    @settings(max_examples=300, deadline=None)
    def test_encode_decode_round_trip(self, inst):
        assert decode_instruction(encode_instruction(inst)) == inst

    @given(inst=instructions())
    @settings(max_examples=300, deadline=None)
    def test_generated_instructions_validate(self, inst):
        inst.validate()

    @given(inst=instructions())
    @settings(max_examples=200, deadline=None)
    def test_disassemble_reassemble_non_control(self, inst):
        if inst.info.is_control:
            return  # label-less control flow can't reassemble standalone
        text = disassemble(inst)
        again = assemble(text)[0]
        assert again.opcode is inst.opcode
        assert again.dest == inst.dest
        assert again.sources == inst.sources
        assert again.imm == inst.imm

    @given(reg=st.integers(min_value=0, max_value=63).map(Register))
    @settings(max_examples=100, deadline=None)
    def test_register_parse_round_trip(self, reg):
        assert Register.parse(reg.name) == reg
