"""Property-based tests for the branch predictors."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.bimodal import BimodalPredictor, SaturatingCounter
from repro.frontend.gshare import GSharePredictor
from repro.frontend.local import LocalPredictor
from repro.frontend.perceptron import PerceptronPredictor
from repro.frontend.perfect import PerfectPredictor
from repro.frontend.tournament import TournamentPredictor

OUTCOMES = st.lists(st.booleans(), min_size=1, max_size=400)
PCS = st.lists(
    st.integers(min_value=0, max_value=1 << 20).map(lambda x: x * 4),
    min_size=1,
    max_size=400,
)


def all_predictors():
    return [
        BimodalPredictor(entries=256),
        GSharePredictor(entries=256, history_bits=8),
        LocalPredictor(history_entries=64, history_bits=6, pattern_entries=64),
        TournamentPredictor(
            global_component=GSharePredictor(entries=256, history_bits=8),
            local_component=LocalPredictor(
                history_entries=64, history_bits=6, pattern_entries=64
            ),
            chooser_entries=256,
        ),
        PerceptronPredictor(entries=64, history_bits=8),
    ]


class TestPredictorProperties:
    @given(outcomes=OUTCOMES)
    @settings(max_examples=40, deadline=None)
    def test_stats_balance_for_all_predictors(self, outcomes):
        for predictor in all_predictors():
            for outcome in outcomes:
                predictor.predict_and_update(0x1000, outcome)
            stats = predictor.stats
            assert stats.predictions == len(outcomes)
            assert 0 <= stats.correct <= stats.predictions
            assert 0.0 <= stats.accuracy <= 1.0

    @given(outcomes=OUTCOMES)
    @settings(max_examples=30, deadline=None)
    def test_perfect_predictor_never_wrong(self, outcomes):
        predictor = PerfectPredictor()
        for outcome in outcomes:
            assert predictor.predict_and_update(0x10, outcome)

    @given(outcomes=OUTCOMES)
    @settings(max_examples=30, deadline=None)
    def test_counter_stays_in_range(self, outcomes):
        counter = SaturatingCounter(bits=2)
        for outcome in outcomes:
            counter.train(outcome)
            assert 0 <= counter.value <= 3

    @given(outcomes=OUTCOMES, pcs=PCS)
    @settings(max_examples=30, deadline=None)
    def test_deterministic_replay(self, outcomes, pcs):
        for make in (
            lambda: BimodalPredictor(entries=128),
            lambda: GSharePredictor(entries=128, history_bits=6),
        ):
            a, b = make(), make()
            for outcome, pc in zip(outcomes, pcs):
                assert a.predict_and_update(pc, outcome) == (
                    b.predict_and_update(pc, outcome)
                )

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_constant_stream_eventually_perfect(self, data):
        direction = data.draw(st.booleans())
        for predictor in all_predictors():
            for _ in range(64):
                predictor.predict_and_update(0x40, direction)
            predictor.reset_stats()
            for _ in range(32):
                predictor.predict_and_update(0x40, direction)
            assert predictor.stats.accuracy == 1.0
