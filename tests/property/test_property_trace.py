"""Property-based tests for trace generation and serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.opcodes import OpClass
from repro.trace.io import load_trace, save_trace
from repro.trace.profiles import WorkloadProfile
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace

PROFILES = st.builds(
    WorkloadProfile,
    mean_dependence_distance=st.floats(min_value=1.0, max_value=16.0),
    mispredict_rate=st.floats(min_value=0.0, max_value=0.5),
    branch_taken_fraction=st.floats(min_value=0.0, max_value=1.0),
    dl1_miss_rate=st.floats(min_value=0.0, max_value=0.4),
    dl2_miss_rate=st.floats(min_value=0.0, max_value=0.2),
    il1_mpki=st.floats(min_value=0.0, max_value=50.0),
    burst_fraction=st.floats(min_value=0.0, max_value=0.9),
    burst_persistence=st.floats(min_value=0.0, max_value=1.0),
    chain_dep_fraction=st.floats(min_value=0.0, max_value=1.0),
)
SEEDS = st.integers(min_value=0, max_value=2**31)


class TestGeneratorProperties:
    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_generated_traces_are_structurally_valid(self, profile, seed):
        trace = generate_trace(profile, 400, seed=seed)
        assert len(trace) == 400
        trace.validate()
        assert trace.is_annotated
        for i, record in enumerate(trace):
            for dep in record.deps:
                assert 1 <= dep <= max(i, 1)
            if record.is_load:
                assert not (record.dl1_miss and record.dl2_miss)
            if record.is_control:
                assert record.target is not None or not record.taken

    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_determinism(self, profile, seed):
        a = generate_trace(profile, 200, seed=seed)
        b = generate_trace(profile, 200, seed=seed)
        assert a.records == b.records

    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_prefix_stability(self, profile, seed):
        """A longer generation run starts with the shorter run."""
        short = generate_trace(profile, 100, seed=seed)
        long = generate_trace(profile, 200, seed=seed)
        assert long.records[:100] == short.records


# Hypothesis-built records for serialization round-trips.
_OP = st.sampled_from(list(OpClass))


@st.composite
def trace_records(draw):
    op_class = draw(_OP)
    deps = tuple(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=65535),
                max_size=3,
            )
        )
    )
    tri = st.sampled_from([None, False, True])
    mem_addr = (
        draw(st.integers(min_value=0, max_value=(1 << 48) - 1))
        if op_class.is_memory
        else None
    )
    dl1 = draw(tri)
    dl2 = draw(tri)
    if dl1 and dl2:
        dl2 = False
    return TraceRecord(
        op_class=op_class,
        pc=draw(st.integers(min_value=0, max_value=(1 << 48) - 1)),
        deps=deps,
        mem_addr=mem_addr,
        taken=draw(st.booleans()),
        target=draw(
            st.one_of(
                st.none(), st.integers(min_value=0, max_value=(1 << 48) - 1)
            )
        ),
        mispredict=draw(tri),
        il1_miss=draw(tri),
        dl1_miss=dl1,
        dl2_miss=dl2,
    )


class TestSerializationProperties:
    @given(records=st.lists(trace_records(), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_exact(self, records, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "t.bin"
        trace = Trace(records, name="prop")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.records == records
        assert loaded.name == "prop"
