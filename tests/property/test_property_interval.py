"""Property-based tests on interval-analysis invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interval.cpi_stack import build_cpi_stack
from repro.interval.penalty import measure_penalties
from repro.interval.segmentation import segment_intervals
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace

PROFILES = st.builds(
    WorkloadProfile,
    mean_dependence_distance=st.floats(min_value=1.5, max_value=10.0),
    mispredict_rate=st.floats(min_value=0.0, max_value=0.25),
    dl1_miss_rate=st.floats(min_value=0.0, max_value=0.2),
    dl2_miss_rate=st.floats(min_value=0.0, max_value=0.05),
    il1_mpki=st.floats(min_value=0.0, max_value=15.0),
    burst_fraction=st.floats(min_value=0.0, max_value=0.5),
)
SEEDS = st.integers(min_value=0, max_value=2**31)


def run(profile, seed, n=700):
    config = CoreConfig()
    trace = generate_trace(profile, n, seed=seed)
    return trace, config, simulate(trace, config)


class TestSegmentationProperties:
    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_intervals_partition_stream(self, profile, seed):
        _, _, result = run(profile, seed)
        breakdown = segment_intervals(result)
        position = 0
        for interval in breakdown.intervals:
            assert interval.start_seq == position
            assert interval.end_seq >= interval.start_seq
            position = interval.end_seq + 1
        assert position == result.instructions

    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_event_count_bounded_by_events(self, profile, seed):
        _, _, result = run(profile, seed)
        breakdown = segment_intervals(result)
        assert breakdown.event_count <= len(result.events)


class TestPenaltyProperties:
    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_decomposition_sums(self, profile, seed):
        _, config, result = run(profile, seed)
        report = measure_penalties(result)
        for item in report.decompositions:
            assert item.penalty == item.resolution + item.refill
            assert item.refill == config.frontend_depth
            assert item.resolution >= 1
            assert item.gap >= 0
            assert 0 <= item.window_occupancy <= config.rob_size

    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_mean_penalty_above_refill_when_events_exist(self, profile, seed):
        _, config, result = run(profile, seed)
        report = measure_penalties(result)
        if report.count:
            assert report.mean_penalty > config.frontend_depth


class TestCPIStackProperties:
    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_stack_sums_to_total(self, profile, seed):
        _, config, result = run(profile, seed)
        stack = build_cpi_stack(result, config.dispatch_width)
        total = (
            stack.base + stack.bpred + stack.icache
            + stack.long_dcache + stack.other
        )
        assert abs(total - result.cycles) < 1e-6
        fractions = stack.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
