"""Property-based tests on the timing simulator's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace

PROFILES = st.builds(
    WorkloadProfile,
    mean_dependence_distance=st.floats(min_value=1.5, max_value=12.0),
    mispredict_rate=st.floats(min_value=0.0, max_value=0.2),
    dl1_miss_rate=st.floats(min_value=0.0, max_value=0.2),
    dl2_miss_rate=st.floats(min_value=0.0, max_value=0.05),
    il1_mpki=st.floats(min_value=0.0, max_value=20.0),
)
CONFIGS = st.builds(
    CoreConfig,
    dispatch_width=st.integers(min_value=1, max_value=8),
    issue_width=st.integers(min_value=1, max_value=8),
    commit_width=st.integers(min_value=1, max_value=8),
    rob_size=st.sampled_from([16, 32, 64, 128]),
    frontend_depth=st.integers(min_value=1, max_value=20),
)
SEEDS = st.integers(min_value=0, max_value=2**31)


class TestPipelineProperties:
    @given(profile=PROFILES, config=CONFIGS, seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_simulation_invariants(self, profile, config, seed):
        trace = generate_trace(profile, 800, seed=seed)
        result = simulate(trace, config)

        # every instruction committed exactly once
        assert result.instructions == 800
        # cycle count bounded below by width and dataflow limits
        assert result.cycles >= 800 / config.dispatch_width
        assert result.rob_peak_occupancy <= config.rob_size
        # per-instruction ordering
        for i in range(800):
            assert result.dispatch_cycle[i] < result.issue_cycle[i]
            assert result.issue_cycle[i] < result.complete_cycle[i]
            assert result.complete_cycle[i] <= result.commit_cycle[i]
        # commits in program order
        commits = result.commit_cycle
        assert all(a <= b for a, b in zip(commits, commits[1:]))

    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_penalty_always_at_least_refill(self, profile, seed):
        config = CoreConfig()
        trace = generate_trace(profile, 800, seed=seed)
        result = simulate(trace, config)
        for event in result.mispredict_events:
            assert event.penalty >= config.frontend_depth + 1
            assert event.resolution >= 1

    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_wider_machine_never_slower(self, profile, seed):
        trace = generate_trace(profile, 600, seed=seed)
        narrow = simulate(trace, CoreConfig(dispatch_width=2, issue_width=2,
                                            commit_width=2))
        wide = simulate(trace, CoreConfig(dispatch_width=8, issue_width=8,
                                          commit_width=8))
        assert wide.cycles <= narrow.cycles

    @given(profile=PROFILES, seed=SEEDS,
           depth=st.integers(min_value=1, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_deeper_frontend_never_faster(self, profile, seed, depth):
        trace = generate_trace(profile, 600, seed=seed)
        shallow = simulate(trace, CoreConfig(frontend_depth=depth))
        deep = simulate(trace, CoreConfig(frontend_depth=depth + 10))
        assert deep.cycles >= shallow.cycles
