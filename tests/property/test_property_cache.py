"""Property-based tests for the cache substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import Cache

ADDRESSES = st.integers(min_value=0, max_value=1 << 20)
ACCESSES = st.lists(
    st.tuples(ADDRESSES, st.booleans()), min_size=1, max_size=300
)
GEOMETRY = st.sampled_from(
    [(256, 1, 32), (512, 2, 64), (1024, 4, 64), (2048, 8, 128)]
)
POLICY = st.sampled_from(["lru", "fifo", "random", "plru"])


def make_cache(geometry, policy):
    size, ways, line = geometry
    return Cache(size_bytes=size, ways=ways, line_bytes=line, policy=policy)


class TestCacheProperties:
    @given(accesses=ACCESSES, geometry=GEOMETRY, policy=POLICY)
    @settings(max_examples=60, deadline=None)
    def test_accounting_always_balances(self, accesses, geometry, policy):
        cache = make_cache(geometry, policy)
        for address, is_write in accesses:
            cache.access(address, is_write=is_write)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(accesses)
        assert stats.writebacks <= stats.evictions <= stats.misses

    @given(accesses=ACCESSES, geometry=GEOMETRY, policy=POLICY)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, accesses, geometry, policy):
        cache = make_cache(geometry, policy)
        for address, is_write in accesses:
            cache.access(address, is_write=is_write)
        assert cache.occupancy <= cache.sets * cache.ways

    @given(address=ADDRESSES, geometry=GEOMETRY, policy=POLICY)
    @settings(max_examples=60, deadline=None)
    def test_access_after_fill_hits(self, address, geometry, policy):
        cache = make_cache(geometry, policy)
        cache.access(address)
        assert cache.access(address).hit

    @given(accesses=ACCESSES, geometry=GEOMETRY)
    @settings(max_examples=40, deadline=None)
    def test_lru_resident_set_is_most_recent_lines(self, accesses, geometry):
        """For a direct-mapped LRU cache, the resident line of each set
        is the most recently accessed line mapping to it."""
        size, _, line = geometry
        cache = Cache(size_bytes=size, ways=1, line_bytes=line, policy="lru")
        last_line_per_set = {}
        for address, is_write in accesses:
            cache.access(address, is_write=is_write)
            set_index, _ = cache._decompose(address)
            last_line_per_set[set_index] = address - address % line
        resident = set(cache.resident_lines())
        assert resident == set(last_line_per_set.values())

    @given(accesses=ACCESSES, geometry=GEOMETRY, policy=POLICY)
    @settings(max_examples=40, deadline=None)
    def test_deterministic_replay(self, accesses, geometry, policy):
        a = make_cache(geometry, policy)
        b = make_cache(geometry, policy)
        for address, is_write in accesses:
            ra = a.access(address, is_write=is_write)
            rb = b.access(address, is_write=is_write)
            assert ra == rb

    @given(accesses=ACCESSES, geometry=GEOMETRY)
    @settings(max_examples=40, deadline=None)
    def test_bigger_cache_never_more_misses_fully_assoc(self, accesses, geometry):
        """LRU inclusion property: with full associativity, doubling
        capacity can only remove misses (no Belady anomaly for LRU)."""
        _, _, line = geometry
        small = Cache(size_bytes=8 * line, ways=8, line_bytes=line, policy="lru")
        big = Cache(size_bytes=16 * line, ways=16, line_bytes=line, policy="lru")
        for address, is_write in accesses:
            small.access(address, is_write=is_write)
            big.access(address, is_write=is_write)
        assert big.stats.misses <= small.stats.misses
