"""Property tests for the columnar perf layer.

Two invariants, over arbitrary annotated traces:

* ``Trace.pack() -> unpack()`` is the identity on every record field,
  including the tri-state (None/False/True) annotations;
* vectorized predictor replay produces the very bitstream the scalar
  predictors produce one ``predict_and_update`` call at a time.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.frontend.bimodal import BimodalPredictor
from repro.frontend.gshare import GSharePredictor
from repro.frontend.local import LocalPredictor
from repro.isa.opcodes import OpClass
from repro.perf.packed import PackedTrace
from repro.perf.replay import replay
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace

_TRI = st.sampled_from([None, False, True])


@st.composite
def trace_records(draw, max_size=60):
    """A structurally valid list of TraceRecords with arbitrary fields."""
    size = draw(st.integers(min_value=0, max_value=max_size))
    records = []
    for seq in range(size):
        op_class = draw(st.sampled_from(list(OpClass)))
        deps = ()
        if seq:
            deps = tuple(
                draw(
                    st.lists(
                        st.integers(min_value=1, max_value=seq),
                        max_size=3,
                        unique=True,
                    )
                )
            )
        records.append(
            TraceRecord(
                op_class,
                pc=draw(st.integers(min_value=0, max_value=2**40)) & ~0x3,
                deps=deps,
                mem_addr=(
                    draw(st.integers(min_value=0, max_value=2**40))
                    if op_class.is_memory
                    else None
                ),
                taken=draw(st.booleans()),
                target=(
                    draw(
                        st.one_of(
                            st.none(),
                            st.integers(min_value=0, max_value=2**40),
                        )
                    )
                    if op_class.is_control
                    else None
                ),
                mispredict=draw(_TRI),
                il1_miss=draw(_TRI),
                dl1_miss=draw(_TRI),
                dl2_miss=draw(_TRI),
            )
        )
    return records


@settings(max_examples=60, deadline=None)
@given(records=trace_records())
def test_pack_unpack_is_identity(records):
    trace = Trace(records, name="prop")
    back = PackedTrace.pack(trace).unpack()
    assert len(back) == len(trace)
    for a, b in zip(back.records, trace.records):
        assert a == b
        for field in ("mispredict", "il1_miss", "dl1_miss", "dl2_miss"):
            assert getattr(a, field) is getattr(b, field)


@settings(max_examples=25, deadline=None)
@given(
    records=trace_records(max_size=120),
    entries=st.sampled_from([8, 64, 1024]),
)
def test_bimodal_replay_matches_scalar(records, entries):
    trace = Trace(records)
    result = replay(PackedTrace.pack(trace), "bimodal", entries=entries)
    predictor = BimodalPredictor(entries=entries)
    expected = [
        not predictor.predict_and_update(r.pc, r.taken)
        for r in trace.records
        if r.is_branch
    ]
    assert result.mispredicted.tolist() == expected


@settings(max_examples=25, deadline=None)
@given(
    records=trace_records(max_size=120),
    entries=st.sampled_from([16, 256]),
    history_bits=st.sampled_from([2, 5, 12]),
)
def test_gshare_replay_matches_scalar(records, entries, history_bits):
    trace = Trace(records)
    result = replay(
        PackedTrace.pack(trace),
        "gshare",
        entries=entries,
        history_bits=history_bits,
    )
    predictor = GSharePredictor(entries=entries, history_bits=history_bits)
    expected = [
        not predictor.predict_and_update(r.pc, r.taken)
        for r in trace.records
        if r.is_branch
    ]
    assert result.mispredicted.tolist() == expected


@settings(max_examples=25, deadline=None)
@given(
    records=trace_records(max_size=120),
    history_entries=st.sampled_from([4, 32]),
    history_bits=st.sampled_from([3, 8]),
)
def test_local_replay_matches_scalar(records, history_entries, history_bits):
    trace = Trace(records)
    pattern_entries = 1 << history_bits
    result = replay(
        PackedTrace.pack(trace),
        "local",
        history_entries=history_entries,
        history_bits=history_bits,
        pattern_entries=pattern_entries,
    )
    predictor = LocalPredictor(
        history_entries=history_entries,
        history_bits=history_bits,
        pattern_entries=pattern_entries,
    )
    expected = [
        not predictor.predict_and_update(r.pc, r.taken)
        for r in trace.records
        if r.is_branch
    ]
    assert result.mispredicted.tolist() == expected
