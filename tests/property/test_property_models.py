"""Property-based tests across the analytical models and cores."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interval.fast_sim import FastIntervalSimulator
from repro.interval.model import IntervalModel
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.pipeline.inorder import simulate_inorder
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace
from repro.trace.transforms import with_perfect_branches, without_short_misses

PROFILES = st.builds(
    WorkloadProfile,
    mean_dependence_distance=st.floats(min_value=1.5, max_value=10.0),
    mispredict_rate=st.floats(min_value=0.0, max_value=0.2),
    dl1_miss_rate=st.floats(min_value=0.0, max_value=0.2),
    dl2_miss_rate=st.floats(min_value=0.0, max_value=0.03),
    il1_mpki=st.floats(min_value=0.0, max_value=10.0),
)
SEEDS = st.integers(min_value=0, max_value=2**31)

# Oldest-first issue is a list scheduler, and list schedulers exhibit
# Graham-style anomalies: removing latency (or constraints) can shift a
# tie-break and lengthen the schedule by a few cycles. Cross-simulator
# orderings therefore hold up to this noise bound, not cycle-exactly.
# Observed anomalies reach 6 cycles (a shifted tie-break can delay one
# load past a commit-width boundary and cascade once), so the bound
# sits above that with margin.
SCHEDULING_NOISE_CYCLES = 10


class TestInOrderProperties:
    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_inorder_invariants(self, profile, seed):
        config = CoreConfig()
        trace = generate_trace(profile, 600, seed=seed)
        result = simulate_inorder(trace, config)
        assert result.instructions == 600
        assert result.cycles >= 600 / config.dispatch_width
        issues = result.issue_cycle
        assert all(a <= b for a, b in zip(issues, issues[1:]))
        for event in result.mispredict_events:
            assert event.resolution >= 1
            assert event.refill_cycles == config.frontend_depth

    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_inorder_never_faster_than_ooo(self, profile, seed):
        config = CoreConfig()
        trace = generate_trace(profile, 500, seed=seed)
        assert (
            simulate_inorder(trace, config).cycles
            >= simulate(trace, config).cycles - SCHEDULING_NOISE_CYCLES
        )


class TestEstimatorProperties:
    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_fast_sim_components_and_counts(self, profile, seed):
        config = CoreConfig()
        trace = generate_trace(profile, 600, seed=seed)
        fast = FastIntervalSimulator(config).estimate(trace)
        assert fast.cycles >= 600 / config.dispatch_width
        assert fast.mispredict_count == len(trace.mispredicted_indices())
        assert all(r >= 1 for r in fast.resolutions)

    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_model_monotone_in_events(self, profile, seed):
        """Removing mispredictions can only lower the model's estimate."""
        config = CoreConfig()
        trace = generate_trace(profile, 600, seed=seed)
        model = IntervalModel(config)
        base = model.predict(trace)
        ideal = IntervalModel(config, ilp_fit=model.ilp_fit).predict(
            with_perfect_branches(trace)
        )
        assert ideal.cycles <= base.cycles + 1e-9

    @given(profile=PROFILES, seed=SEEDS)
    @settings(max_examples=12, deadline=None)
    def test_short_miss_removal_never_hurts_detailed(self, profile, seed):
        config = CoreConfig()
        trace = generate_trace(profile, 500, seed=seed)
        thinned = without_short_misses(trace)
        assert (
            simulate(thinned, config).cycles
            <= simulate(trace, config).cycles + SCHEDULING_NOISE_CYCLES
        )
