"""Store integrity: checksummed objects, quarantine, and fsck."""

from __future__ import annotations

import json

from repro.lab.store import ResultStore, verify_object_bytes
from repro.perf.cache import PackedTraceCache, trace_key, verify_npz_bytes
from repro.resilience import faults
from repro.resilience.fsck import fsck_store
from repro.resilience.journal import RunJournal
from repro.workloads.spec_profiles import ALL_PROFILES

PAYLOAD = {"value": {"kind": "raw", "data": [1, 2, 3]}}


def _store_with_object(tmp_path):
    store = ResultStore(root=tmp_path)
    key = "ab" + "0" * 62
    path = store.put(key, dict(PAYLOAD))
    return store, key, path


class TestVerifyObjectBytes:
    def test_ok(self, tmp_path):
        store, key, path = _store_with_object(tmp_path)
        status, obj = verify_object_bytes(path.read_bytes(), expected_key=key)
        assert status == "ok"
        assert obj["payload"] == PAYLOAD

    def test_unreadable(self):
        status, _ = verify_object_bytes(b"not json at all")
        assert status == "unreadable"

    def test_checksum_mismatch(self, tmp_path):
        store, key, path = _store_with_object(tmp_path)
        obj = json.loads(path.read_bytes())
        obj["payload"]["value"]["data"] = [9, 9, 9]  # bit-rot
        status, _ = verify_object_bytes(json.dumps(obj).encode())
        assert status == "checksum-mismatch"

    def test_key_mismatch(self, tmp_path):
        store, key, path = _store_with_object(tmp_path)
        status, _ = verify_object_bytes(
            path.read_bytes(), expected_key="cd" + "1" * 62
        )
        assert status == "key-mismatch"


class TestStoreQuarantine:
    def test_corrupt_get_quarantines_and_misses(self, tmp_path):
        store, key, path = _store_with_object(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert store.stats.quarantined == 1
        assert not path.exists()
        assert len(store.quarantined_files()) == 1
        log = store.quarantine_dir / "quarantine.jsonl"
        assert log.is_file()

    def test_injected_write_corruption_detected_on_read(self, tmp_path):
        store = ResultStore(root=tmp_path)
        key = "ef" + "2" * 62
        with faults.injected("seed=5;store.write:corrupt@1"):
            store.put(key, dict(PAYLOAD))
        assert store.get(key) is None
        assert store.stats.corrupt == 1

    def test_injected_read_fault_is_a_miss(self, tmp_path):
        store, key, _ = _store_with_object(tmp_path)
        with faults.injected("store.read:raise@1"):
            assert store.get(key) is None
        assert store.stats.read_errors == 1
        assert store.get(key) is not None  # object itself is intact


class TestFsck:
    def test_clean_store(self, tmp_path):
        store, _, _ = _store_with_object(tmp_path)
        report = fsck_store(store)
        assert report.ok
        assert report.objects_scanned == 1

    def test_detects_every_injected_corruption(self, tmp_path):
        """fsck must detect 100% of corrupted objects (acceptance)."""
        store = ResultStore(root=tmp_path)
        keys = [f"{i:02x}" + str(i % 10) * 62 for i in range(8)]
        paths = [store.put(k, dict(PAYLOAD)) for k in keys]
        corrupted = paths[::2]  # every other object
        for i, path in enumerate(corrupted):
            raw = bytearray(path.read_bytes())
            raw[(i * 7) % len(raw)] ^= 0x40
            path.write_bytes(bytes(raw))
        report = fsck_store(store)
        assert not report.ok
        flagged = {issue.path for issue in report.issues}
        assert flagged == {str(p) for p in corrupted}

    def test_repair_quarantines_and_second_pass_is_clean(self, tmp_path):
        store, key, path = _store_with_object(tmp_path)
        path.write_bytes(b"{broken")
        report = fsck_store(store, repair=True)
        assert report.ok  # all issues repaired
        assert report.repaired == 1
        assert fsck_store(ResultStore(root=tmp_path)).ok
        assert len(ResultStore(root=tmp_path).quarantined_files()) == 1

    def test_flags_unreadable_manifest_and_stray_tmp(self, tmp_path):
        store = ResultStore(root=tmp_path)
        store.runs_dir.mkdir(parents=True, exist_ok=True)
        (store.runs_dir / "broken.json").write_text("{nope")
        (store.objects_dir / ".tmp-dead1").parent.mkdir(
            parents=True, exist_ok=True
        )
        (store.objects_dir / ".tmp-dead1").write_bytes(b"torn")
        report = fsck_store(store)
        kinds = sorted(issue.kind for issue in report.issues)
        assert kinds == ["stray-tmp", "unreadable-manifest"]
        report = fsck_store(store, repair=True)
        assert report.ok
        assert not (store.objects_dir / ".tmp-dead1").exists()

    def test_journal_with_torn_tail_is_legal(self, tmp_path):
        store = ResultStore(root=tmp_path)
        journal = RunJournal(store.runs_dir, "run1")
        journal.run_start(1, "salt", resumed=False)
        journal.close()
        with open(journal.path, "a",  # repro: noqa[RES001] torn-write sim
                  encoding="utf-8") as handle:
            handle.write('{"event": "torn')
        report = fsck_store(store)
        assert report.ok
        assert report.journals_scanned == 1

    def test_stale_salt_is_informational(self, tmp_path):
        store, key, path = _store_with_object(tmp_path)
        obj = json.loads(path.read_bytes())
        obj["salt"] = "older-code-version"
        path.write_text(json.dumps(obj))
        report = fsck_store(store)
        assert report.ok
        assert report.stale == [str(path)]


class TestPackedCacheIntegrity:
    def test_roundtrip_verifies(self, tmp_path):
        cache = PackedTraceCache(tmp_path)
        profile = ALL_PROFILES["gzip"]
        cache.get_or_build(profile, 400, 7)
        key = trace_key(profile, 400, 7)
        raw = cache._object_path(key).read_bytes()
        assert verify_npz_bytes(raw) == "ok"
        assert cache.get(key) is not None

    def test_corrupt_npz_quarantined_then_rebuilt(self, tmp_path):
        cache = PackedTraceCache(tmp_path)
        profile = ALL_PROFILES["gzip"]
        packed = cache.get_or_build(profile, 400, 7)
        key = trace_key(profile, 400, 7)
        with faults.injected("seed=11;cache.npz:corrupt@1"):
            cache.put(key, packed)
        assert cache.get(key) is None  # quarantined, not served
        assert cache.corrupt == 1
        rebuilt = cache.get_or_build(profile, 400, 7)
        assert len(rebuilt) == len(packed)
        assert cache.get(key) is not None

    def test_verify_statuses(self, tmp_path):
        assert verify_npz_bytes(b"junk") == "unreadable"
