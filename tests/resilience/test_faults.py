"""Fault-spec grammar, arming semantics, and ambient activation."""

from __future__ import annotations

import os

import pytest

from repro.resilience import faults
from repro.resilience.faults import (
    FOREVER,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    parse_spec,
)


class TestGrammar:
    def test_parses_single_clause(self):
        plan = parse_spec("store.read:raise")
        assert len(plan.rules) == 1
        rule = plan.rules[0]
        assert rule.site == "store.read"
        assert rule.action == "raise"
        assert rule.at_hit == 1
        assert rule.count == 1

    def test_parses_seed_hit_and_count(self):
        plan = parse_spec("seed=42;pool.worker:kill@3x2;job.execute:raise")
        assert plan.seed == 42
        kill = plan.rules[0]
        assert (kill.site, kill.action, kill.at_hit, kill.count) == (
            "pool.worker", "kill", 3, 2
        )

    def test_parses_delay_and_forever(self):
        plan = parse_spec("pool.worker:delay(1.5)@2x*")
        rule = plan.rules[0]
        assert rule.action == "delay"
        assert rule.delay_s == pytest.approx(1.5)
        assert rule.count == FOREVER

    def test_render_round_trips(self):
        spec = "seed=7;store.write:corrupt@2x3;cache.npz:delay(0.25)"
        plan = parse_spec(spec)
        again = parse_spec(plan.render())
        assert again.seed == plan.seed
        assert again.rules == plan.rules

    @pytest.mark.parametrize("bad", [
        "nosuch.site:raise",
        "store.read:explode",
        "store.read:raise@0",
        "store.read:raise@1x0",
        "store.read",
        "seed=oops;store.read:raise",
        "store.read:delay(nan-ish)",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            parse_spec(bad)


class TestArming:
    def test_fires_at_nth_hit_only(self):
        plan = FaultPlan(rules=[FaultRule(site="job.execute",
                                          action="raise", at_hit=2)])
        plan.hit("job.execute", None, allow_kill=False)  # hit 1: armed later
        with pytest.raises(InjectedFault):
            plan.hit("job.execute", None, allow_kill=False)  # hit 2
        plan.hit("job.execute", None, allow_kill=False)  # hit 3: disarmed

    def test_count_window(self):
        plan = parse_spec("job.execute:raise@2x2")
        plan.hit("job.execute", None, allow_kill=False)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.hit("job.execute", None, allow_kill=False)
        plan.hit("job.execute", None, allow_kill=False)

    def test_sites_count_independently(self):
        plan = parse_spec("store.read:raise@2")
        plan.hit("store.write", b"x", allow_kill=False)
        plan.hit("store.read", b"x", allow_kill=False)
        with pytest.raises(InjectedFault):
            plan.hit("store.read", b"x", allow_kill=False)

    def test_corrupt_is_deterministic_and_changes_bytes(self):
        data = bytes(range(256)) * 4
        flipped1 = parse_spec("seed=9;store.read:corrupt").hit(
            "store.read", data, allow_kill=False
        )
        flipped2 = parse_spec("seed=9;store.read:corrupt").hit(
            "store.read", data, allow_kill=False
        )
        assert flipped1 == flipped2
        assert flipped1 != data
        assert len(flipped1) == len(data)
        other_seed = parse_spec("seed=10;store.read:corrupt").hit(
            "store.read", data, allow_kill=False
        )
        assert other_seed != flipped1

    def test_corrupt_without_payload_degrades_to_raise(self):
        plan = parse_spec("job.execute:corrupt")
        with pytest.raises(InjectedFault):
            plan.hit("job.execute", None, allow_kill=False)

    def test_kill_without_authorization_degrades_to_raise(self):
        # The coordinator/test runner must never be SIGKILLed by a plan.
        plan = parse_spec("pool.worker:kill")
        with pytest.raises(InjectedFault):
            plan.hit("pool.worker", None, allow_kill=False)

    def test_injected_counter(self):
        plan = parse_spec("job.execute:raise@1x2")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.hit("job.execute", None, allow_kill=False)
        assert plan.injected == 2


class TestAmbient:
    def test_inactive_is_passthrough(self):
        assert faults.fault_point("store.read", b"abc") == b"abc"
        assert not faults.active()

    def test_enable_exports_env_and_disable_hides_it(self):
        faults.enable("seed=3;store.read:raise@5")
        assert os.environ[faults.ENV_VAR].startswith("seed=3")
        assert faults.active()
        faults.disable()
        assert not faults.active()  # forced off beats the env spec
        faults.reset()
        assert faults.ENV_VAR not in os.environ

    def test_env_activation(self):
        os.environ[faults.ENV_VAR] = "job.execute:raise"
        try:
            with pytest.raises(InjectedFault):
                faults.fault_point("job.execute")
        finally:
            faults.reset()

    def test_injected_context_manager_restores(self):
        with faults.injected("store.read:raise") as plan:
            assert faults.current_plan() is plan
        assert not faults.active()
