"""The deadline carrier: budgets, expiry, and the env hop to workers."""

import os

import pytest

from repro.lab.jobs import JobStatus, SimJob, execute_job
from repro.resilience import deadline


class TestDeadlineMath:
    def test_budget_becomes_absolute_monotonic_instant(self):
        before = deadline.now_ns()
        dl = deadline.deadline_from_budget_ms(250)
        after = deadline.now_ns()
        assert before + 250_000_000 <= dl <= after + 250_000_000

    def test_none_never_expires(self):
        assert deadline.expired(None) is False
        assert deadline.remaining_ms(None) is None
        assert deadline.remaining_s(None) is None

    def test_expiry_and_clamped_remaining(self):
        past = deadline.now_ns() - 1
        assert deadline.expired(past) is True
        assert deadline.remaining_ms(past) == 0.0
        assert deadline.remaining_s(past) == 0.0
        future = deadline.deadline_from_budget_ms(60_000)
        assert deadline.expired(future) is False
        remaining = deadline.remaining_ms(future)
        assert 0.0 < remaining <= 60_000.0

    def test_remaining_s_is_remaining_ms_scaled(self):
        future = deadline.deadline_from_budget_ms(1_000)
        ms = deadline.remaining_ms(future)
        s = deadline.remaining_s(future)
        assert s == pytest.approx(ms / 1000.0, rel=0.5)


class TestEnvCarrier:
    def test_export_roundtrip_and_clear(self, monkeypatch):
        monkeypatch.delenv(deadline.ENV_DEADLINE_NS, raising=False)
        assert deadline.from_env() is None
        dl = deadline.deadline_from_budget_ms(500)
        deadline.export_env(dl)
        assert os.environ[deadline.ENV_DEADLINE_NS] == str(dl)
        assert deadline.from_env() == dl
        deadline.clear_env()
        assert deadline.ENV_DEADLINE_NS not in os.environ
        assert deadline.from_env() is None

    def test_garbage_env_reads_as_no_deadline(self, monkeypatch):
        monkeypatch.setenv(deadline.ENV_DEADLINE_NS, "not-a-number")
        assert deadline.from_env() is None


class TestExecuteJobDeadline:
    def test_expired_job_is_dropped_at_dequeue(self, tmp_path):
        spec = SimJob(workload="gzip", length=500)
        result = execute_job(
            spec,
            store_root=str(tmp_path / "cache"),
            deadline_ns=deadline.now_ns() - 1,
        )
        assert result.status == JobStatus.EXPIRED
        assert result.ok is False
        assert result.payload is None
        assert result.attempts == 0
        assert "dropped at dequeue" in result.error
        # Dropped means *dropped*: nothing was computed or stored.
        assert not list((tmp_path / "cache").rglob("*.json"))

    def test_live_deadline_executes_normally(self, tmp_path):
        spec = SimJob(workload="gzip", length=500)
        result = execute_job(
            spec,
            store_root=str(tmp_path / "cache"),
            deadline_ns=deadline.deadline_from_budget_ms(120_000),
        )
        assert result.ok
        assert result.payload is not None
        # The ambient export is scoped to the job: cleaned up after.
        assert deadline.ENV_DEADLINE_NS not in os.environ
