"""Crash-safe file primitives: atomic replace, JSONL append, torn tails."""

from __future__ import annotations

import json

import pytest

from repro.resilience.atomic import (
    AppendOnlyWriter,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    canonical_json_bytes,
    read_jsonl,
    stray_tmp_files,
)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "state.json"
        atomic_write_bytes(target, b"one")
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"

    def test_creates_parent_dirs(self, tmp_path):
        target = tmp_path / "a" / "b" / "state.txt"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"

    def test_no_tmp_left_behind(self, tmp_path):
        atomic_write_bytes(tmp_path / "x.bin", b"data")
        assert list(stray_tmp_files(tmp_path)) == []

    def test_canonical_json_is_stable(self, tmp_path):
        a = {"b": 1, "a": [2, 3]}
        b = {"a": [2, 3], "b": 1}
        assert canonical_json_bytes(a) == canonical_json_bytes(b)
        path = tmp_path / "c.json"
        atomic_write_json(path, a, sort_keys=True)
        assert path.read_bytes() == canonical_json_bytes(a)

    def test_stray_tmp_detection(self, tmp_path):
        (tmp_path / "sub").mkdir()
        stray = tmp_path / "sub" / ".tmp-abc123.json"
        stray.write_bytes(b"torn")
        assert list(stray_tmp_files(tmp_path)) == [stray]


class TestAppendOnlyWriter:
    def test_appends_records(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with AppendOnlyWriter(path) as writer:
            writer.append({"n": 1})
            writer.append({"n": 2})
        assert read_jsonl(path) == [{"n": 1}, {"n": 2}]

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with AppendOnlyWriter(path) as writer:
            writer.append({"n": 1})
        with AppendOnlyWriter(path) as writer:
            writer.append({"n": 2})
        assert [r["n"] for r in read_jsonl(path)] == [1, 2]


class TestReadJsonl:
    def test_missing_file_is_empty(self, tmp_path):
        assert read_jsonl(tmp_path / "nope.jsonl") == []

    def test_drops_torn_final_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"n": 1}\n{"n": 2}\n{"n": 3, "tor')
        assert read_jsonl(path) == [{"n": 1}, {"n": 2}]

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"n": 1}\nGARBAGE\n{"n": 3}\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"n": 1}\n\n{"n": 2}\n')
        assert [r["n"] for r in read_jsonl(path)] == [1, 2]
