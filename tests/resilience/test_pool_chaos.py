"""Chaos suite: the pool under injected timeouts, kills, hangs, signals."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.lab import ResultStore, SimJob, run_jobs
from repro.lab.jobs import JobStatus
from repro.resilience import faults
from repro.resilience.watchdog import WatchdogPolicy
from repro.util.rng import jittered_backoff_s


def _jobs(n=3, length=400, **kwargs):
    workloads = ["gzip", "twolf", "vpr", "gcc", "mcf"]
    return [
        SimJob(workload=workloads[i % len(workloads)], length=length,
               seed=100 + i, **kwargs)
        for i in range(n)
    ]


class TestJitteredBackoff:
    def test_deterministic_per_key_and_attempt(self):
        a = jittered_backoff_s(0.1, 0, "job-key")
        assert a == jittered_backoff_s(0.1, 0, "job-key")
        assert a != jittered_backoff_s(0.1, 0, "other-key")
        assert a != jittered_backoff_s(0.1, 1, "job-key")

    def test_exponential_envelope(self):
        for attempt in range(4):
            value = jittered_backoff_s(0.1, attempt, "k")
            assert 0.05 * 2 ** attempt <= value < 0.15 * 2 ** attempt

    def test_zero_base_is_zero(self):
        assert jittered_backoff_s(0.0, 3, "k") == 0.0


class TestRetries:
    def test_injected_failure_consumes_retry_then_succeeds(self, tmp_path):
        job = SimJob(workload="gzip", length=400, retries=1, backoff_s=0.0)
        with faults.injected("job.execute:raise@1"):
            results, telemetry = run_jobs([job], workers=1,
                                          store_root=tmp_path)
        assert results[0].status == JobStatus.OK
        assert results[0].attempts == 2
        assert telemetry.retries == 1

    def test_timeout_consumes_retry_budget(self, tmp_path):
        """Regression: a timed-out job must retry, not fail instantly.

        The job can never finish inside 1 ms, so every attempt times
        out — the failure must record retries+1 attempts, proving the
        timeout went through the retry budget instead of bypassing it.
        Caching is off because an abandoned attempt that completes in
        the background would otherwise store its result and let a later
        retry come back ``cached`` (legitimate salvage, but not the
        path under test).
        """
        job = SimJob(workload="twolf", length=60_000, seed=9,
                     timeout_s=0.001, retries=2, backoff_s=0.01)
        results, _ = run_jobs([job], workers=2, use_cache=False)
        assert results[0].status == JobStatus.FAILED
        assert results[0].attempts == 3
        assert "Timeout" in results[0].error

    def test_timeout_retry_can_succeed(self, tmp_path):
        """A generous timeout on retry lets the job complete."""
        # First attempt gets an impossible budget only if we injected a
        # delay; here the budget is sane and the job just passes —
        # asserting the retry path doesn't break the success path.
        job = SimJob(workload="gzip", length=400, timeout_s=30.0, retries=2)
        results, _ = run_jobs([job], workers=2, store_root=tmp_path)
        assert results[0].status == JobStatus.OK

    @pytest.mark.slow
    def test_queue_wait_does_not_consume_the_timeout(self, tmp_path):
        """Regression: the timeout clock starts at execution, not submit.

        Six timed jobs share two workers; each attempt is delayed 1.5 s
        by an injected fault, so the later jobs sit queued for several
        seconds — far past their 2.5 s budget — before a worker picks
        them up. With a submit-time clock (and retries=0) they would be
        cancelled unexecuted and recorded as timeout failures; with the
        execution-time clock every one of them finishes inside budget.
        """
        jobs = _jobs(6, length=300, timeout_s=2.5, retries=0)
        with faults.injected("job.execute:delay(1.5)@1x*"):
            results, _ = run_jobs(jobs, workers=2, store_root=tmp_path)
        assert [r.status for r in results] == [JobStatus.OK] * 6


class TestStoreWriteFault:
    def test_store_write_fault_does_not_abort_the_run(self, tmp_path):
        """execute_job's never-raises contract covers the cache write.

        An injected store.write fault on the first put must degrade to
        an OK-but-unstored result (counted through the metrics
        registry), not propagate out of the serial path and abort the
        batch before run_end/manifest.
        """
        jobs = _jobs(2)
        with faults.injected("store.write:raise@1"):
            results, telemetry = run_jobs(
                jobs, workers=1, store_root=tmp_path, collect_metrics=True,
            )
        assert all(r.status == JobStatus.OK for r in results)
        assert all(r.payload is not None for r in results)
        counters = (results[0].metrics or {}).get("counters", {})
        assert counters.get("resilience.store_put_failures_total") == 1
        # The faulted object is simply absent; the run state is intact.
        store = ResultStore(root=tmp_path)
        assert store.get(results[0].key) is None
        assert store.get(results[1].key) is not None
        merged = store.runs_dir / f"{telemetry.run_id}.merged.json"
        assert merged.is_file()


class TestWorkerKill:
    def test_killed_worker_degrades_to_serial_and_completes(self, tmp_path):
        """SIGKILLing workers mid-sweep must not lose the run."""
        jobs = _jobs(4)
        with faults.injected("seed=7;pool.worker:kill@1x*"):
            results, telemetry = run_jobs(jobs, workers=2,
                                          store_root=tmp_path)
        assert all(r.ok for r in results)
        assert telemetry.total == 4
        # The whole run is journaled despite the carnage.
        store = ResultStore(root=tmp_path)
        merged = store.runs_dir / f"{telemetry.run_id}.merged.json"
        assert merged.is_file()

    def test_kill_never_fires_serially(self, tmp_path):
        """Serial runs are not marked workers: kill degrades to raise,
        which the retry machinery absorbs like any failure."""
        jobs = _jobs(1, retries=1, backoff_s=0.0)
        with faults.injected("pool.worker:kill@1"):
            results, _ = run_jobs(jobs, workers=1, store_root=tmp_path)
        assert results[0].ok


@pytest.mark.slow
class TestHangWatchdog:
    def test_hung_worker_is_detected_and_run_degrades(self, tmp_path):
        """A frozen worker must not stall the run: the watchdog declares
        a hang, kills the stale workers, and the jobs re-run serially in
        the parent (where pool.worker never fires). ``stop`` (SIGSTOP)
        freezes the whole process — heartbeat pulse thread included —
        which is the hang signature the watchdog is built to catch.
        """
        jobs = _jobs(2, length=400)
        policy = WatchdogPolicy(hang_s=2.0, poll_s=0.1)
        watch_started = time.time()
        with faults.injected("pool.worker:stop@1x*"):
            results, telemetry = run_jobs(
                jobs, workers=2, store_root=tmp_path,
                watchdog_policy=policy,
            )
        assert all(r.ok for r in results)
        assert time.time() - watch_started < 45.0  # promptly degraded

    def test_long_job_with_fresh_heartbeat_is_not_killed(self, tmp_path):
        """Regression: a job merely *longer* than hang_s is not a hang.

        Each worker sleeps 3 s mid-job — past the 1 s hang budget — but
        its background pulse keeps the heartbeat fresh, so the watchdog
        must leave it alone: no hang declared, no degradation to serial,
        results come back from the pool's first attempt.
        """
        jobs = _jobs(2, length=400)
        policy = WatchdogPolicy(hang_s=1.0, poll_s=0.1)
        with faults.injected("pool.worker:delay(3)@1x*"):
            results, telemetry = run_jobs(
                jobs, workers=2, store_root=tmp_path,
                collect_metrics=True, watchdog_policy=policy,
            )
        assert all(r.ok for r in results)
        counters = (telemetry.parent_metrics or {}).get("counters", {})
        assert "resilience.hung_workers_total" not in counters
        assert "resilience.pool_degradations_total" not in counters


_SIGINT_DRIVER = """
import sys
from repro.lab import run_jobs, SimJob

jobs = [SimJob(workload=w, length=120_000, seed=3)
        for w in ("gzip", "twolf", "vpr", "gcc", "mcf", "crafty")]
_, telemetry = run_jobs(jobs, workers=2, store_root=sys.argv[1],
                        run_id="sigrun")
sys.exit(130 if telemetry.interrupted else 0)
"""


@pytest.mark.slow
class TestSigintResume:
    def test_sigint_then_resume_is_byte_identical(self, tmp_path):
        """Acceptance: interrupt a run, resume it, and the merged
        manifest matches an uninterrupted run byte for byte."""
        jobs = [SimJob(workload=w, length=120_000, seed=3)
                for w in ("gzip", "twolf", "vpr", "gcc", "mcf", "crafty")]
        clean_root = tmp_path / "clean"
        _, clean = run_jobs(jobs, workers=2, store_root=clean_root,
                            run_id="sigrun")
        clean_bytes = (
            ResultStore(root=clean_root).runs_dir / "sigrun.merged.json"
        ).read_bytes()

        sig_root = tmp_path / "sig"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        proc = subprocess.Popen(
            [sys.executable, "-c", _SIGINT_DRIVER, str(sig_root)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        time.sleep(2.5)  # let it start some (not all) jobs
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=120)

        store = ResultStore(root=sig_root)
        journal = store.runs_dir / "sigrun.journal.jsonl"
        if proc.returncode == 0 or not journal.is_file():
            pytest.skip("run finished before the signal landed")
        assert proc.returncode == 130

        results, resumed = run_jobs(jobs, workers=2, store_root=sig_root,
                                    run_id="sigrun", resume=True)
        assert all(r.ok for r in results)
        resumed_bytes = (
            store.runs_dir / "sigrun.merged.json"
        ).read_bytes()
        assert resumed_bytes == clean_bytes
