"""Write-ahead journal semantics and crash-safe resumable runs."""

from __future__ import annotations

import json

import pytest

from repro.lab import ResultStore, SimJob, run_jobs
from repro.lab.jobs import JobStatus
from repro.resilience import faults
from repro.resilience.journal import (
    JournalState,
    RunJournal,
    journal_path,
    list_journals,
    load_journal,
)


def _jobs(n=3, length=400):
    workloads = ["gzip", "twolf", "vpr", "gcc", "mcf"]
    return [
        SimJob(workload=workloads[i % len(workloads)], length=length, seed=i)
        for i in range(n)
    ]


class TestJournal:
    def test_records_round_trip(self, tmp_path):
        journal = RunJournal(tmp_path, "r1")
        journal.run_start(2, "salt", resumed=False)
        journal.queued(0, "k0", "job0")
        journal.queued(1, "k1", "job1")
        journal.started(0, "k0")
        journal.done(0, "k0", "ok", "sha", attempts=1)
        journal.started(1, "k1")
        journal.run_end(1, 0)
        journal.close()
        state = JournalState.load(journal.path)
        assert state.run_id == "r1"
        assert set(state.done) == {"k0"}
        assert state.in_flight == ["k1"]  # started, never finished
        assert state.ended
        assert state.classify("k0") == "complete"
        assert state.classify("k1") == "requeue"
        assert state.classify("never-seen") == "requeue"

    def test_failed_jobs_requeue(self, tmp_path):
        journal = RunJournal(tmp_path, "r2")
        journal.queued(0, "k0", "job0")
        journal.failed(0, "k0", "Boom\nValueError: nope", attempts=2)
        journal.close()
        state = JournalState.load(journal.path)
        assert state.classify("k0") == "requeue"
        assert state.failed["k0"]["error"] == "ValueError: nope"

    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = RunJournal(tmp_path, "r3")
        journal.queued(0, "k0", "job0")
        journal.done(0, "k0", "ok", "sha", attempts=1)
        journal.close()
        with open(journal.path, "a",  # repro: noqa[RES001] torn-write sim
                  encoding="utf-8") as handle:
            handle.write('{"event": "fail')  # crash mid-append
        state = JournalState.load(journal.path)
        assert state.classify("k0") == "complete"

    def test_load_journal_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_journal(tmp_path, "nope")

    def test_list_journals(self, tmp_path):
        RunJournal(tmp_path, "a").run_start(0, "s", resumed=False)
        RunJournal(tmp_path, "b").run_start(0, "s", resumed=False)
        names = {p.name for p in list_journals(tmp_path)}
        assert names == {"a.journal.jsonl", "b.journal.jsonl"}


class TestResume:
    def test_run_writes_journal_and_merged_manifest(self, tmp_path):
        jobs = _jobs(2)
        _, telemetry = run_jobs(jobs, workers=1, store_root=tmp_path)
        store = ResultStore(root=tmp_path)
        assert journal_path(store.runs_dir, telemetry.run_id).is_file()
        merged = store.runs_dir / f"{telemetry.run_id}.merged.json"
        assert merged.is_file()
        doc = json.loads(merged.read_bytes())
        assert [j["status"] for j in doc["jobs"]] == ["ok", "ok"]

    def test_resume_replays_done_jobs_from_store(self, tmp_path):
        jobs = _jobs(3)
        _, first = run_jobs(jobs, workers=1, store_root=tmp_path)
        results, second = run_jobs(
            jobs, workers=1, store_root=tmp_path,
            run_id=first.run_id, resume=True,
        )
        assert [r.status for r in results] == [JobStatus.RESUMED] * 3
        assert second.resumed == 3
        assert all(r.ok for r in results)

    def test_resume_reruns_jobs_missing_from_journal(self, tmp_path):
        jobs = _jobs(3)
        _, first = run_jobs(jobs[:2], workers=1, store_root=tmp_path)
        # Resume sees a journal covering 2 of 3 jobs; the third runs.
        # (Job 3 also isn't in the cache, so it truly executes.)
        results, _ = run_jobs(
            jobs, workers=1, store_root=tmp_path,
            run_id=first.run_id, resume=True,
        )
        assert [r.status for r in results] == [
            JobStatus.RESUMED, JobStatus.RESUMED, JobStatus.OK
        ]

    def test_resumed_merged_manifest_is_byte_identical(self, tmp_path):
        """The headline resilience guarantee, in-process form.

        An uninterrupted run and a crash-then-resume run of the same
        jobs produce byte-identical merged manifests.
        """
        jobs = _jobs(3)
        baseline_root = tmp_path / "baseline"
        crash_root = tmp_path / "crashed"
        _, clean = run_jobs(
            jobs, workers=1, store_root=baseline_root, run_id="runX"
        )
        clean_bytes = (
            ResultStore(root=baseline_root).runs_dir / "runX.merged.json"
        ).read_bytes()

        # "Crash" after the first job: the injected fault fails jobs 2
        # and 3, which the journal records as failed (requeued on
        # resume) — the store holds only job 1's payload.
        with faults.injected("job.execute:raise@2x*"):
            _, crashed = run_jobs(
                jobs, workers=1, store_root=crash_root, run_id="runX"
            )
        assert crashed.failed == 2
        results, resumed = run_jobs(
            jobs, workers=1, store_root=crash_root,
            run_id="runX", resume=True,
        )
        assert all(r.ok for r in results)
        assert resumed.resumed == 1  # job 1 replayed, jobs 2-3 re-ran
        resumed_bytes = (
            ResultStore(root=crash_root).runs_dir / "runX.merged.json"
        ).read_bytes()
        assert resumed_bytes == clean_bytes

    def test_resume_requires_store_and_run_id(self, tmp_path):
        with pytest.raises(ValueError):
            run_jobs(_jobs(1), workers=1, use_cache=False, resume=True,
                     run_id="x")
        with pytest.raises(ValueError):
            run_jobs(_jobs(1), workers=1, store_root=tmp_path, resume=True)

    def test_resume_with_quarantined_object_reruns_job(self, tmp_path):
        jobs = _jobs(1)
        _, first = run_jobs(jobs, workers=1, store_root=tmp_path)
        store = ResultStore(root=tmp_path)
        [path] = list(store.iter_objects())
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0x10
        path.write_bytes(bytes(raw))
        results, telemetry = run_jobs(
            jobs, workers=1, store_root=tmp_path,
            run_id=first.run_id, resume=True,
        )
        # The corrupt payload was quarantined, not trusted.
        assert results[0].status == JobStatus.OK
        assert telemetry.resumed == 0
        assert len(store.quarantined_files()) >= 1
