"""Unit tests for the tracer, the runtime switches, and the exports."""

from __future__ import annotations

import json
import os

from repro.obs import runtime
from repro.obs.export import (
    TID_BPRED,
    TID_LONG_DMISS,
    chrome_trace,
    chrome_trace_events,
    jsonl_records,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import (
    KIND_BPRED,
    KIND_ICACHE,
    KIND_LONG_DMISS,
    MissSpan,
    RecordingTracer,
    Tracer,
)


def _bpred_span(seq=5, dispatch=100, resolve=120, refill=5):
    return MissSpan(
        kind=KIND_BPRED,
        seq=seq,
        dispatch_cycle=dispatch,
        resolve_cycle=resolve,
        refill_cycles=refill,
        window_occupancy=12,
        wrong_path_instructions=7,
    )


class TestSpans:
    def test_span_arithmetic(self):
        span = _bpred_span()
        assert span.resolution == 20
        assert span.end_cycle == 125
        assert span.duration == 25  # resolution + refill == the penalty

    def test_noop_tracer_swallows_everything(self):
        tracer = Tracer()
        tracer.miss_span(_bpred_span())
        tracer.instant("interval_boundary", cycle=3)
        assert not tracer.enabled

    def test_recording_tracer_buffers_in_order(self):
        tracer = RecordingTracer()
        tracer.miss_span(_bpred_span(seq=1))
        tracer.miss_span(MissSpan(KIND_ICACHE, 2, 10, 20))
        tracer.instant("interval_boundary", cycle=20, seq=2)
        assert len(tracer) == 3
        assert tracer.counts() == {KIND_BPRED: 1, KIND_ICACHE: 1}
        assert [s.seq for s in tracer.spans_of_kind(KIND_BPRED)] == [1]
        assert tracer.instants[0].args == {"seq": 2}


class TestRuntime:
    def test_disabled_by_default(self):
        assert runtime.current_tracer() is None
        assert runtime.current_metrics() is None
        assert runtime.current_profiler() is None
        assert runtime.drain_trace() is None
        assert runtime.drain_metrics() is None
        assert runtime.drain_profile() is None

    def test_enable_exports_env_for_workers(self):
        runtime.enable_tracing()
        assert os.environ[runtime.ENV_TRACE] == "1"
        assert runtime.current_tracer() is not None

    def test_env_var_activates_without_forcing(self):
        os.environ[runtime.ENV_METRICS] = "1"
        assert runtime.metrics_enabled()
        runtime.current_metrics().counter("core.cycles_total").inc()
        assert runtime.drain_metrics() is not None

    def test_drain_opens_a_fresh_window(self):
        runtime.enable_tracing()
        runtime.current_tracer().miss_span(_bpred_span())
        first = runtime.drain_trace()
        assert first is not None and len(first) == 1
        assert runtime.drain_trace() is None  # window is fresh
        assert runtime.current_tracer() is not first

    def test_empty_windows_drain_to_none(self):
        runtime.enable_tracing()
        runtime.enable_metrics()
        runtime.current_tracer()
        runtime.current_metrics()
        assert runtime.drain_trace() is None
        assert runtime.drain_metrics() is None

    def test_reset_clears_flags_state_and_env(self):
        runtime.enable_tracing()
        runtime.enable_metrics()
        os.environ[runtime.ENV_TRACE_DIR] = "/tmp/nowhere"
        runtime.reset()
        assert not runtime.tracing_enabled()
        assert runtime.ENV_TRACE not in os.environ
        assert runtime.trace_dir() is None


class TestChromeExport:
    def _tracer(self):
        tracer = RecordingTracer()
        tracer.miss_span(_bpred_span())
        tracer.miss_span(MissSpan(KIND_LONG_DMISS, 9, 50, 300))
        tracer.instant("interval_boundary", cycle=125, seq=5)
        return tracer

    def test_mispredict_span_duration_is_the_penalty(self):
        events = chrome_trace_events(self._tracer())
        parents = [e for e in events if e.get("name") == "mispredict"]
        assert len(parents) == 1
        parent = parents[0]
        assert parent["ph"] == "X" and parent["tid"] == TID_BPRED
        assert parent["dur"] == 25
        assert (
            parent["args"]["resolution_cycles"]
            + parent["args"]["refill_cycles"]
            == parent["args"]["penalty_cycles"]
        )
        children = [e["name"] for e in events
                    if e["tid"] == TID_BPRED and e["ph"] == "X"
                    and e["name"] != "mispredict"]
        assert children == ["resolve", "refill"]

    def test_long_dmiss_becomes_async_pair(self):
        events = chrome_trace_events(self._tracer())
        phases = [e["ph"] for e in events if e["tid"] == TID_LONG_DMISS
                  and e["ph"] != "M"]
        assert phases == ["b", "e"]

    def test_document_shape_and_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(self._tracer(), path, label="unit")
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        assert len(document["traceEvents"]) == count
        process_meta = document["traceEvents"][0]
        assert process_meta["ph"] == "M"
        assert chrome_trace(self._tracer())["otherData"]


class TestJsonlExport:
    def test_one_record_per_span_and_instant(self, tmp_path):
        tracer = RecordingTracer()
        tracer.miss_span(_bpred_span())
        tracer.instant("interval_boundary", cycle=9, kind="bpred")
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(tracer, path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "span"
        assert lines[0]["duration_cycles"] == 25
        assert lines[1] == {
            "type": "instant", "name": "interval_boundary",
            "cycle": 9, "kind": "bpred",
        }

    def test_records_match_spans(self):
        tracer = RecordingTracer()
        tracer.miss_span(_bpred_span(seq=3))
        (record,) = jsonl_records(tracer)
        assert record["seq"] == 3
        assert record["wrong_path_instructions"] == 7
