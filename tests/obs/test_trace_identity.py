"""The traced timeline must agree, event for event, with the simulator.

This is the acceptance property of the observability PR: a seeded run
produces exactly one complete span per mispredicted branch, and every
span's duration equals its resolution time plus the frontend refill —
i.e. the recorded penalty.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import runtime
from repro.obs.export import chrome_trace, write_chrome_trace, write_jsonl
from repro.obs.metrics import render_snapshot
from repro.obs.tracer import KIND_BPRED, KIND_ICACHE, KIND_LONG_DMISS
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.synthetic import generate_trace
from repro.workloads.spec_profiles import SPEC_PROFILES

LENGTH = 6_000
SEED = 2006


def _traced_run(workload="gzip", inorder=False):
    config = CoreConfig()
    trace = generate_trace(SPEC_PROFILES[workload], LENGTH, seed=SEED)
    runtime.enable_tracing()
    runtime.enable_metrics()
    try:
        if inorder:
            from repro.pipeline.inorder import simulate_inorder

            result = simulate_inorder(trace, config)
        else:
            result = simulate(trace, config)
        tracer = runtime.drain_trace()
        snapshot = runtime.drain_metrics()
    finally:
        runtime.reset()
    return config, result, tracer, snapshot


@pytest.mark.parametrize("inorder", [False, True], ids=["ooo", "inorder"])
def test_one_span_per_miss_event(inorder):
    _, result, tracer, _ = _traced_run(inorder=inorder)
    counts = tracer.counts()
    assert counts.get(KIND_BPRED, 0) == len(result.mispredict_events)
    assert counts.get(KIND_ICACHE, 0) == len(result.icache_events)
    assert counts.get(KIND_LONG_DMISS, 0) == len(result.long_dmiss_events)
    assert len(result.mispredict_events) > 0


@pytest.mark.parametrize("inorder", [False, True], ids=["ooo", "inorder"])
def test_span_duration_is_resolution_plus_refill(inorder):
    config, result, tracer, _ = _traced_run(inorder=inorder)
    spans = tracer.spans_of_kind(KIND_BPRED)
    events = sorted(result.mispredict_events, key=lambda e: e.seq)
    by_seq = {span.seq: span for span in spans}
    assert len(by_seq) == len(events)
    for event in events:
        span = by_seq[event.seq]
        assert span.refill_cycles == config.frontend_depth
        assert span.duration == span.resolution + span.refill_cycles
        assert span.duration == event.penalty
        assert span.resolution == event.resolution


def test_chrome_export_carries_the_identity_per_event():
    _, result, tracer, _ = _traced_run()
    document = chrome_trace(tracer)
    parents = [
        e for e in document["traceEvents"] if e.get("name") == "mispredict"
    ]
    assert len(parents) == len(result.mispredict_events)
    for parent in parents:
        args = parent["args"]
        assert parent["dur"] == args["penalty_cycles"]
        assert (
            args["penalty_cycles"]
            == args["resolution_cycles"] + args["refill_cycles"]
        )


def test_interval_boundaries_traced_after_segmentation():
    from repro.interval.penalty import measure_penalties

    config = CoreConfig()
    trace = generate_trace(SPEC_PROFILES["gzip"], LENGTH, seed=SEED)
    runtime.enable_tracing()
    try:
        result = simulate(trace, config)
        measure_penalties(result)
        measure_penalties(result)  # re-segmentation must not double-count
        tracer = runtime.drain_trace()
    finally:
        runtime.reset()
    boundaries = [i for i in tracer.instants if i.name == "interval_boundary"]
    total_events = (
        len(result.mispredict_events)
        + len(result.icache_events)
        + len(result.long_dmiss_events)
    )
    assert len(boundaries) == total_events


def test_same_seed_runs_export_byte_identical_artifacts(tmp_path):
    _, _, tracer_a, snap_a = _traced_run()
    _, _, tracer_b, snap_b = _traced_run()
    a_json, b_json = tmp_path / "a.json", tmp_path / "b.json"
    a_lines, b_lines = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_chrome_trace(tracer_a, a_json)
    write_chrome_trace(tracer_b, b_json)
    write_jsonl(tracer_a, a_lines)
    write_jsonl(tracer_b, b_lines)
    assert a_json.read_bytes() == b_json.read_bytes()
    assert a_lines.read_bytes() == b_lines.read_bytes()
    assert render_snapshot(snap_a) == render_snapshot(snap_b)


def test_metrics_agree_with_the_simulation():
    _, result, _, snapshot = _traced_run()
    counters = snapshot["counters"]
    assert counters["core.instructions_total"] == result.instructions
    assert counters["core.cycles_total"] == result.cycles
    assert counters["core.mispredicts_total"] == len(result.mispredict_events)
    hist = snapshot["histograms"]["core.penalty_cycles"]
    assert hist["count"] == len(result.mispredict_events)
    assert hist["sum"] == sum(e.penalty for e in result.mispredict_events)


def test_tracing_never_changes_simulated_time():
    config = CoreConfig()
    trace = generate_trace(SPEC_PROFILES["gzip"], LENGTH, seed=SEED)
    plain = simulate(trace, config)
    _, traced, _, _ = _traced_run()
    assert traced.cycles == plain.cycles
    assert traced.instructions == plain.instructions


def test_jsonl_lines_are_valid_json(tmp_path):
    _, _, tracer, _ = _traced_run()
    path = tmp_path / "events.jsonl"
    count = write_jsonl(tracer, path)
    lines = path.read_text().splitlines()
    assert len(lines) == count
    for line in lines:
        record = json.loads(line)
        assert record["type"] in ("span", "instant")
