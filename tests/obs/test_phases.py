"""Unit tests for the phase-timer profiler."""

from __future__ import annotations

from repro.obs.phases import PhaseProfiler, PhaseReport, PhaseRow


class FakeClock:
    """Deterministic clock: each read advances by the given step."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def test_add_accumulates_seconds_and_calls():
    profiler = PhaseProfiler(clock=FakeClock())
    profiler.add("core.dispatch", 0.5)
    profiler.add("core.dispatch", 0.25, count=3)
    (row,) = profiler.report().rows
    assert row == PhaseRow(name="core.dispatch", count=4, seconds=0.75)


def test_phase_context_manager_uses_the_injected_clock():
    profiler = PhaseProfiler(clock=FakeClock(step=2.0))
    with profiler.phase("cli.simulate"):
        pass
    (row,) = profiler.report().rows
    assert row.seconds == 2.0
    assert row.count == 1


def test_report_sorted_by_seconds_then_name():
    profiler = PhaseProfiler(clock=FakeClock())
    profiler.add("b.slow_phase", 2.0)
    profiler.add("a.tied_phase", 1.0)
    profiler.add("z.tied_phase", 1.0)
    names = [row.name for row in profiler.report().rows]
    assert names == ["b.slow_phase", "a.tied_phase", "z.tied_phase"]


def test_render_contains_shares_and_total():
    profiler = PhaseProfiler(clock=FakeClock())
    profiler.add("cli.simulate", 3.0)
    profiler.add("cli.analyze", 1.0)
    text = profiler.report().render()
    assert "75.0%" in text
    assert text.strip().splitlines()[-1].startswith("total")
    assert text.endswith("\n")


def test_empty_report_renders_placeholder():
    assert "no phases" in PhaseReport(rows=()).render()


def test_payload_is_json_safe():
    import json

    profiler = PhaseProfiler(clock=FakeClock())
    profiler.add("cli.simulate", 1.5)
    payload = profiler.report().as_payload()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["total_seconds"] == 1.5


def test_clear_drops_everything():
    profiler = PhaseProfiler(clock=FakeClock())
    profiler.add("cli.simulate", 1.0)
    profiler.clear()
    assert profiler.report().rows == ()
