"""Unit tests for service spans: folding, merging, exports.

Everything runs on an injected tick clock, so identities (span ids,
timestamps, and therefore whole exports) are deterministic — the same
property the serve byte-identity test relies on end to end.
"""

from __future__ import annotations

import json

from repro.obs.export import (
    chrome_trace_from_spans,
    write_chrome_trace_spans,
)
from repro.obs.spans import (
    STACK_COMPONENTS,
    SpanCollector,
    collapse_stacks,
    fold_latency_stack,
    merge_span_snapshots,
    span_from_dict,
)


class Tick:
    """Integer-nanosecond clock advancing a fixed step per call."""

    def __init__(self, step: int = 100):
        self.t = 0
        self.step = step

    def __call__(self) -> int:
        self.t += self.step
        return self.t


def collector(**kwargs) -> SpanCollector:
    kwargs.setdefault("process", "serve")
    kwargs.setdefault("clock_ns", Tick())
    kwargs.setdefault("pid", 7)
    return SpanCollector(**kwargs)


class TestCollector:
    def test_ids_are_sequential_and_deterministic(self):
        c = collector()
        root = c.start("request", trace_id=c.new_trace_id(), parent_id=None)
        child = c.start(
            "pool_execute", trace_id=root.trace_id, parent_id=root.span_id
        )
        assert root.trace_id == "t-serve-000001"
        assert (root.span_id, child.span_id) == ("s000002", "s000003")

    def test_finish_is_idempotent(self):
        c = collector()
        span = c.start("request", trace_id="t1", parent_id=None)
        c.finish(span, status="ok")
        first_end = span.end_ns
        c.finish(span, status="error")
        assert span.end_ns == first_end
        assert span.status == "ok"
        assert len(c.snapshot()) == 1

    def test_abort_open_never_leaves_dangling_spans(self):
        c = collector()
        c.start("request", trace_id="t1", parent_id=None)
        c.start("pool_execute", trace_id="t1", parent_id="s000001")
        aborted = c.abort_open("shard-crashed")
        assert aborted == 2
        records = c.snapshot()
        assert all(r["status"] == "aborted" for r in records)
        assert all(r["end_ns"] is not None for r in records)
        assert all(
            r["args"]["abort_reason"] == "shard-crashed" for r in records
        )

    def test_mark_since_survives_fifo_trim(self):
        c = collector(max_spans=4)
        for i in range(6):
            c.add_complete(
                "serialize", trace_id="old", parent_id="root", start_ns=i
            )
        mark = c.mark()
        c.add_complete("serialize", trace_id="new", parent_id="root", start_ns=99)
        for i in range(5):  # trim past the mark position
            c.add_complete(
                "serialize", trace_id="fill", parent_id="root", start_ns=i
            )
        since = c.since(mark, trace_id="new")
        assert [r["trace_id"] for r in since] in ([], ["new"])
        # The buffer itself stays bounded.
        assert len(c.snapshot()) == 4

    def test_id_prefix_namespaces_absorbed_collectors(self):
        # Worker collectors must not mint ids that alias the service
        # collector's: parent edges resolve by id, so an absorbed bare
        # "s000001" would scramble every folded tree.
        c = collector()
        service_span = c.start("pool_execute", trace_id="t1", parent_id=None)
        worker = SpanCollector(
            process="worker", clock_ns=Tick(), pid=8,
            id_prefix=f"{service_span.span_id}.",
        )
        wspan = worker.start(
            "worker_execute", trace_id="t1", parent_id=service_span.span_id
        )
        assert wspan.span_id == f"{service_span.span_id}.s000001"
        worker.finish(wspan)
        c.absorb(worker.drain())
        ids = {r["span_id"] for r in c.snapshot()} | {service_span.span_id}
        assert len(ids) == 2

    def test_absorb_adopts_worker_records(self):
        c = collector()
        worker = SpanCollector(process="worker", clock_ns=Tick(), pid=8)
        span = worker.start("worker_execute", trace_id="t1", parent_id="s1")
        worker.finish(span)
        assert c.absorb(worker.drain()) == 1
        assert c.snapshot()[0]["process"] == "worker"
        assert worker.drain() == []


def _request_tree(trace="t1"):
    """A closed request tree: root + cache miss + pool + put + serialize."""
    mk = lambda **kw: dict(  # noqa: E731 - local literal builder
        {"trace_id": trace, "parent_id": "root", "status": "ok",
         "process": "serve", "pid": 1, "args": {}},
        **kw,
    )
    root = mk(span_id="root", parent_id=None, name="request",
              start_ns=0, end_ns=1000)
    spans = [
        mk(span_id="a", name="cache_tier0", start_ns=10, end_ns=60),
        mk(span_id="b", name="cache_backend", start_ns=60, end_ns=160),
        mk(span_id="c", name="pool_execute", start_ns=160, end_ns=760),
        # Worker span: a grandchild, must not be double-counted.
        mk(span_id="w", parent_id="c", name="worker_execute",
           process="worker", start_ns=200, end_ns=700),
        mk(span_id="d", name="store_put", start_ns=760, end_ns=900),
        mk(span_id="e", name="serialize", start_ns=900, end_ns=980),
    ]
    return root, spans


class TestFolding:
    def test_stack_sums_exactly_to_wall(self):
        root, spans = _request_tree()
        stack = fold_latency_stack(root, spans)
        assert sum(stack.values()) == 1000
        assert stack["queue_wait"] == 1000 - 970
        assert stack["pool_execute"] == 600
        assert "worker_execute" not in stack
        assert list(stack) == [
            n for n in STACK_COMPONENTS if n in stack
        ]

    def test_coalesced_follower_charges_wait_not_work(self):
        # The follower's only component overlaps the leader's execute
        # span entirely; the identity must still hold exactly.
        root = {"trace_id": "t2", "span_id": "r2", "parent_id": None,
                "name": "request", "start_ns": 100, "end_ns": 900}
        spans = [
            {"trace_id": "t2", "span_id": "cw", "parent_id": "leader-exec",
             "name": "coalesce_wait", "start_ns": 150, "end_ns": 850},
            {"trace_id": "t2", "span_id": "sz", "parent_id": "r2",
             "name": "serialize", "start_ns": 850, "end_ns": 880},
        ]
        stack = fold_latency_stack(root, spans)
        assert sum(stack.values()) == 800
        assert stack["coalesce_wait"] == 700

    def test_overlapping_sweep_points_shave_waiting_side_first(self):
        root = {"trace_id": "t3", "span_id": "r3", "parent_id": None,
                "name": "request", "start_ns": 0, "end_ns": 500}
        spans = [
            # Two concurrent pool executions (sweep fan-out) plus a
            # coalesce_wait covering both: raw sums exceed the wall.
            {"trace_id": "t3", "span_id": "p1", "parent_id": "r3",
             "name": "pool_execute", "start_ns": 0, "end_ns": 400},
            {"trace_id": "t3", "span_id": "p2", "parent_id": "r3",
             "name": "pool_execute", "start_ns": 100, "end_ns": 500},
            {"trace_id": "t3", "span_id": "cw", "parent_id": "x",
             "name": "coalesce_wait", "start_ns": 0, "end_ns": 500},
        ]
        stack = fold_latency_stack(root, spans)
        assert sum(stack.values()) == 500
        assert stack["pool_execute"] == 500  # union, charged as work

    def test_open_and_foreign_trace_spans_are_ignored(self):
        root, spans = _request_tree()
        spans.append({"trace_id": "t1", "span_id": "z", "parent_id": "root",
                      "name": "serialize", "start_ns": 0, "end_ns": None})
        spans.append({"trace_id": "OTHER", "span_id": "y", "parent_id": "root",
                      "name": "pool_execute", "start_ns": 0, "end_ns": 999})
        stack = fold_latency_stack(root, spans)
        assert sum(stack.values()) == 1000


class TestMerge:
    def test_merge_is_order_independent_and_dedupes(self):
        root, spans = _request_tree()
        all_spans = [root, *spans]
        a = all_spans[:3]
        b = all_spans[2:]  # overlaps one record with a
        merged_ab = merge_span_snapshots([a, b])
        merged_ba = merge_span_snapshots([b, a])
        assert merged_ab == merged_ba
        assert len(merged_ab) == len(all_spans)

    def test_same_id_different_process_kept_apart(self):
        rec = {"trace_id": "t", "span_id": "s1", "parent_id": None,
               "name": "request", "start_ns": 0, "end_ns": 1,
               "process": "serve", "pid": 1}
        other = dict(rec, process="worker", pid=2)
        assert len(merge_span_snapshots([[rec], [other]])) == 2


class TestExports:
    def test_chrome_trace_roundtrips_and_is_byte_identical(self, tmp_path):
        def build():
            c = collector()
            root = c.start("request", trace_id=c.new_trace_id(),
                           parent_id=None, op="simulate")
            child = c.start("pool_execute", trace_id=root.trace_id,
                            parent_id=root.span_id)
            c.finish(child)
            c.finish(root)
            return c.snapshot()

        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        # 2 span events + 2 metadata rows (process_name, thread_name).
        assert write_chrome_trace_spans(build(), out_a) == 4
        assert write_chrome_trace_spans(build(), out_b) == 4
        assert out_a.read_bytes() == out_b.read_bytes()
        payload = json.loads(out_a.read_text())
        events = payload["traceEvents"]
        kinds = {e["ph"] for e in events}
        assert kinds == {"M", "X"}
        xs = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] > 0 for e in xs)
        assert {e["args"]["span_id"] for e in xs} == {"s000002", "s000003"}

    def test_open_spans_are_excluded_from_chrome_export(self):
        c = collector()
        c.start("request", trace_id="t1", parent_id=None)
        trace = chrome_trace_from_spans(c.snapshot() + [
            s.as_dict() for s in c._open.values()
        ])
        assert all(e["ph"] != "X" for e in trace["traceEvents"])

    def test_collapse_stacks_self_time(self):
        root, spans = _request_tree()
        lines = collapse_stacks([root, *spans])
        flame = dict(
            line.rsplit(" ", 1) for line in lines
        )
        assert flame["request;pool_execute;worker_execute"] == "500"
        assert flame["request;pool_execute"] == "100"
        # Root self time: 1000 wall minus 970 of direct children.
        assert flame["request"] == "30"

    def test_span_from_dict_roundtrip(self):
        c = collector()
        span = c.start("request", trace_id="t", parent_id=None, op="sweep")
        c.finish(span, status="error")
        rebuilt = span_from_dict(span.as_dict())
        assert rebuilt.as_dict() == span.as_dict()
