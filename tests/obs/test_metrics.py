"""Unit tests for the metrics registry and snapshot merging."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_EDGES,
    MetricNameError,
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
    render_snapshot,
    validate_metric_name,
)


class TestNaming:
    @pytest.mark.parametrize("name", [
        "core.penalty_cycles",
        "interval.length_instructions",
        "fast_sim.estimates_total",
        "memory.l1_hits_total",
    ])
    def test_accepts_subsystem_noun_unit(self, name):
        assert validate_metric_name(name) == name

    @pytest.mark.parametrize("name", [
        "penalty_cycles",       # no subsystem
        "core.penalty",         # no unit suffix
        "Core.penalty_cycles",  # uppercase
        "core.",                # empty noun
        "core.penalty cycles",  # whitespace
        "core..penalty_cycles",
    ])
    def test_rejects_malformed_names(self, name):
        with pytest.raises(MetricNameError):
            validate_metric_name(name)

    def test_registry_validates_at_registration(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricNameError):
            registry.counter("badname")

    def test_one_name_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("core.cycles_total")
        with pytest.raises(MetricNameError):
            registry.gauge("core.cycles_total")


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("core.cycles_total")
        counter.inc()
        counter.inc(41)
        assert registry.counter("core.cycles_total").value == 42

    def test_gauge_set_max_keeps_high_water_mark(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("core.rob_occupancy_peak")
        gauge.set_max(10)
        gauge.set_max(3)
        assert gauge.value == 10

    def test_histogram_buckets_by_upper_edge(self):
        registry = MetricsRegistry()
        hist = registry.histogram("core.penalty_cycles", edges=(1, 2, 4))
        for value in (1, 2, 3, 100):
            hist.add(value)
        # buckets: <=1, <=2, <=4, overflow
        assert hist.counts == [1, 1, 1, 1]
        assert hist.count == 4
        assert hist.total == 106
        assert (hist.vmin, hist.vmax) == (1, 100)

    def test_histogram_edge_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("core.penalty_cycles", edges=(1, 2))
        with pytest.raises(MetricNameError):
            registry.histogram("core.penalty_cycles", edges=(1, 2, 4))

    def test_default_edges_are_ascending(self):
        assert list(DEFAULT_EDGES) == sorted(DEFAULT_EDGES)


class TestSnapshot:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("core.cycles_total").inc(100)
        registry.gauge("core.rob_occupancy_peak").set_max(7)
        registry.histogram("core.penalty_cycles", edges=(8, 16)).add(12)
        return registry

    def test_snapshot_is_json_safe_and_sorted(self):
        import json

        snapshot = self._populated().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert list(snapshot["counters"]) == sorted(snapshot["counters"])

    def test_merge_counters_sum_gauges_max_histograms_sum(self):
        a = self._populated().snapshot()
        b = self._populated().snapshot()
        b["counters"]["core.cycles_total"] = 11
        b["gauges"]["core.rob_occupancy_peak"] = 3
        merged = merge_snapshots([a, None, b])
        assert merged["counters"]["core.cycles_total"] == 111
        assert merged["gauges"]["core.rob_occupancy_peak"] == 7
        hist = merged["histograms"]["core.penalty_cycles"]
        assert hist["count"] == 2
        assert hist["sum"] == 24
        assert hist["counts"] == [0, 2, 0]

    def test_merge_rejects_mismatched_edges(self):
        a = self._populated().snapshot()
        b = self._populated().snapshot()
        b["histograms"]["core.penalty_cycles"]["edges"] = [1, 2]
        with pytest.raises(MetricNameError):
            merge_snapshots([a, b])

    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots([None, {}]) == empty_snapshot()

    def test_render_is_deterministic_and_newline_terminated(self):
        a = render_snapshot(self._populated().snapshot())
        b = render_snapshot(self._populated().snapshot())
        assert a == b
        assert a.endswith("\n")
        assert "core.cycles_total = 100" in a

    def test_render_empty_snapshot(self):
        assert "no metrics" in render_snapshot(empty_snapshot())
