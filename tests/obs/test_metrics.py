"""Unit tests for the metrics registry and snapshot merging."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_EDGES,
    MetricNameError,
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
    render_snapshot,
    validate_metric_name,
)


class TestNaming:
    @pytest.mark.parametrize("name", [
        "core.penalty_cycles",
        "interval.length_instructions",
        "fast_sim.estimates_total",
        "memory.l1_hits_total",
    ])
    def test_accepts_subsystem_noun_unit(self, name):
        assert validate_metric_name(name) == name

    @pytest.mark.parametrize("name", [
        "penalty_cycles",       # no subsystem
        "core.penalty",         # no unit suffix
        "Core.penalty_cycles",  # uppercase
        "core.",                # empty noun
        "core.penalty cycles",  # whitespace
        "core..penalty_cycles",
    ])
    def test_rejects_malformed_names(self, name):
        with pytest.raises(MetricNameError):
            validate_metric_name(name)

    def test_registry_validates_at_registration(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricNameError):
            registry.counter("badname")

    def test_one_name_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("core.cycles_total")
        with pytest.raises(MetricNameError):
            registry.gauge("core.cycles_total")


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("core.cycles_total")
        counter.inc()
        counter.inc(41)
        assert registry.counter("core.cycles_total").value == 42

    def test_gauge_set_max_keeps_high_water_mark(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("core.rob_occupancy_peak")
        gauge.set_max(10)
        gauge.set_max(3)
        assert gauge.value == 10

    def test_histogram_buckets_by_upper_edge(self):
        registry = MetricsRegistry()
        hist = registry.histogram("core.penalty_cycles", edges=(1, 2, 4))
        for value in (1, 2, 3, 100):
            hist.add(value)
        # buckets: <=1, <=2, <=4, overflow
        assert hist.counts == [1, 1, 1, 1]
        assert hist.count == 4
        assert hist.total == 106
        assert (hist.vmin, hist.vmax) == (1, 100)

    def test_histogram_edge_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("core.penalty_cycles", edges=(1, 2))
        with pytest.raises(MetricNameError):
            registry.histogram("core.penalty_cycles", edges=(1, 2, 4))

    def test_default_edges_are_ascending(self):
        assert list(DEFAULT_EDGES) == sorted(DEFAULT_EDGES)


class TestSnapshot:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("core.cycles_total").inc(100)
        registry.gauge("core.rob_occupancy_peak").set_max(7)
        registry.histogram("core.penalty_cycles", edges=(8, 16)).add(12)
        return registry

    def test_snapshot_is_json_safe_and_sorted(self):
        import json

        snapshot = self._populated().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert list(snapshot["counters"]) == sorted(snapshot["counters"])

    def test_merge_counters_sum_gauges_max_histograms_sum(self):
        a = self._populated().snapshot()
        b = self._populated().snapshot()
        b["counters"]["core.cycles_total"] = 11
        b["gauges"]["core.rob_occupancy_peak"] = 3
        merged = merge_snapshots([a, None, b])
        assert merged["counters"]["core.cycles_total"] == 111
        assert merged["gauges"]["core.rob_occupancy_peak"] == 7
        hist = merged["histograms"]["core.penalty_cycles"]
        assert hist["count"] == 2
        assert hist["sum"] == 24
        assert hist["counts"] == [0, 2, 0]

    def test_merge_rejects_mismatched_edges(self):
        a = self._populated().snapshot()
        b = self._populated().snapshot()
        b["histograms"]["core.penalty_cycles"]["edges"] = [1, 2]
        with pytest.raises(MetricNameError):
            merge_snapshots([a, b])

    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots([None, {}]) == empty_snapshot()

    def test_render_is_deterministic_and_newline_terminated(self):
        a = render_snapshot(self._populated().snapshot())
        b = render_snapshot(self._populated().snapshot())
        assert a == b
        assert a.endswith("\n")
        assert "core.cycles_total = 100" in a

    def test_render_empty_snapshot(self):
        assert "no metrics" in render_snapshot(empty_snapshot())


class TestQuantiles:
    def _payload(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        hist = registry.histogram("serve.request_milliseconds",
                                  edges=(1.0, 10.0, 100.0))
        for value in (0.5, 2.0, 4.0, 8.0, 50.0):
            hist.add(value)
        return registry.snapshot()["histograms"]["serve.request_milliseconds"]

    def test_empty_histogram_has_no_quantiles(self):
        from repro.obs.metrics import histogram_quantile, histogram_quantiles

        empty = {"edges": [1.0], "counts": [0, 0], "count": 0,
                 "sum": 0, "min": None, "max": None}
        assert histogram_quantile(empty, 0.5) is None
        assert histogram_quantiles(empty) == {
            "p50": None, "p95": None, "p99": None,
        }

    def test_quantiles_interpolate_within_buckets(self):
        from repro.obs.metrics import histogram_quantile

        payload = self._payload()
        p50 = histogram_quantile(payload, 0.5)
        # The median observation is the 2.5th of 5; three land in the
        # (1, 10] bucket, so the estimate interpolates inside it.
        assert 1.0 <= p50 <= 10.0
        # Tails are clamped to the recorded extremes.
        assert histogram_quantile(payload, 0.0) == 0.5
        assert histogram_quantile(payload, 1.0) == 50.0

    def test_quantiles_are_monotone_and_deterministic(self):
        from repro.obs.metrics import histogram_quantile

        payload = self._payload()
        values = [histogram_quantile(payload, q)
                  for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert values == sorted(values)
        again = [histogram_quantile(payload, q)
                 for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert values == again

    def test_quantile_rejects_out_of_range(self):
        from repro.obs.metrics import histogram_quantile

        with pytest.raises(ValueError):
            histogram_quantile(self._payload(), 1.5)

    def test_render_includes_quantile_line(self):
        from repro.obs.metrics import render_snapshot, MetricsRegistry

        registry = MetricsRegistry()
        registry.histogram("serve.request_milliseconds",
                           edges=(1.0, 10.0)).add(5.0)
        rendered = render_snapshot(registry.snapshot())
        assert "p50=" in rendered and "p99=" in rendered
