"""Unit tests for the gshare predictor."""

import pytest

from repro.frontend.gshare import GSharePredictor


class TestGShare:
    def test_learns_alternating_pattern(self):
        predictor = GSharePredictor(entries=1024, history_bits=8)
        for i in range(2000):
            predictor.predict_and_update(0x100, i % 2 == 0)
        # with history, alternation becomes perfectly predictable
        recent_correct = 0
        for i in range(2000, 2100):
            if predictor.predict_and_update(0x100, i % 2 == 0):
                recent_correct += 1
        assert recent_correct >= 95

    def test_learns_period_four_pattern(self):
        predictor = GSharePredictor(entries=4096, history_bits=10)
        pattern = [True, True, False, False]
        for i in range(4000):
            predictor.predict_and_update(0x40, pattern[i % 4])
        correct = sum(
            predictor.predict_and_update(0x40, pattern[i % 4])
            for i in range(200)
        )
        assert correct >= 190

    def test_history_register_updates(self):
        predictor = GSharePredictor(history_bits=4)
        predictor.predict_and_update(0, True)
        predictor.predict_and_update(0, False)
        predictor.predict_and_update(0, True)
        assert predictor.history == 0b101

    def test_history_bounded(self):
        predictor = GSharePredictor(history_bits=4)
        for _ in range(100):
            predictor.predict_and_update(0, True)
        assert predictor.history == 0b1111

    def test_validation(self):
        with pytest.raises(ValueError):
            GSharePredictor(entries=100)
        with pytest.raises(ValueError):
            GSharePredictor(history_bits=0)

    def test_biased_branch_accuracy(self):
        predictor = GSharePredictor()
        for _ in range(500):
            predictor.predict_and_update(0x88, True)
        assert predictor.stats.accuracy > 0.95
