"""Unit tests for static and perfect predictors."""

from repro.frontend.perfect import PerfectPredictor
from repro.frontend.static import StaticPredictor
from repro.util.rng import SplitMix


class TestStatic:
    def test_always_taken(self):
        predictor = StaticPredictor(predict_taken=True)
        assert predictor.predict(0x1234)
        predictor.predict_and_update(0x1234, False)
        assert predictor.predict(0x1234)  # never learns

    def test_always_not_taken(self):
        predictor = StaticPredictor(predict_taken=False)
        assert not predictor.predict(0)

    def test_accuracy_equals_bias(self):
        predictor = StaticPredictor(predict_taken=True)
        rng = SplitMix(1)
        for _ in range(10_000):
            predictor.predict_and_update(0, rng.bernoulli(0.7))
        assert abs(predictor.stats.accuracy - 0.7) < 0.02


class TestPerfect:
    def test_never_mispredicts(self):
        predictor = PerfectPredictor()
        rng = SplitMix(2)
        for _ in range(1000):
            outcome = rng.bernoulli(0.5)
            assert predictor.predict_and_update(0x10, outcome)
        assert predictor.stats.accuracy == 1.0
        assert predictor.stats.mispredictions == 0

    def test_prime_reveals_outcome(self):
        predictor = PerfectPredictor()
        predictor.prime(True)
        assert predictor.predict(0)
        predictor.prime(False)
        assert not predictor.predict(0)
