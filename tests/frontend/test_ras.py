"""Unit tests for the return address stack."""

import pytest

from repro.frontend.ras import ReturnAddressStack


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(depth=8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_pop_empty_returns_none(self):
        assert ReturnAddressStack().pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_predict_return_scores(self):
        ras = ReturnAddressStack()
        ras.push(0x500)
        assert ras.predict_return(0x500)
        ras.push(0x600)
        assert not ras.predict_return(0x999)
        assert ras.stats.predictions == 2
        assert ras.stats.correct == 1

    def test_matched_call_return_nesting(self):
        ras = ReturnAddressStack(depth=16)
        addresses = [0x10, 0x20, 0x30]
        for a in addresses:
            ras.push(a)
        for a in reversed(addresses):
            assert ras.predict_return(a)
        assert ras.stats.accuracy == 1.0

    def test_len(self):
        ras = ReturnAddressStack(depth=4)
        assert len(ras) == 0
        ras.push(1)
        assert len(ras) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)
