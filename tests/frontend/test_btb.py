"""Unit tests for the branch target buffer."""

import pytest

from repro.frontend.btb import BranchTargetBuffer


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        assert btb.predict(0x100) is None
        btb.update(0x100, 0x2000)
        assert btb.predict(0x100) == 0x2000

    def test_predict_and_update_scores(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        assert not btb.predict_and_update(0x100, 0x2000)  # cold miss
        assert btb.predict_and_update(0x100, 0x2000)  # now hits

    def test_stale_target_counts_as_miss(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        btb.update(0x100, 0x2000)
        assert not btb.predict_and_update(0x100, 0x3000)
        assert btb.predict_and_update(0x100, 0x3000)

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        btb.update(0x0, 1)
        btb.update(0x4, 2)
        btb.predict(0x0)  # refresh 0x0
        btb.update(0x8, 3)  # evicts 0x4
        assert btb.predict(0x0) == 1
        assert btb.predict(0x4) is None
        assert btb.predict(0x8) == 3

    def test_capacity_respected(self):
        btb = BranchTargetBuffer(sets=4, ways=2)
        for i in range(100):
            btb.update(i * 4, i)
        assert btb.occupancy <= 8

    def test_update_refreshes_existing(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        btb.update(0x0, 1)
        btb.update(0x4, 2)
        btb.update(0x0, 9)  # refresh + new target
        btb.update(0x8, 3)  # should evict 0x4 (LRU), not 0x0
        assert btb.predict(0x0) == 9
        assert btb.predict(0x4) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(sets=100)
        with pytest.raises(ValueError):
            BranchTargetBuffer(ways=0)
