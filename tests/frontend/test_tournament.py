"""Unit tests for the tournament (hybrid) predictor."""

import pytest

from repro.frontend.bimodal import BimodalPredictor
from repro.frontend.gshare import GSharePredictor
from repro.frontend.local import LocalPredictor
from repro.frontend.static import StaticPredictor
from repro.frontend.tournament import TournamentPredictor


class TestTournament:
    def test_defaults_constructible(self):
        predictor = TournamentPredictor()
        assert isinstance(predictor.global_component, GSharePredictor)
        assert isinstance(predictor.local_component, LocalPredictor)

    def test_beats_or_matches_bimodal_on_patterns(self):
        tournament = TournamentPredictor()
        bimodal = BimodalPredictor()
        pattern = [True, True, False]
        for i in range(4000):
            tournament.predict_and_update(0x20, pattern[i % 3])
            bimodal.predict_and_update(0x20, pattern[i % 3])
        assert tournament.stats.accuracy >= bimodal.stats.accuracy

    def test_chooser_selects_working_component(self):
        # global component = always-taken static, local = always-not-taken.
        tournament = TournamentPredictor(
            global_component=StaticPredictor(predict_taken=True),
            local_component=StaticPredictor(predict_taken=False),
            chooser_entries=16,
        )
        for _ in range(50):
            tournament.predict_and_update(0x40, True)
        # chooser should have learned to trust the global component
        assert tournament.predict(0x40) is True
        tournament2 = TournamentPredictor(
            global_component=StaticPredictor(predict_taken=True),
            local_component=StaticPredictor(predict_taken=False),
            chooser_entries=16,
        )
        for _ in range(50):
            tournament2.predict_and_update(0x40, False)
        assert tournament2.predict(0x40) is False

    def test_components_trained_every_branch(self):
        gshare = GSharePredictor(history_bits=4)
        tournament = TournamentPredictor(global_component=gshare)
        for _ in range(5):
            tournament.predict_and_update(0, True)
        assert gshare.history == 0b1111

    def test_validation(self):
        with pytest.raises(ValueError):
            TournamentPredictor(chooser_entries=100)

    def test_high_accuracy_on_biased_stream(self):
        tournament = TournamentPredictor()
        for _ in range(500):
            tournament.predict_and_update(0x99, True)
        assert tournament.stats.accuracy > 0.95
