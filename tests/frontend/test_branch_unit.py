"""Unit tests for the BranchUnit (direction + BTB bundle)."""

from repro.frontend.base import BranchUnit
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.perfect import PerfectPredictor
from repro.frontend.static import StaticPredictor


class TestBranchUnit:
    def test_perfect_direction_with_btb_warm(self):
        unit = BranchUnit(direction=PerfectPredictor(), btb=BranchTargetBuffer())
        # first taken branch: direction right, BTB cold -> mispredict
        assert unit.resolve_branch(0x100, True, 0x2000)
        # second time: BTB warm -> correct
        assert not unit.resolve_branch(0x100, True, 0x2000)

    def test_not_taken_branch_ignores_btb(self):
        unit = BranchUnit(direction=PerfectPredictor(), btb=BranchTargetBuffer())
        assert not unit.resolve_branch(0x100, False, None)

    def test_wrong_direction_is_mispredict(self):
        unit = BranchUnit(direction=StaticPredictor(predict_taken=True))
        assert unit.resolve_branch(0x100, False, None)
        assert not unit.resolve_branch(0x100, True, None)

    def test_no_btb_means_direction_only(self):
        unit = BranchUnit(direction=PerfectPredictor())
        assert not unit.resolve_branch(0x100, True, 0x2000)

    def test_jump_resolution_uses_btb(self):
        unit = BranchUnit(direction=PerfectPredictor(), btb=BranchTargetBuffer())
        assert unit.resolve_jump(0x200, 0x4000)  # cold BTB
        assert not unit.resolve_jump(0x200, 0x4000)

    def test_jump_without_btb_never_mispredicts(self):
        unit = BranchUnit(direction=PerfectPredictor())
        assert not unit.resolve_jump(0x200, 0x4000)

    def test_stats_track_overall(self):
        unit = BranchUnit(direction=StaticPredictor(predict_taken=True))
        unit.resolve_branch(0, True, None)
        unit.resolve_branch(0, False, None)
        assert unit.stats.predictions == 2
        assert unit.stats.correct == 1
