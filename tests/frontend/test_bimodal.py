"""Unit tests for saturating counters and the bimodal predictor."""

import pytest

from repro.frontend.bimodal import BimodalPredictor, SaturatingCounter


class TestSaturatingCounter:
    def test_initial_weakly_taken(self):
        counter = SaturatingCounter(bits=2)
        assert counter.value == 2
        assert counter.taken

    def test_saturates_high(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.train(True)
        assert counter.value == 3
        counter.train(True)
        assert counter.value == 3

    def test_saturates_low(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.train(False)
        assert counter.value == 0

    def test_hysteresis(self):
        counter = SaturatingCounter(bits=2, initial=3)
        counter.train(False)  # 3 -> 2, still predicts taken
        assert counter.taken
        counter.train(False)  # 2 -> 1, now not taken
        assert not counter.taken

    def test_threshold_at_half(self):
        counter = SaturatingCounter(bits=3, initial=3)
        assert not counter.taken
        counter.train(True)
        assert counter.taken

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=4)


class TestBimodalPredictor:
    def test_learns_always_taken(self):
        predictor = BimodalPredictor(entries=64)
        for _ in range(4):
            predictor.predict_and_update(0x100, True)
        assert predictor.predict(0x100)

    def test_learns_always_not_taken(self):
        predictor = BimodalPredictor(entries=64)
        for _ in range(4):
            predictor.predict_and_update(0x100, False)
        assert not predictor.predict(0x100)

    def test_high_accuracy_on_biased_branch(self):
        predictor = BimodalPredictor(entries=64)
        for _ in range(1000):
            predictor.predict_and_update(0x200, True)
        assert predictor.stats.accuracy > 0.99

    def test_alternating_pattern_defeats_bimodal(self):
        predictor = BimodalPredictor(entries=64)
        for i in range(1000):
            predictor.predict_and_update(0x300, i % 2 == 0)
        # bimodal cannot learn strict alternation
        assert predictor.stats.accuracy < 0.7

    def test_distinct_pcs_use_distinct_counters(self):
        predictor = BimodalPredictor(entries=64)
        for _ in range(4):
            predictor.predict_and_update(0x100, True)
            predictor.predict_and_update(0x104, False)
        assert predictor.predict(0x100)
        assert not predictor.predict(0x104)

    def test_aliasing_when_table_small(self):
        predictor = BimodalPredictor(entries=1)
        for _ in range(4):
            predictor.predict_and_update(0x100, True)
        # every pc aliases onto the same counter
        assert predictor.predict(0xDEAD00)

    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)

    def test_stats_accounting(self):
        predictor = BimodalPredictor()
        predictor.predict_and_update(0, True)
        predictor.predict_and_update(0, True)
        assert predictor.stats.predictions == 2
        assert (
            predictor.stats.correct + predictor.stats.mispredictions == 2
        )

    def test_reset_stats(self):
        predictor = BimodalPredictor()
        predictor.predict_and_update(0, True)
        predictor.reset_stats()
        assert predictor.stats.predictions == 0
