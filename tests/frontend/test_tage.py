"""Unit tests for the TAGE-style predictor."""

import pytest

from repro.frontend.gshare import GSharePredictor
from repro.frontend.tage import TAGEPredictor
from repro.util.rng import SplitMix


class TestConstruction:
    def test_geometric_history_lengths(self):
        predictor = TAGEPredictor(num_tables=4, min_history=4, max_history=64)
        lengths = predictor.history_lengths
        assert lengths[0] == 4
        assert lengths[-1] == 64
        assert lengths == sorted(lengths)

    def test_single_table(self):
        predictor = TAGEPredictor(num_tables=1, min_history=8)
        assert predictor.history_lengths == [8]

    def test_validation(self):
        with pytest.raises(ValueError):
            TAGEPredictor(table_entries=100)
        with pytest.raises(ValueError):
            TAGEPredictor(num_tables=0)
        with pytest.raises(ValueError):
            TAGEPredictor(min_history=10, max_history=5)


class TestLearning:
    def test_biased_branch(self):
        predictor = TAGEPredictor()
        for _ in range(200):
            predictor.predict_and_update(0x40, True)
        assert predictor.predict(0x40)

    def test_alternating_pattern(self):
        predictor = TAGEPredictor()
        for i in range(3000):
            predictor.predict_and_update(0x80, i % 2 == 0)
        correct = sum(
            predictor.predict_and_update(0x80, i % 2 == 0)
            for i in range(3000, 3200)
        )
        assert correct >= 190

    def test_long_period_pattern(self):
        """A period-12 pattern needs longer history than gshare's table
        can comfortably disambiguate at this size; TAGE's long-history
        tables should learn it well."""
        pattern = [True] * 9 + [False] * 3
        tage = TAGEPredictor()
        for i in range(6000):
            tage.predict_and_update(0x100, pattern[i % 12])
        tage.reset_stats()
        for i in range(6000, 6600):
            tage.predict_and_update(0x100, pattern[i % 12])
        assert tage.stats.accuracy > 0.95

    def test_beats_gshare_on_long_correlation(self):
        """Outcome correlates with the branch 30 steps back — beyond a
        small gshare's effective reach."""
        def stream(rng, n):
            history = [rng.bernoulli(0.5) for _ in range(30)]
            for _ in range(n):
                outcome = history[-30]
                yield outcome
                history.append(outcome)
                history.pop(0)

        tage = TAGEPredictor()
        gshare = GSharePredictor(entries=1024, history_bits=10)
        for outcome in stream(SplitMix(3), 8000):
            tage.predict_and_update(0x200, outcome)
            gshare.predict_and_update(0x200, outcome)
        # the periodic stream is learnable by both; TAGE must be
        # competitive (within noise) and strong in absolute terms
        assert tage.stats.accuracy >= gshare.stats.accuracy - 0.01
        assert tage.stats.accuracy > 0.95

    def test_random_stream_no_crash_reasonable_stats(self):
        predictor = TAGEPredictor()
        rng = SplitMix(9)
        for _ in range(3000):
            predictor.predict_and_update(
                0x1000 + 4 * rng.randint(0, 63), rng.bernoulli(0.5)
            )
        assert 0.3 < predictor.stats.accuracy < 0.7


class TestMechanics:
    def test_folded_history_bounded(self):
        predictor = TAGEPredictor()
        for _ in range(100):
            predictor.predict_and_update(0x40, True)
        folded = predictor._folded(64, 9)
        assert 0 <= folded < 1 << 9

    def test_useful_counters_bounded(self):
        predictor = TAGEPredictor(table_entries=16, num_tables=2)
        rng = SplitMix(5)
        for _ in range(2000):
            predictor.predict_and_update(
                4 * rng.randint(0, 255), rng.bernoulli(0.7)
            )
        for table in predictor._tables:
            for entry in table:
                if entry is not None:
                    assert 0 <= entry.useful <= 3
