"""Unit tests for the two-level local predictor."""

import pytest

from repro.frontend.local import LocalPredictor


class TestLocalPredictor:
    def test_learns_per_branch_pattern(self):
        predictor = LocalPredictor(
            history_entries=64, history_bits=6, pattern_entries=64
        )
        pattern = [True, False, True]
        for i in range(3000):
            predictor.predict_and_update(0x10, pattern[i % 3])
        correct = sum(
            predictor.predict_and_update(0x10, pattern[i % 3])
            for i in range(300)
        )
        assert correct >= 280

    def test_two_branches_independent_histories(self):
        predictor = LocalPredictor()
        # Branch A alternates; branch B always taken. Shared pattern
        # table but distinct histories.
        for i in range(4000):
            predictor.predict_and_update(0x100, i % 2 == 0)
            predictor.predict_and_update(0x104, True)
        correct_b = sum(
            predictor.predict_and_update(0x104, True) for _ in range(100)
        )
        assert correct_b >= 95

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalPredictor(history_entries=3)
        with pytest.raises(ValueError):
            LocalPredictor(pattern_entries=100)
        with pytest.raises(ValueError):
            LocalPredictor(history_bits=0)

    def test_history_aliasing_by_pc(self):
        predictor = LocalPredictor(history_entries=1)
        # all branches share a history slot: still functional
        for _ in range(100):
            predictor.predict_and_update(0x0, True)
            predictor.predict_and_update(0x1000, True)
        assert predictor.predict(0x2000) in (True, False)
