"""Unit tests for the perceptron predictor."""

import pytest

from repro.frontend.perceptron import PerceptronPredictor


class TestPerceptron:
    def test_learns_biased_branch(self):
        predictor = PerceptronPredictor(entries=64, history_bits=8)
        for _ in range(200):
            predictor.predict_and_update(0x10, True)
        assert predictor.predict(0x10)

    def test_learns_history_correlation(self):
        predictor = PerceptronPredictor(entries=64, history_bits=8)
        # branch outcome equals the outcome two branches ago
        history = [True, False]
        for i in range(4000):
            outcome = history[-2]
            predictor.predict_and_update(0x20, outcome)
            history.append(outcome)
        correct = 0
        for i in range(200):
            outcome = history[-2]
            if predictor.predict_and_update(0x20, outcome):
                correct += 1
            history.append(outcome)
        assert correct >= 190

    def test_weights_bounded(self):
        predictor = PerceptronPredictor(entries=4, history_bits=4)
        for _ in range(10_000):
            predictor.predict_and_update(0x0, True)
        for weights in predictor._weights:
            for w in weights:
                assert -129 <= w <= 127

    def test_threshold_formula(self):
        predictor = PerceptronPredictor(history_bits=24)
        assert predictor.threshold == int(1.93 * 24 + 14)

    def test_validation(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(entries=100)
        with pytest.raises(ValueError):
            PerceptronPredictor(history_bits=0)

    def test_alternation_learned(self):
        predictor = PerceptronPredictor(entries=16, history_bits=8)
        for i in range(2000):
            predictor.predict_and_update(0x40, i % 2 == 0)
        correct = sum(
            predictor.predict_and_update(0x40, i % 2 == 0)
            for i in range(2000, 2100)
        )
        assert correct >= 95
