"""Unit tests for the SPEC-FP-like profile extension."""

import pytest

from repro.interval.penalty import measure_penalties
from repro.isa.opcodes import OpClass
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.synthetic import generate_trace
from repro.workloads.spec_profiles import (
    ALL_PROFILES,
    SPEC_FP_PROFILES,
    SPEC_PROFILES,
    spec_fp_names,
    spec_profile,
)


class TestSuiteStructure:
    def test_six_fp_benchmarks(self):
        assert len(SPEC_FP_PROFILES) == 6

    def test_no_name_collision_with_int_suite(self):
        assert not set(SPEC_FP_PROFILES) & set(SPEC_PROFILES)
        assert len(ALL_PROFILES) == len(SPEC_PROFILES) + len(SPEC_FP_PROFILES)

    def test_lookup_spans_both_suites(self):
        assert spec_profile("swim").name == "swim"
        assert spec_profile("mcf").name == "mcf"

    def test_fp_names_order(self):
        assert spec_fp_names() == list(SPEC_FP_PROFILES)

    def test_mixes_valid(self):
        for profile in SPEC_FP_PROFILES.values():
            assert sum(profile.mix.values()) == pytest.approx(1.0)


class TestFPCharacter:
    def test_fp_heavy_mixes(self):
        for profile in SPEC_FP_PROFILES.values():
            fp_share = (
                profile.mix[OpClass.FADD]
                + profile.mix[OpClass.FMUL]
                + profile.mix[OpClass.FDIV]
            )
            assert fp_share > 0.15

    def test_fewer_branches_than_int_suite(self):
        fp_branches = max(p.branch_fraction for p in SPEC_FP_PROFILES.values())
        int_branches = max(p.branch_fraction for p in SPEC_PROFILES.values())
        assert fp_branches < int_branches

    def test_loop_branches_highly_predictable(self):
        for name in ("swim", "mgrid", "applu"):
            assert SPEC_FP_PROFILES[name].mispredict_rate <= 0.012

    def test_art_is_memory_bound(self):
        assert SPEC_FP_PROFILES["art"].dl2_miss_rate >= 0.04


class TestBehaviour:
    def test_each_generates_and_simulates(self):
        config = CoreConfig()
        for name, profile in SPEC_FP_PROFILES.items():
            trace = generate_trace(profile, 5000, seed=1)
            trace.validate()
            result = simulate(trace, config)
            assert result.instructions == 5000

    def test_fp_penalties_large_despite_rare_mispredicts(self):
        """FP codes mispredict rarely, but when they do the long FP
        chains make the penalty large — the paper's C4 at work."""
        config = CoreConfig()
        trace = generate_trace(SPEC_FP_PROFILES["swim"], 30_000, seed=4)
        result = simulate(trace, config)
        report = measure_penalties(result)
        if report.count:
            assert report.mean_penalty > 2 * config.frontend_depth

    def test_swim_mispredicts_less_than_twolf(self):
        swim = generate_trace(SPEC_FP_PROFILES["swim"], 20_000, seed=2)
        twolf = generate_trace(SPEC_PROFILES["twolf"], 20_000, seed=2)
        assert (
            swim.statistics().mispredictions_per_ki
            < twolf.statistics().mispredictions_per_ki
        )
