"""Unit tests for suite-level trace generation."""

from repro.workloads.generator import DEFAULT_SEED, default_suite, suite_traces


class TestSuiteTraces:
    def test_default_suite_complete(self):
        assert len(default_suite()) == 12

    def test_traces_for_selected_names(self):
        traces = suite_traces(length=500, names=["gzip", "mcf"])
        assert set(traces) == {"gzip", "mcf"}
        assert all(len(t) == 500 for t in traces.values())

    def test_deterministic_per_name(self):
        a = suite_traces(length=300, names=["gcc"])["gcc"]
        b = suite_traces(length=300, names=["gcc"])["gcc"]
        assert a.records == b.records

    def test_names_get_distinct_streams(self):
        traces = suite_traces(length=300, names=["gzip", "bzip2"])
        assert traces["gzip"].records != traces["bzip2"].records

    def test_seed_changes_stream(self):
        a = suite_traces(length=300, seed=DEFAULT_SEED, names=["vpr"])["vpr"]
        b = suite_traces(length=300, seed=DEFAULT_SEED + 1, names=["vpr"])["vpr"]
        assert a.records != b.records
