"""Unit tests for the microbenchmark kernels."""

import pytest

from repro.isa.opcodes import OpClass
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.workloads.kernels import (
    KERNEL_BUILDERS,
    branchy_search,
    build_kernel,
    dot_product,
    fibonacci,
    kernel_names,
    kernel_trace,
    nested_loop,
    pointer_chase,
    stride_sum,
)


class TestBuilders:
    def test_all_kernels_run_to_halt(self):
        for name in kernel_names():
            trace = kernel_trace(name)
            assert len(trace) > 50, f"{name} produced a tiny trace"

    def test_build_kernel_by_name(self):
        kernel = build_kernel("dot_product")
        assert kernel.program.name == "dot_product"

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            build_kernel("raytracer")

    def test_registry_matches_names(self):
        assert set(kernel_names()) == set(KERNEL_BUILDERS)


class TestKernelSemantics:
    def test_dot_product_result(self):
        kernel = dot_product(elements=16)
        memory_image = kernel.memory_image
        expected = sum(
            memory_image[0x100000 + 8 * i] * memory_image[0x100000 + 8 * (16 + i)]
            for i in range(16)
        )
        trace = kernel.run()
        fmuls = sum(1 for r in trace if r.op_class is OpClass.FMUL)
        assert fmuls == 16
        assert expected >= 0  # the functional result is exercised via trace

    def test_pointer_chase_visits_every_node(self):
        kernel = pointer_chase(nodes=64, laps=2)
        trace = kernel.run()
        loads = [r for r in trace if r.is_load]
        # two loads per node visit, 2 laps over 64 nodes
        assert len(loads) == 2 * 2 * 64

    def test_pointer_chase_is_serial(self):
        kernel = pointer_chase(nodes=64, laps=2)
        trace = kernel.run()
        # the pointer chain serializes at least one step per iteration
        assert trace.critical_path_length() >= 2 * 64

    def test_dot_product_higher_ilp_than_chase(self):
        dot = dot_product(elements=128).run()
        chase = pointer_chase(nodes=128, laps=2).run()
        assert dot.dataflow_ipc() > chase.dataflow_ipc()

    def test_branchy_search_branch_outcomes_mixed(self):
        trace = branchy_search(elements=256).run()
        data_branches = [
            r for r in trace if r.is_branch
        ]
        taken = sum(r.taken for r in data_branches)
        assert 0 < taken < len(data_branches)

    def test_fibonacci_instruction_count(self):
        trace = fibonacci(count=10).run()
        # 4 setup + 10 * 5 loop + store
        assert len(trace) == 4 + 50 + 1

    def test_nested_loop_structure(self):
        trace = nested_loop(outer=4, inner=3).run()
        branches = [r for r in trace if r.is_branch]
        # inner branch runs outer*inner times, outer branch outer times
        assert len(branches) == 4 * 3 + 4

    def test_stride_sum_covers_elements(self):
        trace = stride_sum(elements=64, stride=4).run()
        loads = [r for r in trace if r.is_load]
        assert len(loads) == 16


class TestKernelsOnCore:
    def test_kernel_traces_simulate(self):
        for name in ("dot_product", "branchy_search", "fibonacci"):
            trace = kernel_trace(name)
            result = simulate(trace, CoreConfig())
            assert result.instructions == len(trace)
            assert result.cycles > 0

    def test_fibonacci_is_latency_bound(self):
        trace = fibonacci(count=100).run()
        result = simulate(trace, CoreConfig())
        # serial adds limit IPC well below width
        assert result.ipc < 3.0
