"""Unit tests for the SPEC-like profile suite."""

import pytest

from repro.trace.synthetic import generate_trace
from repro.workloads.spec_profiles import SPEC_PROFILES, spec_names, spec_profile


class TestSuiteStructure:
    def test_twelve_benchmarks(self):
        assert len(SPEC_PROFILES) == 12

    def test_expected_names_present(self):
        for name in ("gzip", "gcc", "mcf", "crafty", "twolf", "vortex"):
            assert name in SPEC_PROFILES

    def test_all_profiles_validate(self):
        # WorkloadProfile validates in __post_init__; constructing the
        # dict already proved it. Check mixes sum to one explicitly.
        for profile in SPEC_PROFILES.values():
            assert sum(profile.mix.values()) == pytest.approx(1.0)

    def test_profile_names_match_keys(self):
        for name, profile in SPEC_PROFILES.items():
            assert profile.name == name

    def test_spec_profile_lookup(self):
        assert spec_profile("mcf").name == "mcf"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown workload"):
            spec_profile("linpack")

    def test_spec_names_order(self):
        assert spec_names() == list(SPEC_PROFILES)


class TestBehaviouralAxes:
    """The suite must span the axes the paper's characterization varies."""

    def test_mcf_is_memory_bound(self):
        mcf = spec_profile("mcf")
        others = [p for n, p in SPEC_PROFILES.items() if n != "mcf"]
        assert mcf.dl2_miss_rate > max(p.dl2_miss_rate for p in others)

    def test_icache_heavy_workloads(self):
        for name in ("gcc", "perlbmk", "vortex"):
            assert spec_profile(name).il1_mpki >= 5.0

    def test_twolf_mispredicts_most(self):
        twolf = spec_profile("twolf")
        assert twolf.mispredict_rate == max(
            p.mispredict_rate for p in SPEC_PROFILES.values()
        )

    def test_ilp_range_spans(self):
        distances = [p.mean_dependence_distance for p in SPEC_PROFILES.values()]
        assert min(distances) <= 3.5
        assert max(distances) >= 6.0

    def test_eon_has_fp_mix(self):
        from repro.isa.opcodes import OpClass

        assert spec_profile("eon").mix[OpClass.FADD] > 0.05

    def test_each_profile_generates(self):
        for name, profile in SPEC_PROFILES.items():
            trace = generate_trace(profile, 2000, seed=1)
            assert len(trace) == 2000
            trace.validate()
