"""Validation of every reproduced experiment's claimed shape.

These are the reproduction's acceptance tests: each experiment must
show the qualitative result the paper reports (see DESIGN.md's
"expected shapes"). They run on the shared cached baseline runs.
"""

import pytest

from repro.harness.experiments import (
    EXPERIMENTS,
    SUITE,
    run_experiment,
    run_f1,
    run_f2,
    run_f4,
    run_f6,
    run_f7,
    run_f8,
    run_f9,
    run_f10,
    run_f12,
    run_t1,
    run_t2,
    run_t3,
)


class TestRegistry:
    def test_all_design_md_experiments_present(self):
        expected = {"t1", "t2", "t3"} | {f"f{i}" for i in range(1, 22)}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            run_experiment("f99")

    def test_run_experiment_dispatch(self):
        result = run_experiment("T1")
        assert result.experiment_id == "t1"


class TestT1T2:
    def test_t1_reports_baseline(self):
        result = run_t1()
        rendered = result.render()
        assert "ROB" in rendered
        assert "frontend" in rendered

    def test_t2_covers_suite(self):
        result = run_t2()
        assert result.column("workload") == SUITE
        ipcs = result.column("IPC")
        assert all(0.05 < ipc <= 4.0 for ipc in ipcs)

    def test_t2_mcf_lowest_ipc(self):
        result = run_t2()
        by_name = dict(zip(result.column("workload"), result.column("IPC")))
        assert by_name["mcf"] == min(by_name.values())


class TestHeadlineClaim:
    """F2/F3: the penalty substantially exceeds the frontend length."""

    def test_penalty_exceeds_frontend_everywhere(self):
        result = run_f2()
        for ratio in result.column("penalty/frontend"):
            assert ratio > 1.5

    def test_resolution_positive_everywhere(self):
        result = run_f2()
        for resolution in result.column("mean resolution"):
            assert resolution > 0


class TestIntervalBehaviour:
    def test_f1_dispatch_collapses_then_recovers(self):
        result = run_f1()
        rates = {}
        for rel, rate, phase in result.rows:
            rates.setdefault(phase, []).append(rate)
        steady = sum(rates["steady"]) / len(rates["steady"])
        refill = sum(rates["refill"]) / len(rates["refill"])
        assert refill < steady  # dispatch collapses during refill

    def test_f4_resolution_rises_with_gap(self):
        result = run_f4()
        rows = [r for r in result.rows if r[1] > 0]
        small_gap = rows[0][2]
        large_gap = rows[-1][2]
        assert large_gap > small_gap

    def test_f4_saturates_near_window(self):
        result = run_f4()
        rows = [r for r in result.rows if r[1] > 0]
        # last two buckets (beyond the 128-entry window) within 50%
        assert rows[-1][2] <= 2.0 * rows[-2][2]


@pytest.mark.slow
class TestSensitivities:
    """F6-F9 re-simulate fresh sweeps (no cache reuse): slow-marked."""

    def test_f6_resolution_falls_with_ilp(self):
        result = run_f6()
        resolutions = result.column("mean resolution")
        assert resolutions[0] > resolutions[-1]
        ipcs = result.column("IPC")
        assert ipcs[-1] > ipcs[0]

    def test_f7_resolution_rises_with_fu_latency(self):
        result = run_f7()
        resolutions = result.column("mean resolution")
        assert resolutions == sorted(resolutions)
        ipcs = result.column("IPC")
        assert ipcs[0] > ipcs[-1]

    def test_f8_resolution_rises_with_short_misses(self):
        result = run_f8()
        resolutions = result.column("mean resolution")
        assert resolutions[-1] > resolutions[0]
        # roughly monotone: each point within noise of the trend
        for earlier, later in zip(resolutions, resolutions[2:]):
            assert later > earlier - 2.0

    def test_f9_penalty_grows_with_window(self):
        result = run_f9()
        resolutions = result.column("mean resolution")
        assert resolutions == sorted(resolutions)
        # sublinear: 8x window -> much less than 8x resolution
        assert resolutions[-1] < 8 * resolutions[0]
        ipcs = result.column("IPC")
        assert ipcs[-1] >= ipcs[0]


class TestModelAndStacks:
    def test_f10_stacks_sum_to_cpi(self):
        result = run_f10()
        for row in result.rows:
            _, base, bpred, icache, longd, other, total = row
            assert base + bpred + icache + longd + other == pytest.approx(
                total, rel=1e-6
            )

    def test_f10_mcf_memory_dominated(self):
        result = run_f10()
        by_name = {row[0]: row for row in result.rows}
        mcf = by_name["mcf"]
        assert mcf[4] == max(mcf[1:6])  # long D$ largest component

    def test_t3_model_tracks_simulation(self):
        result = run_t3()
        errors = result.column("CPI error %")
        assert sum(abs(e) for e in errors) / len(errors) < 15.0
        for error in errors:
            assert abs(error) < 35.0

    def test_f12_power_law_fits(self):
        result = run_f12()
        for r2 in result.column("R^2"):
            assert r2 > 0.9
        for beta in result.column("beta"):
            assert 0.1 < beta < 1.1


class TestContributors:
    def test_f11_components_account_for_penalty(self):
        result = run_experiment("f11")
        for row in result.rows:
            name, refill, ilp, fu, short, residual, total, _gap = row
            assert refill + ilp + fu + short + residual == pytest.approx(
                total, rel=1e-6
            )
            assert ilp > 0

    def test_f11_mcf_short_miss_contribution_large(self):
        result = run_experiment("f11")
        by_name = {row[0]: row for row in result.rows}
        assert by_name["mcf"][4] > by_name["crafty"][4]


class TestAblations:
    def test_f13_penalty_stable_under_wrong_path(self):
        result = run_experiment("f13")
        for row in result.rows:
            _, stop_penalty, wp_penalty, _, _, ghosts = row
            assert wp_penalty == pytest.approx(stop_penalty, rel=0.25)
            assert ghosts > 0

    def test_f14_random_issue_not_better(self):
        result = run_experiment("f14")
        for row in result.rows:
            _, _, _, ipc_oldest, ipc_random = row
            assert ipc_random <= ipc_oldest * 1.02

    def test_f15_extended_definition_shreds_intervals(self):
        result = run_experiment("f15")
        for row in result.rows:
            _, paper_rate, ext_rate, paper_gap, ext_gap = row
            assert ext_rate >= paper_rate
            assert ext_gap <= paper_gap


class TestExtensions:
    def test_f17_penalty_band_predictor_independent(self):
        result = run_experiment("f17")
        penalties = [row[2] for row in result.rows if row[2] > 0]
        assert max(penalties) < 1.6 * min(penalties)

    def test_f20_inorder_collapses_resolution(self):
        result = run_experiment("f20")
        for row in result.rows:
            _, res_ooo, res_ino, _pen_ooo, pen_ino, ipc_ooo, ipc_ino = row
            assert res_ino < 0.5 * res_ooo
            assert pen_ino < 15.0
            assert ipc_ooo > ipc_ino

    @pytest.mark.slow
    def test_f21_all_contributors_move_the_penalty(self):
        result = run_experiment("f21")
        for label, _low, _high, swing in result.rows:
            assert abs(swing) > 1.0, label
