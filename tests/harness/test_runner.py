"""Unit tests for the caching runner."""

from repro.harness.runner import (
    baseline_config,
    clear_caches,
    simulate_workload,
    workload_trace,
)


class TestCaching:
    def setup_method(self):
        clear_caches()

    def teardown_method(self):
        clear_caches()

    def test_trace_cached_by_identity(self):
        a = workload_trace("gzip", length=500)
        b = workload_trace("gzip", length=500)
        assert a is b

    def test_trace_distinct_per_length(self):
        a = workload_trace("gzip", length=500)
        b = workload_trace("gzip", length=600)
        assert a is not b

    def test_simulation_cached(self):
        a = simulate_workload("gzip", length=500)
        b = simulate_workload("gzip", length=500)
        assert a is b

    def test_config_key_distinguishes_configs(self):
        base = simulate_workload("gzip", length=500)
        deep = simulate_workload(
            "gzip",
            config=baseline_config().with_overrides(frontend_depth=20),
            length=500,
        )
        assert base is not deep
        assert deep.cycles > base.cycles

    def test_clear_caches(self):
        a = simulate_workload("gzip", length=500)
        clear_caches()
        b = simulate_workload("gzip", length=500)
        assert a is not b
        assert a.cycles == b.cycles  # deterministic regeneration
