"""Unit tests for the caching runner."""

import repro.harness.runner as runner
from repro.harness.runner import (
    baseline_config,
    cache_stats,
    clear_caches,
    simulate_workload,
    workload_trace,
)
from repro.lab.store import ResultStore
from repro.util.lru import LRUCache


class TestCaching:
    def setup_method(self):
        clear_caches()

    def teardown_method(self):
        clear_caches()

    def test_trace_cached_by_identity(self):
        a = workload_trace("gzip", length=500)
        b = workload_trace("gzip", length=500)
        assert a is b

    def test_trace_distinct_per_length(self):
        a = workload_trace("gzip", length=500)
        b = workload_trace("gzip", length=600)
        assert a is not b

    def test_simulation_cached(self):
        a = simulate_workload("gzip", length=500)
        b = simulate_workload("gzip", length=500)
        assert a is b

    def test_config_key_distinguishes_configs(self):
        base = simulate_workload("gzip", length=500)
        deep = simulate_workload(
            "gzip",
            config=baseline_config().with_overrides(frontend_depth=20),
            length=500,
        )
        assert base is not deep
        assert deep.cycles > base.cycles

    def test_clear_caches(self):
        a = simulate_workload("gzip", length=500)
        clear_caches()
        b = simulate_workload("gzip", length=500)
        assert a is not b
        assert a.cycles == b.cycles  # deterministic regeneration


class TestBoundedCaches:
    def test_trace_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(runner, "_trace_cache", LRUCache(2))
        for length in (300, 400, 500):
            workload_trace("gzip", length=length)
        stats = cache_stats()["trace"]
        assert stats["capacity"] == 2
        assert stats["size"] == 2
        assert stats["evictions"] == 1

    def test_sim_cache_is_bounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setattr(runner, "_sim_cache", LRUCache(2))
        for length in (300, 400, 500):
            simulate_workload("gzip", length=length)
        stats = cache_stats()["sim"]
        assert stats["size"] == 2
        assert stats["evictions"] == 1

    def test_stats_count_hits_and_misses(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setattr(runner, "_sim_cache", LRUCache(4))
        simulate_workload("gzip", length=300)
        simulate_workload("gzip", length=300)
        stats = cache_stats()["sim"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1


class TestPersistentBacking:
    def test_store_survives_in_memory_clear(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_caches()
        a = simulate_workload("gzip", length=400)
        clear_caches()
        b = simulate_workload("gzip", length=400)
        store = ResultStore(root=tmp_path)
        assert store.count() == 1  # second call was a store hit, not a put
        assert a is not b
        assert a.cycles == b.cycles
        assert a.events == b.events

    def test_no_cache_env_skips_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        clear_caches()
        simulate_workload("gzip", length=400)
        assert ResultStore(root=tmp_path).count() == 0

    def test_distinct_configs_get_distinct_objects(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_caches()
        simulate_workload("gzip", length=400)
        simulate_workload(
            "gzip",
            config=baseline_config().with_overrides(rob_size=64),
            length=400,
        )
        assert ResultStore(root=tmp_path).count() == 2
