"""simulate_workload_batch / _sharded must share the scalar cache."""

import repro.harness.runner as runner
from repro.harness.runner import (
    baseline_config,
    clear_caches,
    simulate_workload,
    simulate_workload_batch,
    simulate_workload_sharded,
)


class TestBatchRunner:
    def setup_method(self):
        clear_caches()

    def teardown_method(self):
        clear_caches()

    def test_batch_matches_scalar_per_config(self):
        configs = [
            baseline_config(),
            baseline_config().with_overrides(rob_size=32),
        ]
        batch = simulate_workload_batch("gzip", configs, length=500)
        for config, result in zip(configs, batch):
            clear_caches()  # force the scalar path to recompute
            scalar = simulate_workload("gzip", config, length=500)
            assert vars(result) == vars(scalar)

    def test_none_config_means_baseline(self):
        [from_none] = simulate_workload_batch("gzip", [None], length=500)
        scalar = simulate_workload("gzip", baseline_config(), length=500)
        assert vars(from_none) == vars(scalar)

    def test_batch_populates_scalar_cache(self):
        config = baseline_config().with_overrides(rob_size=48)
        simulate_workload_batch("gzip", [config], length=500)
        hits_before = runner.cache_stats()["sim"]["hits"]
        simulate_workload("gzip", config, length=500)
        assert runner.cache_stats()["sim"]["hits"] == hits_before + 1

    def test_batch_reads_scalar_cache(self):
        config = baseline_config().with_overrides(rob_size=96)
        scalar = simulate_workload("gzip", config, length=500)
        hits_before = runner.cache_stats()["sim"]["hits"]
        [batched] = simulate_workload_batch("gzip", [config], length=500)
        assert runner.cache_stats()["sim"]["hits"] == hits_before + 1
        assert vars(batched) == vars(scalar)

    def test_sharded_matches_scalar(self):
        config = baseline_config()
        sharded = simulate_workload_sharded("gzip", config, length=800, shards=4)
        clear_caches()
        scalar = simulate_workload("gzip", config, length=800)
        assert vars(sharded) == vars(scalar)
