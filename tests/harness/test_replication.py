"""Unit tests for replication utilities."""

import pytest

from repro.harness.replication import (
    Replicated,
    confidence_half_width,
    replicate,
)
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace


class TestConfidenceHalfWidth:
    def test_zero_for_single_sample(self):
        assert confidence_half_width([5.0]) == 0.0

    def test_zero_for_identical_samples(self):
        assert confidence_half_width([3.0, 3.0, 3.0]) == 0.0

    def test_scales_with_spread(self):
        tight = confidence_half_width([10.0, 10.1, 9.9, 10.0])
        loose = confidence_half_width([10.0, 12.0, 8.0, 10.0])
        assert loose > tight

    def test_higher_confidence_wider(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert confidence_half_width(values, 0.99) > confidence_half_width(
            values, 0.90
        )

    def test_unknown_confidence_raises(self):
        with pytest.raises(ValueError):
            confidence_half_width([1.0, 2.0], confidence=0.5)


class TestReplicated:
    def test_bounds(self):
        r = Replicated(mean=10.0, half_width=2.0, replications=5,
                       confidence=0.95)
        assert r.low == 8.0
        assert r.high == 12.0

    def test_overlap(self):
        a = Replicated(10.0, 2.0, 5, 0.95)
        b = Replicated(13.0, 2.0, 5, 0.95)
        c = Replicated(20.0, 1.0, 5, 0.95)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_str(self):
        assert "±" in str(Replicated(1.0, 0.5, 3, 0.95))


class TestReplicate:
    def test_deterministic(self):
        def measure(seed):
            return {"value": float(seed % 1000)}

        a = replicate(measure, base_seed=1, replications=4)
        b = replicate(measure, base_seed=1, replications=4)
        assert a["value"].mean == b["value"].mean

    def test_seeds_differ_across_replications(self):
        seen = []

        def measure(seed):
            seen.append(seed)
            return {"x": 0.0}

        replicate(measure, base_seed=1, replications=5)
        assert len(set(seen)) == 5

    def test_invalid_replications(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: {}, base_seed=1, replications=0)

    def test_real_measurement_separates_conditions(self):
        """Replicated penalties distinguish low vs high short-miss rates
        with non-overlapping intervals."""
        from repro.interval.penalty import measure_penalties

        config = CoreConfig()

        def penalty_at(rate):
            profile = WorkloadProfile(
                name=f"rep-{rate}",
                dl1_miss_rate=rate,
                dl2_miss_rate=0.0,
                il1_mpki=0.0,
            )

            def measure(seed):
                trace = generate_trace(profile, 8000, seed=seed)
                result = simulate(trace, config)
                return {"penalty": measure_penalties(result).mean_penalty}

            return replicate(measure, base_seed=42, replications=4)["penalty"]

        low = penalty_at(0.0)
        high = penalty_at(0.25)
        assert high.mean > low.mean
        assert not low.overlaps(high)
