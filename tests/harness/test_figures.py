"""Unit tests for ASCII figure rendering."""

from repro.harness.figures import ascii_bar_chart, ascii_series, ascii_stacked_bars


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = ascii_bar_chart([("a", 10.0), ("b", 5.0)], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_labels_and_values_present(self):
        text = ascii_bar_chart([("gzip", 38.34)])
        assert "gzip" in text and "38.34" in text

    def test_empty_items(self):
        assert ascii_bar_chart([]) == "(no data)"

    def test_unit_suffix(self):
        assert "cyc" in ascii_bar_chart([("a", 1.0)], unit="cyc")

    def test_zero_values_no_crash(self):
        text = ascii_bar_chart([("a", 0.0)])
        assert "a" in text


class TestSeries:
    def test_header_and_rows(self):
        text = ascii_series([1, 2], {"ipc": [1.0, 2.0]}, x_label="rob")
        lines = text.splitlines()
        assert "rob" in lines[0] and "ipc" in lines[0]
        assert len(lines) == 3

    def test_short_series_padded(self):
        text = ascii_series([1, 2], {"y": [1.0]})
        assert "-" in text.splitlines()[2]


class TestStackedBars:
    def test_totals_shown(self):
        text = ascii_stacked_bars(
            ["w1"], {"base": [1.0], "bpred": [0.5]}
        )
        assert "(1.50)" in text

    def test_legend_lists_components(self):
        text = ascii_stacked_bars(["w1"], {"base": [1.0], "other": [0.2]})
        assert "base" in text.splitlines()[-1]
        assert "legend:" in text
