"""Smoke test: the full experiment registry is runnable end to end.

Every experiment function must return a well-formed ExperimentResult;
the claim-level assertions live in test_experiments.py and the
benchmark files — here we only verify structural health for the whole
registry (including any newly added experiment).
"""

import pytest

from repro.harness.experiments import EXPERIMENTS

# Runs every experiment end to end (~minutes): slow-marked; the tier-1
# gate covers the registry through the targeted tests instead.
pytestmark = pytest.mark.slow


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_is_well_formed(experiment_id):
    result = EXPERIMENTS[experiment_id]()
    assert result.experiment_id == experiment_id
    assert result.title
    assert result.headers
    assert result.rows, f"{experiment_id} produced no rows"
    width = len(result.headers)
    for row in result.rows:
        assert len(row) == width
    rendered = result.render()
    assert experiment_id.upper() in rendered
    markdown = result.render_markdown()
    assert markdown.startswith(f"### {experiment_id.upper()}")
