"""Unit tests for the ExperimentResult container."""

import pytest

from repro.harness.experiment import ExperimentResult


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="f2",
        title="Penalty vs frontend",
        headers=["workload", "penalty"],
        rows=[["gzip", 38.3], ["mcf", 160.2]],
        notes="penalty exceeds frontend",
    )


class TestRender:
    def test_render_contains_title_and_rows(self, result):
        text = result.render()
        assert "F2" in text
        assert "gzip" in text
        assert "38.30" in text

    def test_render_includes_notes(self, result):
        assert "note: penalty exceeds frontend" in result.render()

    def test_render_markdown(self, result):
        md = result.render_markdown()
        assert md.startswith("### F2")
        assert "| gzip |" in md

    def test_float_format_override(self, result):
        assert "38.3" in result.render(float_fmt=".1f")


class TestColumns:
    def test_column_extraction(self, result):
        assert result.column("workload") == ["gzip", "mcf"]
        assert result.column("penalty") == [38.3, 160.2]

    def test_unknown_column_raises(self, result):
        with pytest.raises(KeyError):
            result.column("cycles")
