"""Unit tests for the sweep helper."""

from repro.harness.sweep import Sweep, sweep_values


class TestSweep:
    def test_collects_series(self):
        series = sweep_values(
            "x", [1, 2, 3], lambda x: {"square": float(x * x), "double": 2.0 * x}
        )
        assert series["square"] == [1.0, 4.0, 9.0]
        assert series["double"] == [2.0, 4.0, 6.0]

    def test_runner_called_in_order(self):
        seen = []

        def runner(value):
            seen.append(value)
            return {"v": value}

        Sweep(parameter="p", values=["a", "b"], runner=runner).run()
        assert seen == ["a", "b"]

    def test_empty_values(self):
        assert sweep_values("x", [], lambda x: {"y": 1.0}) == {}
