"""Unit tests for the sweep helper."""

import math

import pytest

from repro.harness.sweep import Sweep, sweep_values


class TestSweep:
    def test_collects_series(self):
        series = sweep_values(
            "x", [1, 2, 3], lambda x: {"square": float(x * x), "double": 2.0 * x}
        )
        assert series["square"] == [1.0, 4.0, 9.0]
        assert series["double"] == [2.0, 4.0, 6.0]

    def test_runner_called_in_order(self):
        seen = []

        def runner(value):
            seen.append(value)
            return {"v": value}

        Sweep(parameter="p", values=["a", "b"], runner=runner).run()
        assert seen == ["a", "b"]

    def test_empty_values(self):
        assert sweep_values("x", [], lambda x: {"y": 1.0}) == {}


class TestFailureIsolation:
    @staticmethod
    def _flaky(value):
        if value == 2:
            raise ValueError("point 2 exploded")
        return {"y": float(value)}

    def test_failed_point_becomes_nan_others_survive(self):
        outcome = Sweep(
            parameter="x", values=[1, 2, 3], runner=self._flaky
        ).run_detailed()
        assert outcome.series["y"][0] == 1.0
        assert math.isnan(outcome.series["y"][1])
        assert outcome.series["y"][2] == 3.0

    def test_failure_is_recorded_with_context(self):
        outcome = Sweep(
            parameter="x", values=[1, 2, 3], runner=self._flaky
        ).run_detailed()
        assert not outcome.ok
        assert len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert failure.index == 1
        assert failure.value == 2
        assert "point 2 exploded" in failure.error

    def test_strict_mode_still_raises(self):
        with pytest.raises(ValueError, match="point 2 exploded"):
            sweep_values("x", [1, 2, 3], self._flaky, strict=True)

    def test_late_metric_gets_nan_padding(self):
        def runner(value):
            metrics = {"y": float(value)}
            if value >= 2:
                metrics["extra"] = 10.0 * value
            return metrics

        series = Sweep(parameter="x", values=[1, 2], runner=runner).run()
        assert math.isnan(series["extra"][0])
        assert series["extra"][1] == 20.0

    def test_all_points_fail(self):
        def runner(value):
            raise RuntimeError("nope")

        outcome = Sweep(
            parameter="x", values=[1, 2], runner=runner
        ).run_detailed()
        assert len(outcome.failures) == 2
        assert outcome.series == {}
