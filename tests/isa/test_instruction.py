"""Unit tests for Instruction validation."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, OpClass
from repro.isa.registers import int_reg


class TestValidate:
    def test_valid_rrr(self):
        Instruction(
            opcode=Opcode.ADD, dest=int_reg(1), sources=(int_reg(2), int_reg(3))
        ).validate()

    def test_rrr_missing_source(self):
        inst = Instruction(opcode=Opcode.ADD, dest=int_reg(1), sources=(int_reg(2),))
        with pytest.raises(ValueError, match="expected 2"):
            inst.validate()

    def test_missing_dest(self):
        inst = Instruction(opcode=Opcode.ADD, sources=(int_reg(2), int_reg(3)))
        with pytest.raises(ValueError, match="destination"):
            inst.validate()

    def test_store_has_no_dest(self):
        inst = Instruction(
            opcode=Opcode.ST,
            dest=int_reg(1),
            sources=(int_reg(2), int_reg(3)),
        )
        with pytest.raises(ValueError, match="unexpected destination"):
            inst.validate()

    def test_valid_store(self):
        Instruction(
            opcode=Opcode.ST, sources=(int_reg(2), int_reg(3)), imm=8
        ).validate()

    def test_branch_needs_target_or_label(self):
        inst = Instruction(opcode=Opcode.BEQ, sources=(int_reg(1), int_reg(2)))
        with pytest.raises(ValueError, match="without target"):
            inst.validate()

    def test_branch_with_label_ok(self):
        Instruction(
            opcode=Opcode.BEQ, sources=(int_reg(1), int_reg(2)), label="x"
        ).validate()

    def test_jal_dest_allowed(self):
        Instruction(opcode=Opcode.JAL, dest=int_reg(1), target=0).validate()

    def test_nop_valid(self):
        Instruction(opcode=Opcode.NOP).validate()


class TestProperties:
    def test_op_class(self):
        inst = Instruction(opcode=Opcode.MUL, dest=int_reg(1),
                           sources=(int_reg(2), int_reg(3)))
        assert inst.op_class is OpClass.IMUL

    def test_flags(self):
        load = Instruction(opcode=Opcode.LD, dest=int_reg(1),
                           sources=(int_reg(2),))
        assert load.is_load and not load.is_store and not load.is_branch
        branch = Instruction(opcode=Opcode.BNEZ, sources=(int_reg(1),), label="x")
        assert branch.is_branch and branch.is_control

    def test_str_is_disassembly(self):
        inst = Instruction(
            opcode=Opcode.ADD, dest=int_reg(1), sources=(int_reg(2), int_reg(3))
        )
        assert str(inst) == "add r1, r2, r3"

    def test_frozen(self):
        inst = Instruction(opcode=Opcode.NOP)
        with pytest.raises(AttributeError):
            inst.imm = 5
