"""Unit tests for the assembler/disassembler."""

import pytest

from repro.isa.assembler import (
    AssemblyError,
    assemble,
    disassemble,
    disassemble_program,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import fp_reg, int_reg


class TestAssemble:
    def test_three_register_form(self):
        program = assemble("add r1, r2, r3")
        inst = program[0]
        assert inst.opcode is Opcode.ADD
        assert inst.dest == int_reg(1)
        assert inst.sources == (int_reg(2), int_reg(3))

    def test_immediate_form(self):
        inst = assemble("addi r1, r2, -7")[0]
        assert inst.imm == -7

    def test_hex_immediate(self):
        inst = assemble("li r1, 0x10")[0]
        assert inst.imm == 16

    def test_load_form(self):
        inst = assemble("ld r4, 8(r2)")[0]
        assert inst.opcode is Opcode.LD
        assert inst.dest == int_reg(4)
        assert inst.sources == (int_reg(2),)
        assert inst.imm == 8

    def test_store_form_sources(self):
        inst = assemble("st r4, -16(r2)")[0]
        assert inst.dest is None
        assert inst.sources == (int_reg(2), int_reg(4))
        assert inst.imm == -16

    def test_fp_registers(self):
        inst = assemble("fadd f1, f2, f3")[0]
        assert inst.dest == fp_reg(1)

    def test_branch_resolves_label(self):
        program = assemble(
            """
            loop:
                addi r1, r1, 1
                bne r1, r2, loop
            """
        )
        assert program[1].target == 0

    def test_forward_label(self):
        program = assemble(
            """
                beq r1, r2, done
                addi r1, r1, 1
            done:
                halt
            """
        )
        assert program[0].target == 2

    def test_label_on_same_line(self):
        program = assemble("start: addi r1, r1, 1")
        assert program.labels["start"] == 0

    def test_comments_ignored(self):
        program = assemble(
            """
            # full-line comment
            add r1, r2, r3  # trailing comment
            add r4, r5, r6  ; semicolon comment
            """
        )
        assert len(program) == 2

    def test_jump_and_link_writes_ra(self):
        program = assemble(
            """
                jal target
            target:
                halt
            """
        )
        assert program[0].dest == int_reg(1)

    def test_jr_form(self):
        inst = assemble("jr r1")[0]
        assert inst.sources == (int_reg(1),)

    def test_undefined_label_raises(self):
        with pytest.raises(AssemblyError):
            assemble("j nowhere")

    def test_duplicate_label_raises(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("x:\nx:\nhalt")

    def test_unknown_mnemonic_raises_with_line(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble("nop\nbogus r1, r2")

    def test_wrong_operand_count_raises(self):
        with pytest.raises(AssemblyError, match="expects 3"):
            assemble("add r1, r2")

    def test_bad_register_raises(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2, r99")

    def test_bad_immediate_raises(self):
        with pytest.raises(AssemblyError):
            assemble("addi r1, r2, twelve")

    def test_bad_memory_operand_raises(self):
        with pytest.raises(AssemblyError, match="memory operand"):
            assemble("ld r1, r2")

    def test_empty_program(self):
        assert len(assemble("")) == 0

    def test_fmov_float_immediate(self):
        inst = assemble("fmov f1, 3")[0]
        assert inst.opcode is Opcode.FMOV
        assert inst.imm == 3


class TestDisassemble:
    @pytest.mark.parametrize(
        "source",
        [
            "add r1, r2, r3",
            "addi r1, r2, 5",
            "li r7, 42",
            "ld r4, 8(r2)",
            "st r4, -8(r2)",
            "fadd f1, f2, f3",
            "jr r1",
            "nop",
            "halt",
        ],
    )
    def test_round_trip_single(self, source):
        inst = assemble(source)[0]
        assert disassemble(inst) == source

    def test_round_trip_program_reassembles(self):
        source = """
        start:
            li r2, 0
            li r5, 40
        loop:
            ld r3, 0(r2)
            addi r2, r2, 8
            bne r2, r5, loop
            beqz r3, start
            halt
        """
        program = assemble(source)
        text = disassemble_program(program)
        reassembled = assemble(text)
        assert len(reassembled) == len(program)
        for a, b in zip(program, reassembled):
            assert a.opcode is b.opcode
            assert a.dest == b.dest
            assert a.sources == b.sources
            assert a.imm == b.imm
            assert a.target == b.target
