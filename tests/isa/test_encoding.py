"""Unit tests for binary instruction encoding."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.encoding import (
    ENCODED_SIZE,
    DecodeError,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import int_reg


class TestInstructionRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "add r1, r2, r3",
            "addi r5, r6, -1000",
            "li r1, 123456",
            "ld r4, 8(r2)",
            "st r4, -8(r2)",
            "fadd f1, f2, f3",
            "fld f0, 0(r1)",
            "jr r1",
            "nop",
            "halt",
        ],
    )
    def test_round_trip(self, source):
        inst = assemble(source)[0]
        assert decode_instruction(encode_instruction(inst)) == inst

    def test_branch_with_target_round_trip(self):
        program = assemble("x: beq r1, r2, x")
        encoded = encode_instruction(program[0])
        decoded = decode_instruction(encoded)
        assert decoded.target == 0
        assert decoded.opcode is Opcode.BEQ

    def test_encoded_size(self):
        inst = assemble("nop")[0]
        assert len(encode_instruction(inst)) == ENCODED_SIZE

    def test_negative_immediate_preserved(self):
        inst = assemble("addi r1, r1, -2147483648")[0]
        assert decode_instruction(encode_instruction(inst)).imm == -(1 << 31)


class TestDecodeErrors:
    def test_wrong_length_raises(self):
        with pytest.raises(DecodeError):
            decode_instruction(b"\x00" * 5)

    def test_bad_opcode_ordinal_raises(self):
        data = bytes([255]) + b"\x00" * (ENCODED_SIZE - 1)
        with pytest.raises(DecodeError):
            decode_instruction(data)

    def test_bad_register_raises(self):
        data = bytes([0, 200, 0, 0]) + b"\x00" * 8
        with pytest.raises(DecodeError):
            decode_instruction(data)


class TestProgramRoundTrip:
    def test_program_round_trip(self):
        source = """
            li r2, 0
            li r5, 80
        loop:
            ld r3, 0(r2)
            addi r2, r2, 8
            add r4, r4, r3
            bne r2, r5, loop
            halt
        """
        program = assemble(source)
        data = encode_program(program)
        assert len(data) == ENCODED_SIZE * len(program)
        decoded = decode_program(data)
        assert len(decoded) == len(program)
        for a, b in zip(program, decoded):
            assert a.opcode is b.opcode
            assert a.dest == b.dest
            assert a.sources == b.sources
            assert a.imm == b.imm
            assert a.target == b.target

    def test_truncated_program_raises(self):
        with pytest.raises(DecodeError):
            decode_program(b"\x00" * (ENCODED_SIZE + 1))

    def test_too_many_sources_rejected(self):
        inst = Instruction(
            opcode=Opcode.ADD,
            dest=int_reg(1),
            sources=(int_reg(1), int_reg(2), int_reg(3)),
        )
        with pytest.raises(ValueError):
            encode_instruction(inst)
