"""Unit tests for opcode metadata."""

import pytest

from repro.isa.opcodes import OPCODE_INFO, Opcode, OpClass, lookup_mnemonic


class TestOpcodeInfo:
    def test_every_opcode_has_info(self):
        for opcode in Opcode:
            assert opcode in OPCODE_INFO
            assert OPCODE_INFO[opcode].opcode is opcode

    def test_lookup_by_mnemonic(self):
        for opcode in Opcode:
            assert lookup_mnemonic(opcode.value).opcode is opcode

    def test_lookup_case_insensitive(self):
        assert lookup_mnemonic("ADD").opcode is Opcode.ADD

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            lookup_mnemonic("frobnicate")

    def test_branch_classification(self):
        for opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
                       Opcode.BEQZ, Opcode.BNEZ):
            info = OPCODE_INFO[opcode]
            assert info.is_branch
            assert info.is_control
            assert not info.is_jump

    def test_jump_classification(self):
        for opcode in (Opcode.J, Opcode.JAL, Opcode.JR):
            info = OPCODE_INFO[opcode]
            assert info.is_jump
            assert info.is_control
            assert not info.is_branch

    def test_memory_classification(self):
        assert OPCODE_INFO[Opcode.LD].is_load
        assert OPCODE_INFO[Opcode.FLD].is_load
        assert OPCODE_INFO[Opcode.ST].is_store
        assert OPCODE_INFO[Opcode.FST].is_store
        assert not OPCODE_INFO[Opcode.ADD].is_load

    def test_op_class_memory_property(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.IALU.is_memory

    def test_op_class_control_property(self):
        assert OpClass.BRANCH.is_control
        assert OpClass.JUMP.is_control
        assert not OpClass.LOAD.is_control

    def test_formats_are_known(self):
        valid = {"rrr", "rri", "ri", "mem", "brr", "br", "j", "jr", "none"}
        for info in OPCODE_INFO.values():
            assert info.fmt in valid

    def test_stores_do_not_write_dest(self):
        assert not OPCODE_INFO[Opcode.ST].writes_dest
        assert OPCODE_INFO[Opcode.LD].writes_dest
        assert OPCODE_INFO[Opcode.ADD].writes_dest
