"""Unit tests for the register model."""

import pytest

from repro.isa.registers import (
    FP_REGISTER_COUNT,
    INT_REGISTER_COUNT,
    REG_ZERO,
    Register,
    RegisterFile,
    fp_reg,
    int_reg,
)


class TestRegister:
    def test_int_register_names(self):
        assert int_reg(0).name == "r0"
        assert int_reg(31).name == "r31"

    def test_fp_register_names(self):
        assert fp_reg(0).name == "f0"
        assert fp_reg(31).name == "f31"

    def test_is_fp(self):
        assert not int_reg(5).is_fp
        assert fp_reg(5).is_fp

    def test_bank_index(self):
        assert fp_reg(7).bank_index == 7
        assert fp_reg(7).index == INT_REGISTER_COUNT + 7

    def test_parse_round_trip(self):
        for i in range(INT_REGISTER_COUNT):
            assert Register.parse(f"r{i}") == int_reg(i)
        for i in range(FP_REGISTER_COUNT):
            assert Register.parse(f"f{i}") == fp_reg(i)

    def test_parse_aliases(self):
        assert Register.parse("zero") == REG_ZERO
        assert Register.parse("ra") == int_reg(1)
        assert Register.parse("sp") == int_reg(2)

    def test_parse_case_insensitive(self):
        assert Register.parse("R5") == int_reg(5)

    @pytest.mark.parametrize("bad", ["x3", "r32", "f32", "r-1", "", "r"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            Register.parse(bad)

    def test_out_of_range_index(self):
        with pytest.raises(ValueError):
            Register(64)
        with pytest.raises(ValueError):
            Register(-1)

    def test_helpers_reject_out_of_range(self):
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            fp_reg(32)

    def test_ordering_and_hash(self):
        assert int_reg(1) < int_reg(2) < fp_reg(0)
        assert len({int_reg(1), int_reg(1), int_reg(2)}) == 2


class TestRegisterFile:
    def test_read_write_int(self):
        rf = RegisterFile()
        rf.write(int_reg(5), 42)
        assert rf.read(int_reg(5)) == 42

    def test_r0_hardwired_zero(self):
        rf = RegisterFile()
        rf.write(REG_ZERO, 99)
        assert rf.read(REG_ZERO) == 0

    def test_read_write_fp(self):
        rf = RegisterFile()
        rf.write(fp_reg(3), 2.5)
        assert rf.read(fp_reg(3)) == 2.5

    def test_int_wraps_to_64_bits(self):
        rf = RegisterFile()
        rf.write(int_reg(1), 1 << 64)
        assert rf.read(int_reg(1)) == 0
        rf.write(int_reg(1), (1 << 63))
        assert rf.read(int_reg(1)) == -(1 << 63)

    def test_banks_are_independent(self):
        rf = RegisterFile()
        rf.write(int_reg(4), 7)
        rf.write(fp_reg(4), 3.5)
        assert rf.read(int_reg(4)) == 7
        assert rf.read(fp_reg(4)) == 3.5

    def test_initial_state_zero(self):
        rf = RegisterFile()
        assert rf.read(int_reg(10)) == 0
        assert rf.read(fp_reg(10)) == 0.0

    def test_snapshot_excludes_zeros(self):
        rf = RegisterFile()
        rf.write(int_reg(3), 9)
        snap = rf.snapshot()
        assert snap == {"r3": 9}
