"""Unit tests for the Program container."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import int_reg


@pytest.fixture
def loop_program():
    return assemble(
        """
        top:
            addi r1, r1, 1
            bne r1, r2, top
            halt
        """
    )


class TestAddressing:
    def test_address_of(self, loop_program):
        assert loop_program.address_of(0) == loop_program.base_address
        assert loop_program.address_of(1) == loop_program.base_address + 4

    def test_address_of_out_of_range(self, loop_program):
        with pytest.raises(IndexError):
            loop_program.address_of(99)

    def test_index_of_address_round_trip(self, loop_program):
        for i in range(len(loop_program)):
            assert loop_program.index_of_address(loop_program.address_of(i)) == i

    def test_index_of_misaligned_raises(self, loop_program):
        with pytest.raises(ValueError, match="misaligned"):
            loop_program.index_of_address(loop_program.base_address + 2)

    def test_index_of_outside_raises(self, loop_program):
        with pytest.raises(ValueError, match="outside"):
            loop_program.index_of_address(loop_program.base_address + 4 * 100)

    def test_label_address(self, loop_program):
        assert loop_program.label_address("top") == loop_program.base_address


class TestValidation:
    def test_valid_program_passes(self, loop_program):
        loop_program.validate()

    def test_target_out_of_range_rejected(self):
        program = Program(
            instructions=[
                Instruction(
                    opcode=Opcode.BEQ,
                    sources=(int_reg(1), int_reg(2)),
                    target=5,
                )
            ]
        )
        with pytest.raises(ValueError, match="out of range"):
            program.validate()

    def test_branch_without_target_rejected(self):
        program = Program(
            instructions=[
                Instruction(opcode=Opcode.BEQ, sources=(int_reg(1), int_reg(2)))
            ]
        )
        with pytest.raises(ValueError, match="without target"):
            program.validate()

    def test_resolve_labels_unknown_raises(self):
        program = Program(
            instructions=[
                Instruction(
                    opcode=Opcode.J, label="missing"
                )
            ]
        )
        with pytest.raises(KeyError):
            program.resolve_labels()


class TestIntrospection:
    def test_static_mix(self, loop_program):
        mix = loop_program.static_mix()
        assert mix["ialu"] == 1
        assert mix["branch"] == 1
        assert mix["nop"] == 1  # halt is in the NOP class

    def test_find_halt(self, loop_program):
        assert loop_program.find_halt() == 2

    def test_find_halt_absent(self):
        program = assemble("nop")
        assert program.find_halt() is None

    def test_iteration_and_len(self, loop_program):
        assert len(loop_program) == 3
        assert len(list(loop_program)) == 3
